"""ExperimentSpec: validation, JSON round trip, runner materialization."""

import json

import pytest

from repro.engine import (
    ExperimentRunner,
    ExperimentSpec,
    Scenario,
    TraceCache,
    cell_filter_from_rules,
)
from repro.models import build_model_spec


def _spec(**overrides):
    fields = dict(
        name="t",
        simulators=["spade-he", "dense-he"],
        models=["SPP3"],
        scenarios=[{"name": "a", "seed": 1}],
        backend="serial",
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestValidation:
    def test_valid_spec_builds(self):
        spec = _spec()
        assert [s.name for s in spec.scenarios] == ["a"]

    def test_unknown_simulator_actionable(self):
        with pytest.raises(ValueError, match="unknown simulator"):
            _spec(simulators=["warp-he"])

    def test_unknown_model_lists_zoo(self):
        with pytest.raises(ValueError, match="SPP3"):
            _spec(models=["NotAModel"])

    def test_modelspec_instances_allowed(self):
        spec = _spec(models=[build_model_spec("SPP3")])
        assert spec.models[0].name == "SPP3"

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ValueError, match="serial"):
            _spec(backend="quantum")

    def test_unknown_frame_provider(self):
        with pytest.raises(ValueError, match="synthetic"):
            _spec(frame_provider="martian")

    def test_empty_simulators_and_models_rejected(self):
        with pytest.raises(ValueError, match="simulators"):
            _spec(simulators=[])
        with pytest.raises(ValueError, match="models"):
            _spec(models=[])

    def test_bad_knobs_name_the_knob(self):
        with pytest.raises(ValueError, match="workers"):
            _spec(workers="many")
        with pytest.raises(ValueError, match="rulegen_shards"):
            _spec(rulegen_shards=0)

    def test_bad_cells_actionable(self):
        with pytest.raises(ValueError, match="cells\\[0\\]"):
            _spec(cells=["SPP3"])
        with pytest.raises(ValueError, match="allowed"):
            _spec(cells=[{"modle": "SPP3"}])

    def test_scenario_unknown_key(self):
        with pytest.raises(ValueError, match="unknown key"):
            _spec(scenarios=[{"name": "a", "sede": 3}])

    def test_missing_required_keys(self):
        with pytest.raises(ValueError, match="simulators"):
            ExperimentSpec.from_dict({"models": ["SPP3"]})

    def test_unknown_top_level_key(self):
        data = _spec().to_dict()
        data["simulatorz"] = []
        with pytest.raises(ValueError, match="simulatorz"):
            ExperimentSpec.from_dict(data)

    def test_unsupported_version(self):
        data = _spec().to_dict()
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            ExperimentSpec.from_dict(data)


class TestSharedScenarioValidator:
    """Dict-built and kwarg-built scenarios share one validator."""

    def test_same_message_both_paths(self):
        with pytest.raises(ValueError) as via_kwargs:
            Scenario("drive", seed=0, frames=0)
        with pytest.raises(ValueError) as via_dict:
            _spec(scenarios=[{"name": "drive", "seed": 0, "frames": 0}])
        assert str(via_kwargs.value) == str(via_dict.value)
        assert "frames >= 1" in str(via_kwargs.value)

    def test_same_message_for_bad_seed(self):
        with pytest.raises(ValueError) as via_kwargs:
            Scenario("drive", seed="tomorrow")
        with pytest.raises(ValueError) as via_dict:
            _spec(scenarios=[{"name": "drive", "seed": "tomorrow"}])
        assert str(via_kwargs.value) == str(via_dict.value)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = _spec(workers=2, cells=[{"model": "SPP3"}], out="-")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = _spec(scenarios=[{"name": "d", "seed": 3, "frames": 2}])
        text = spec.to_json()
        again = ExperimentSpec.from_json(text)
        assert again == spec
        assert json.loads(text)["version"] == 1

    def test_save_load(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = _spec()
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_load_names_file_on_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="broken.json"):
            ExperimentSpec.load(path)

    def test_instances_refuse_serialization(self):
        from repro.engine import SpadeSimulator
        from repro.core import SPADE_HE

        spec = _spec(simulators=[SpadeSimulator(SPADE_HE)])
        with pytest.raises(ValueError, match="register_simulator"):
            spec.to_dict()
        spec = _spec(models=[build_model_spec("SPP3")])
        with pytest.raises(ValueError, match="Table I"):
            spec.to_dict()


class TestCellRules:
    def test_empty_rules_mean_no_filter(self):
        assert cell_filter_from_rules([]) is None

    def test_rules_compile_to_filter(self):
        rules = [{"model": "SPP3", "simulator": "SPADE*"},
                 {"model": "PP", "simulator": "DenseAcc*"}]
        cell_filter = cell_filter_from_rules(rules)

        class Sim:
            def __init__(self, name):
                self.name = name

        scenario = Scenario("s")
        assert cell_filter(scenario, "SPP3", Sim("SPADE.HE"))
        assert cell_filter(scenario, "PP", Sim("DenseAcc.HE"))
        assert not cell_filter(scenario, "SPP3", Sim("DenseAcc.HE"))
        assert not cell_filter(scenario, "PP", Sim("SPADE.HE"))


class TestBuildRunner:
    def test_runner_matches_spec(self):
        spec = _spec(workers=2, trace_workers=1, rulegen_shards=2)
        runner = spec.build_runner()
        assert isinstance(runner, ExperimentRunner)
        assert [s.name for s in runner.simulators] == ["SPADE.HE",
                                                       "DenseAcc.HE"]
        assert runner.models == ["SPP3"]
        assert runner.backend == "serial"
        assert runner.max_workers == 2
        assert runner.trace_workers == 1
        assert runner.rulegen_shards == 2

    def test_overrides_beat_spec(self):
        runner = _spec(workers=2).build_runner(backend="thread",
                                               workers=4)
        assert runner.backend == "thread"
        assert runner.max_workers == 4

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="override"):
            _spec().build_runner(wokers=4)

    def test_cache_dir_builds_disk_cache(self, tmp_path):
        runner = _spec(cache_dir=str(tmp_path)).build_runner()
        assert str(runner.cache.disk_dir) == str(tmp_path)

    def test_explicit_cache_dir_none_disables_disk_tier(self, monkeypatch,
                                                        tmp_path):
        # Regression: build_runner(cache_dir=None) must mean
        # "memory-only" even when the environment names a directory —
        # agreeing with spec.settings(cache_dir=None).
        from repro.engine import CACHE_DIR_ENV_VAR

        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        spec = _spec()
        assert spec.build_runner(cache_dir=None).cache.disk_dir is None
        assert spec.settings(cache_dir=None).cache_dir is None
        # (Without any cache_dir the runner falls back to the shared
        # process-wide cache, whose tier was fixed at import time.)

    def test_override_errors_use_spec_knob_names(self):
        # Regression: a bad --workers override errors as "workers" (the
        # name the spec/CLI user typed), not the runner-internal
        # "max_workers" kwarg.
        with pytest.raises(ValueError) as err:
            _spec().build_runner(workers=0)
        assert str(err.value).startswith("workers must be")

    def test_validation_instances_reused_by_build_runner(self):
        # Regression: validation builds each simulator once and
        # build_runner reuses those instances instead of constructing
        # everything a second time.
        spec = _spec()
        runner = spec.build_runner(cache=TraceCache())
        assert runner.simulators == spec._validated_simulators

    def test_cells_become_cell_filter(self):
        spec = _spec(
            simulators=["spade-he", "dense-he"],
            models=["SPP3", "PP"],
            cells=[{"model": "SPP3", "simulator": "SPADE*"},
                   {"model": "PP", "simulator": "DenseAcc*"}],
        )
        runner = spec.build_runner(cache=TraceCache())
        cells = {
            (group.model, simulator.name)
            for group in runner.plan()
            for simulator in group.simulators
        }
        assert cells == {("SPP3", "SPADE.HE"), ("PP", "DenseAcc.HE")}

    def test_spec_run_equals_hand_built_runner(self):
        """Acceptance: declarative spec == hand-assembled kwargs."""
        cache = TraceCache()
        spec = ExperimentSpec(
            name="parity",
            simulators=["spade-he", "dense-he"],
            models=["SPP3"],
            scenarios=[{"name": "p", "seed": 5}],
            backend="serial",
        )
        declarative = spec.build_runner(cache=cache).run()
        hand_built = ExperimentRunner(
            simulators=["spade-he", "dense-he"],
            models=["SPP3"],
            scenarios=[Scenario("p", seed=5)],
            backend="serial",
            cache=cache,
        ).run()
        assert len(declarative) == len(hand_built) == 2
        for left, right in zip(declarative, hand_built):
            assert left == right

    def test_settings_snapshot(self, monkeypatch):
        from repro.engine import WORKERS_ENV_VAR

        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        settings = _spec(trace_workers=2).settings()
        assert settings.backend == "serial"      # spec beats env default
        assert settings.workers == 3             # env fills spec's None
        assert settings.trace_workers == 2
