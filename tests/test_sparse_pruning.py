"""Vector pruning: Top-K, threshold and keep-ratio policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    SparseTensor,
    is_cpr_sorted,
    pillar_magnitudes,
    sparsity_prune,
    threshold_for_keep_ratio,
    threshold_prune,
    topk_prune,
    unflatten,
)

SHAPE = (16, 16)


def tensor_with_magnitudes(magnitudes):
    magnitudes = np.asarray(magnitudes, np.float32)
    coords = unflatten(np.arange(len(magnitudes)) * 3, SHAPE)
    features = np.zeros((len(magnitudes), 2), np.float32)
    features[:, 0] = magnitudes
    return SparseTensor(coords, features, SHAPE)


class TestTopK:
    def test_keeps_largest(self):
        tensor = tensor_with_magnitudes([5, 1, 9, 3])
        pruned, kept = topk_prune(tensor, 2)
        assert kept.tolist() == [0, 2]
        assert pruned.num_active == 2

    def test_keep_all_is_identity(self):
        tensor = tensor_with_magnitudes([1, 2, 3])
        pruned, kept = topk_prune(tensor, 10)
        assert pruned is tensor
        assert kept.tolist() == [0, 1, 2]

    def test_keep_zero_empties(self):
        tensor = tensor_with_magnitudes([1, 2])
        pruned, _ = topk_prune(tensor, 0)
        assert pruned.num_active == 0

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=40),
           st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_result_stays_cpr_sorted(self, magnitudes, keep):
        tensor = tensor_with_magnitudes(magnitudes)
        pruned, _ = topk_prune(tensor, keep)
        assert is_cpr_sorted(pruned.coords, SHAPE)

    @given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=40,
                    unique=True))
    @settings(max_examples=40, deadline=None)
    def test_kept_minimum_exceeds_dropped_maximum(self, magnitudes):
        tensor = tensor_with_magnitudes(magnitudes)
        keep = len(magnitudes) // 2
        pruned, kept = topk_prune(tensor, keep)
        dropped = sorted(set(range(tensor.num_active)) - set(kept.tolist()))
        kept_mags = pillar_magnitudes(tensor.features[kept])
        dropped_mags = pillar_magnitudes(tensor.features[dropped])
        assert kept_mags.min() >= dropped_mags.max()


class TestThreshold:
    def test_threshold_prune(self):
        tensor = tensor_with_magnitudes([0.5, 5.0, 0.1])
        pruned, kept = threshold_prune(tensor, 1.0)
        assert kept.tolist() == [1]

    def test_threshold_for_keep_ratio_realizes_ratio(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(1000, 4)).astype(np.float32)
        threshold = threshold_for_keep_ratio(features, 0.3)
        kept = (pillar_magnitudes(features) > threshold).mean()
        assert kept == pytest.approx(0.3, abs=0.02)

    def test_keep_all_threshold_zero(self):
        assert threshold_for_keep_ratio(np.ones((5, 2)), 1.0) == 0.0


class TestSparsityPrune:
    def test_ratio(self):
        tensor = tensor_with_magnitudes(np.arange(1, 11))
        pruned, _ = sparsity_prune(tensor, 0.4)
        assert pruned.num_active == 4

    def test_invalid_ratio_raises(self):
        tensor = tensor_with_magnitudes([1.0])
        with pytest.raises(ValueError):
            sparsity_prune(tensor, 1.5)


class TestMagnitudes:
    def test_l2(self):
        mags = pillar_magnitudes(np.array([[3.0, 4.0]]))
        assert mags[0] == pytest.approx(5.0)

    def test_l1(self):
        mags = pillar_magnitudes(np.array([[3.0, -4.0]]), order=1)
        assert mags[0] == pytest.approx(7.0)

    def test_unsupported_order(self):
        with pytest.raises(ValueError):
            pillar_magnitudes(np.ones((1, 2)), order=3)
