"""Baseline models: SpConv2D-Acc, PointAcc simulator, platforms."""

import numpy as np
import pytest

from repro.analysis import trace_model
from repro.baselines import (
    A6000,
    HIGH_END_PLATFORMS,
    JETSON_NX,
    RTX_2080TI,
    PlatformModel,
    PointAccSimulator,
    SpConv2DAccModel,
    spade_no_overlap,
)
from repro.core import SPADE_HE
from repro.models import build_model_spec


@pytest.fixture(scope="module")
def spp2_trace(kitti_batch):
    return trace_model(build_model_spec("SPP2"), kitti_batch.coords,
                       kitti_batch.point_counts.astype(float))


@pytest.fixture(scope="module")
def pp_trace(kitti_batch):
    return trace_model(build_model_spec("PP"), kitti_batch.coords)


class TestSpConv2DAcc:
    def test_utilization_falls_with_sparsity(self):
        model = SpConv2DAccModel()
        results = model.sweep_sparsity((96, 96), [0.5, 0.9, 0.99])
        utils = [report.utilization for _, report in results]
        assert utils[0] > utils[1] > utils[2]

    def test_conflicts_rise_with_sparsity(self):
        # Paper Fig. 2(b): bank conflicts amplify as sparsity increases.
        model = SpConv2DAccModel()
        results = model.sweep_sparsity((96, 96), [0.5, 0.9, 0.99])
        conflicts = [report.bank_conflict_rate for _, report in results]
        assert conflicts[-1] > conflicts[0]

    def test_utilization_bounded(self):
        model = SpConv2DAccModel()
        for _, report in model.sweep_sparsity((64, 64), [0.3, 0.8]):
            assert 0.0 < report.utilization <= 1.0


class TestPointAcc:
    def test_spade_faster_than_pointacc(self, spp2_trace):
        # Paper Fig. 15: SPADE achieves 1.88-1.95x over PointAcc.
        pointacc = PointAccSimulator(SPADE_HE).run_trace(spp2_trace)
        spade = spade_no_overlap(spp2_trace, SPADE_HE)
        speedup = pointacc.total_cycles / spade.total_cycles
        assert 1.3 < speedup < 3.5

    def test_pointacc_dram_volume_not_lower(self, spp2_trace):
        # Paper Fig. 14: PointAcc needs ~20% more DRAM accesses.
        pointacc = PointAccSimulator(SPADE_HE).run_trace(spp2_trace)
        spade = spade_no_overlap(spp2_trace, SPADE_HE)
        assert pointacc.total_dram_bytes >= 0.95 * spade.dram_bytes

    def test_mapping_slower_than_rgu(self, spp2_trace):
        pointacc = PointAccSimulator(SPADE_HE).run_trace(spp2_trace)
        spade = spade_no_overlap(spp2_trace, SPADE_HE)
        assert (pointacc.phase_totals()["mapping"]
                > spade.phase_totals()["mapping"])

    def test_phase_totals_sum(self, spp2_trace):
        result = PointAccSimulator(SPADE_HE).run_trace(spp2_trace)
        assert sum(result.phase_totals().values()) == result.total_cycles


class TestPlatforms:
    def test_sparse_not_faster_on_gpu(self, pp_trace, spp2_trace):
        # Paper Fig. 2(c): SPP execution time does not beat dense PP on
        # GPUs despite the compute reduction (mapping overhead).
        gpu = PlatformModel(A6000)
        dense_ms = gpu.run_trace(pp_trace).latency_ms
        sparse_ms = gpu.run_trace(spp2_trace).latency_ms
        assert sparse_ms > 0.6 * dense_ms

    def test_mapping_overhead_dominates_sparse_gpu_time(self, spp2_trace):
        # Fig. 2(c): mapping + launch overheads eat the compute savings.
        result = PlatformModel(A6000).run_trace(spp2_trace)
        assert result.mapping_ms + result.overhead_ms > result.conv_ms
        assert result.mapping_ms > 0.3 * result.conv_ms

    def test_a6000_barely_beats_2080ti(self, pp_trace):
        # Paper: 2.5x peak throughput but only ~20% speedup.
        a6000 = PlatformModel(A6000).run_trace(pp_trace)
        rtx = PlatformModel(RTX_2080TI).run_trace(pp_trace)
        assert 1.0 < rtx.latency_ms / a6000.latency_ms < 1.5

    def test_jetson_much_slower(self, pp_trace):
        a6000 = PlatformModel(A6000).run_trace(pp_trace)
        jetson = PlatformModel(JETSON_NX).run_trace(pp_trace)
        assert jetson.latency_ms > 4 * a6000.latency_ms

    def test_jetson_energy_better_than_gpu(self, pp_trace):
        # GPUs are faster but burn far more energy per frame.
        a6000 = PlatformModel(A6000).run_trace(pp_trace)
        jetson = PlatformModel(JETSON_NX).run_trace(pp_trace)
        assert jetson.energy_mj < a6000.energy_mj

    def test_phases_sum_to_latency(self, spp2_trace):
        for spec in HIGH_END_PLATFORMS:
            result = PlatformModel(spec).run_trace(spp2_trace)
            assert sum(result.phases().values()) == pytest.approx(
                result.latency_ms
            )
