"""Execution backends and frame batching: parity across serial / thread /
process backends, batched-vs-single-frame equivalence, backend and
worker-count selection (arguments and environment variables), and the
process backend's restrictions."""

import pytest

from repro.engine import (
    BACKEND_ENV_VAR,
    CACHE_DIR_ENV_VAR,
    RULEGEN_SHARDS_ENV_VAR,
    TRACE_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    ExperimentRunner,
    FrameProvider,
    ProcessBackend,
    Scenario,
    SerialBackend,
    SimResult,
    ThreadBackend,
    TraceCache,
    mean_result,
    resolve_backend,
)

#: A Table-1 subset small enough to trace in test time but covering two
#: simulator families and two models.
SUBSET_SIMULATORS = ["spade-he", "dense-he"]
SUBSET_MODELS = ["SPP2", "SPP3"]


def _subset_runner(**kwargs):
    kwargs.setdefault("simulators", list(SUBSET_SIMULATORS))
    kwargs.setdefault("models", list(SUBSET_MODELS))
    kwargs.setdefault("cache", TraceCache())
    return ExperimentRunner(**kwargs)


class TestBackendParity:
    def test_serial_thread_process_identical_tables(self):
        """Acceptance: every backend produces the same ExperimentTable
        for a Table-1 subset — rows, order and numbers."""
        runner = _subset_runner(
            scenarios=[Scenario("a", seed=0), Scenario("b", seed=9)],
        )
        serial = runner.run(backend="serial")
        thread = runner.run(backend="thread")
        process = runner.run(backend="process")
        assert len(serial) == len(thread) == len(process) == 8
        for left, right in zip(serial, thread):
            assert left == right     # SimResult equality excludes `raw`
        for left, right in zip(serial, process):
            assert left == right

    def test_process_backend_strips_raw(self):
        runner = _subset_runner(models=["SPP3"], simulators=["spade-he"])
        row = runner.run(backend="process").results[0]
        assert row.raw is None
        serial_row = runner.run(backend="serial").results[0]
        assert serial_row.raw is not None
        assert row.cycles == serial_row.cycles

    def test_process_backend_rejects_trace_provider(self):
        runner = _subset_runner(
            trace_provider=lambda scenario, name: None,
        )
        with pytest.raises(ValueError, match="trace_provider"):
            runner.run(backend="process")

    def test_process_backend_rejects_custom_frame_provider(self):
        class CustomFrames(FrameProvider):
            pass

        runner = _subset_runner(frame_provider=CustomFrames())
        with pytest.raises(ValueError, match="FrameProvider"):
            runner.run(backend="process")

    def test_process_backend_chunking_covers_all_groups(self):
        # More groups than workers*2 forces multi-group chunks.
        runner = _subset_runner(
            models=["SPP1", "SPP2", "SPP3"],
            simulators=["spade-he"],
            scenarios=[Scenario("a", seed=0), Scenario("b", seed=3)],
            max_workers=2,
        )
        table = runner.run(backend=ProcessBackend(max_workers=2))
        assert len(table) == 6
        assert sorted({row.model for row in table}) == [
            "SPP1", "SPP2", "SPP3",
        ]


class TestBackendSelection:
    def test_resolve_names_and_instances(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("Thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)
        backend = ThreadBackend(max_workers=2)
        assert resolve_backend(backend) is backend
        with pytest.raises(KeyError, match="unknown backend"):
            resolve_backend("cluster")
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_env_var_selects_default_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        runner = _subset_runner()
        assert runner.backend == "serial"
        monkeypatch.delenv(BACKEND_ENV_VAR)
        assert _subset_runner().backend == "thread"

    def test_constructor_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        runner = _subset_runner(backend="serial")
        assert runner.backend == "serial"

    def test_env_process_default_falls_back_for_trace_provider(
        self, monkeypatch
    ):
        # REPRO_ENGINE_BACKEND=process must not break fixture-fed
        # runners: the env default falls back to threads, while the
        # same runner still fails on an *explicit* process request.
        from repro.analysis import trace_model
        from repro.models import build_model_spec

        provider = FrameProvider()
        scenario = Scenario("t", seed=0)
        frame = provider.frame_for(scenario, "SPP3")
        trace = trace_model(
            build_model_spec("SPP3"),
            frame.coords,
            frame.point_counts.astype(float),
        )
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        runner = _subset_runner(
            simulators=["spade-he"], models=["SPP3"],
            trace_provider=lambda scenario, name: trace,
        )
        table = runner.run()                    # falls back, succeeds
        assert len(table) == 1
        assert table.results[0].raw is not None  # ran in-process
        with pytest.raises(ValueError, match="trace_provider"):
            runner.run(backend="process")

    def test_parallel_false_forces_serial_even_with_backend(self):
        # parallel=False stays the debugging escape hatch regardless of
        # the configured backend.
        runner = _subset_runner(models=["SPP3"], simulators=["spade-he"],
                                backend="thread")
        table = runner.run(parallel=False)
        assert len(table) == 1


class TestWorkerCountValidation:
    def test_env_override_applies(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert _subset_runner().max_workers == 3

    @pytest.mark.parametrize("value", ["0", "-2", "two", "2.5", ""])
    def test_invalid_env_values_rejected(self, monkeypatch, value):
        monkeypatch.setenv(WORKERS_ENV_VAR, value)
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            _subset_runner()

    @pytest.mark.parametrize("value", [0, -1, "zero", 1.5])
    def test_invalid_argument_rejected(self, value):
        with pytest.raises(ValueError, match="max_workers"):
            _subset_runner(max_workers=value)

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert _subset_runner(max_workers=2).max_workers == 2


class TestFrameBatching:
    def test_batched_rows_match_single_frame_runs(self):
        """Acceptance: a batched scenario's per-frame rows carry exactly
        the numbers of single-frame scenarios at consecutive seeds."""
        frames = 3
        batched = _subset_runner(
            simulators=["spade-he"], models=["SPP3"],
            scenarios=[Scenario("drive", seed=5, frames=frames)],
        ).run()
        singles = _subset_runner(
            simulators=["spade-he"], models=["SPP3"],
            scenarios=[Scenario(f"s{index}", seed=5 + index)
                       for index in range(frames)],
        ).run()
        assert len(batched) == frames + 1          # + the mean row
        for index in range(frames):
            left = batched.get(frame=index)
            right = singles.get(scenario=f"s{index}")
            assert left.cycles == right.cycles
            assert left.latency_ms == right.latency_ms
            assert left.energy_mj == right.energy_mj

    def test_mean_row_aggregates_metrics(self):
        table = _subset_runner(
            simulators=["spade-he"], models=["SPP3"],
            scenarios=[Scenario("drive", seed=0, frames=2)],
        ).run()
        mean = table.get(frame="mean")
        per_frame = [table.get(frame=index) for index in range(2)]
        assert mean.cycles == pytest.approx(
            sum(row.cycles for row in per_frame) / 2
        )
        assert mean.extras == {"frames": 2}
        assert mean.scenario == "drive"

    def test_batched_parity_across_backends(self):
        scenarios = [Scenario("drive", seed=2, frames=2)]
        serial = _subset_runner(simulators=["spade-he"], models=["SPP3"],
                                scenarios=scenarios).run(backend="serial")
        process = _subset_runner(simulators=["spade-he"], models=["SPP3"],
                                 scenarios=scenarios).run(backend="process")
        for left, right in zip(serial, process):
            assert left == right

    def test_rulegen_once_per_frame(self, monkeypatch):
        import repro.engine.cache as cache_module

        calls = []
        real_trace_model = cache_module.trace_model

        def counting(spec, coords, importance=None, grid_shape=None,
                     rulegen_shards=None, prev_trace=None,
                     delta_threshold=None):
            calls.append(spec.name)
            return real_trace_model(spec, coords, importance,
                                    grid_shape=grid_shape,
                                    rulegen_shards=rulegen_shards,
                                    prev_trace=prev_trace,
                                    delta_threshold=delta_threshold)

        monkeypatch.setattr(cache_module, "trace_model", counting)
        runner = _subset_runner(
            simulators=["spade-he", "dense-he"], models=["SPP3"],
            scenarios=[Scenario("drive", seed=0, frames=2)],
        )
        table = runner.run()
        # 2 frames x (2 simulators + mean) rows, but only 2 traces.
        assert len(table) == 6
        assert calls == ["SPP3", "SPP3"]

    def test_invalid_frames_rejected(self):
        with pytest.raises(ValueError, match="frames"):
            Scenario("bad", seed=0, frames=0)
        with pytest.raises(ValueError, match="frames"):
            Scenario("bad", seed=0, frames=1.5)

    def test_trace_provider_rejects_batched_scenarios(self):
        runner = _subset_runner(
            simulators=["spade-he"], models=["SPP3"],
            scenarios=[Scenario("drive", seed=0, frames=2)],
            trace_provider=lambda scenario, name: None,
        )
        with pytest.raises(ValueError, match="single-frame"):
            runner.run()

    def test_mean_result_handles_none_metrics(self):
        rows = [
            SimResult(simulator="S", model="M", cycles=10, energy_mj=None),
            SimResult(simulator="S", model="M", cycles=20, energy_mj=None),
        ]
        mean = mean_result(rows)
        assert mean.cycles == 15
        assert mean.energy_mj is None
        assert mean.frame == "mean"
        with pytest.raises(ValueError):
            mean_result([])


class TestTraceStageKnobs:
    def test_trace_workers_defaults_to_max_workers(self, monkeypatch):
        monkeypatch.delenv(TRACE_WORKERS_ENV_VAR, raising=False)
        runner = _subset_runner(max_workers=3)
        assert runner.trace_workers == 3

    def test_trace_workers_env_override(self, monkeypatch):
        monkeypatch.setenv(TRACE_WORKERS_ENV_VAR, "5")
        assert _subset_runner(max_workers=2).trace_workers == 5

    def test_trace_workers_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(TRACE_WORKERS_ENV_VAR, "5")
        runner = _subset_runner(max_workers=2, trace_workers=4)
        assert runner.trace_workers == 4

    @pytest.mark.parametrize("value", ["0", "-1", "one", "1.5", ""])
    def test_invalid_trace_workers_env_rejected(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_WORKERS_ENV_VAR, value)
        with pytest.raises(ValueError, match=TRACE_WORKERS_ENV_VAR):
            _subset_runner()

    @pytest.mark.parametrize("value", [0, -2, "two", 2.5])
    def test_invalid_trace_workers_argument_rejected(self, value):
        with pytest.raises(ValueError, match="trace_workers"):
            _subset_runner(trace_workers=value)

    @pytest.mark.parametrize("value", ["0", "-1", "half", ""])
    def test_invalid_rulegen_shards_env_rejected(self, monkeypatch, value):
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, value)
        with pytest.raises(ValueError, match=RULEGEN_SHARDS_ENV_VAR):
            _subset_runner()

    @pytest.mark.parametrize("value", [0, -1, "many", 1.5])
    def test_invalid_rulegen_shards_argument_rejected(self, value):
        with pytest.raises(ValueError, match="rulegen_shards"):
            _subset_runner(rulegen_shards=value)

    def test_rulegen_shards_env_default(self, monkeypatch):
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "2")
        assert _subset_runner().rulegen_shards == 2
        monkeypatch.delenv(RULEGEN_SHARDS_ENV_VAR)
        assert _subset_runner().rulegen_shards == 1

    def test_sharded_runner_table_identical(self):
        """Acceptance: rulegen sharding changes speed only — the table is
        bit-identical to the unsharded run."""
        plain = _subset_runner(models=["SPP3"]).run(backend="serial")
        sharded = _subset_runner(models=["SPP3"], rulegen_shards=3,
                                 trace_workers=2).run(backend="serial")
        assert len(plain) == len(sharded)
        for left, right in zip(plain, sharded):
            assert left == right


class TestSerialFallback:
    def test_thread_backend_width_one_skips_pool(self, monkeypatch):
        import repro.engine.backends as backends_module

        def no_pool(*args, **kwargs):
            raise AssertionError("width-1 thread backend must not pool")

        monkeypatch.setattr(backends_module, "ThreadPoolExecutor", no_pool)
        runner = _subset_runner(models=["SPP3"], simulators=["spade-he"],
                                max_workers=1)
        table = runner.run(backend="thread")
        assert len(table) == 1
        assert table.results[0].raw is not None  # in-process, like serial

    def test_process_backend_width_one_skips_pool(self, monkeypatch):
        import repro.engine.backends as backends_module

        def no_pool(*args, **kwargs):
            raise AssertionError("width-1 process backend must not pool")

        monkeypatch.setattr(backends_module, "ProcessPoolExecutor", no_pool)
        runner = _subset_runner(models=["SPP3"], simulators=["spade-he"],
                                max_workers=1)
        table = runner.run(backend="process")
        assert len(table) == 1
        # The backend's contract survives the fallback: raw never ships.
        assert table.results[0].raw is None
        serial = runner.run(backend="serial")
        assert table.results[0] == serial.results[0]

    def test_width_one_fallback_matches_pooled_numbers(self):
        pooled = _subset_runner(models=["SPP3"], simulators=["spade-he"],
                                max_workers=2).run(backend="process")
        fallback = _subset_runner(models=["SPP3"], simulators=["spade-he"],
                                  max_workers=1).run(backend="process")
        for left, right in zip(pooled, fallback):
            assert left == right


class TestProcessTraceStage:
    def test_workers_share_traces_through_disk_tier(self, tmp_path,
                                                    monkeypatch):
        """The trace stage persists every unique (scenario, model, frame)
        to the shared disk tier, and the simulate stage's rows match the
        serial backend bit for bit."""
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        scenarios = [Scenario("a", seed=0), Scenario("b", seed=9)]
        process = _subset_runner(
            models=["SPP3"], simulators=["spade-he"],
            scenarios=list(scenarios), max_workers=2,
        ).run(backend="process")
        # one trace file per unique (scenario, frame) on this one model
        assert len(list(tmp_path.glob("*.trace.pkl"))) == 2
        monkeypatch.delenv(CACHE_DIR_ENV_VAR)
        serial = _subset_runner(
            models=["SPP3"], simulators=["spade-he"],
            scenarios=list(scenarios),
        ).run(backend="serial")
        assert len(process) == len(serial) == 2
        for left, right in zip(serial, process):
            assert left == right

    def test_auto_tempdir_cleaned_up(self, monkeypatch):
        import repro.engine.backends as backends_module

        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        created = []
        real_mkdtemp = backends_module.tempfile.mkdtemp

        def tracking_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(backends_module.tempfile, "mkdtemp",
                            tracking_mkdtemp)
        table = _subset_runner(
            models=["SPP3"], simulators=["spade-he"], max_workers=2,
        ).run(backend="process")
        assert len(table) == 1
        assert len(created) == 1
        import os

        assert not os.path.exists(created[0])
        assert os.environ.get(CACHE_DIR_ENV_VAR) is None


class TestProgressReporting:
    """`runner.run(progress=...)` reports per-group completion through
    the same Backend seam on every backend."""

    def _events(self, backend, **kwargs):
        events = []
        runner = _subset_runner(
            scenarios=[Scenario("a", seed=0), Scenario("b", seed=9)],
            **kwargs,
        )
        table = runner.run(
            backend=backend,
            progress=lambda done, total, elapsed:
                events.append((done, total)),
        )
        return table, events

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_report_every_group(self, backend):
        table, events = self._events(backend)
        assert len(table) == 8
        assert events, f"{backend} backend reported no progress"
        assert events[-1] == (4, 4)
        dones = [done for done, _ in events]
        assert dones == sorted(dones)
        assert sum(1 for _ in events) <= 4      # chunked reports allowed

    def test_progress_true_prints_to_stderr(self, capsys):
        runner = _subset_runner(models=["SPP3"], simulators=["spade-he"])
        runner.run(backend="serial", progress=True)
        err = capsys.readouterr().err
        assert "groups 1/1" in err

    def test_no_progress_by_default(self, capsys):
        runner = _subset_runner(models=["SPP3"], simulators=["spade-he"])
        runner.run(backend="serial")
        assert "groups" not in capsys.readouterr().err

    def test_reporter_cleared_after_run(self):
        runner = _subset_runner(models=["SPP3"], simulators=["spade-he"])
        runner.run(backend="serial", progress=lambda *args: None)
        assert runner._progress is None


class TestRunScopedTempdirCleanup:
    def test_failing_run_cleans_up_tempdir(self, monkeypatch):
        """A run that dies mid-pool must still remove its run-scoped
        trace-share directory (the try/finally lives in
        run_scoped_cache_dir, shared by process and dist backends)."""
        import os

        import repro.engine.backends as backends_module

        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        created = []
        real_mkdtemp = backends_module.tempfile.mkdtemp

        def tracking_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(backends_module.tempfile, "mkdtemp",
                            tracking_mkdtemp)

        def exploding_pool(*args, **kwargs):
            raise RuntimeError("pool refused to start")

        monkeypatch.setattr(backends_module, "ProcessPoolExecutor",
                            exploding_pool)
        runner = _subset_runner(models=["SPP3"], simulators=["spade-he"],
                                max_workers=2)
        with pytest.raises(RuntimeError, match="pool refused"):
            runner.run(backend="process")
        assert len(created) == 1
        assert not os.path.exists(created[0])

    def test_env_cache_dir_is_never_deleted(self, tmp_path, monkeypatch):
        from repro.engine.backends import run_scoped_cache_dir

        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        with pytest.raises(RuntimeError):
            with run_scoped_cache_dir() as (cache_dir, run_scoped):
                assert cache_dir == str(tmp_path)
                assert run_scoped is False
                raise RuntimeError("boom")
        assert tmp_path.exists()

    def test_tempdir_removed_even_on_failure_inside(self, monkeypatch):
        import os

        from repro.engine.backends import run_scoped_cache_dir

        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        with pytest.raises(RuntimeError):
            with run_scoped_cache_dir() as (cache_dir, run_scoped):
                assert run_scoped is True
                assert os.path.isdir(cache_dir)
                raise RuntimeError("boom")
        assert not os.path.exists(cache_dir)


class TestDeltaTrace:
    """Delta-chained tracing: same table, fewer full rulegen runs."""

    SCENARIOS = [Scenario("drive", seed=3, frames=3)]

    def test_delta_matches_full_on_every_backend(self):
        """Acceptance: with REPRO_ENGINE_DELTA_TRACE on, every backend
        reproduces the full-rulegen serial table byte for byte."""
        full = _subset_runner(
            scenarios=list(self.SCENARIOS)).run(backend="serial")
        expected = full.to_csv()
        for backend in ("serial", "thread", "process"):
            delta = _subset_runner(
                scenarios=list(self.SCENARIOS), delta_trace=True,
            ).run(backend=backend)
            assert delta.to_csv() == expected, backend

    def test_trace_chain_threads_prev_trace(self):
        runner = _subset_runner(
            models=["SPP3"], simulators=["spade-he"],
            scenarios=list(self.SCENARIOS), delta_trace=True,
        )
        chain = runner.trace_chain(runner.scenarios[0],
                                   runner.models[0])
        assert len(chain) == 3
        # Content keys are unchanged: each chain frame is one cache
        # entry, keyed exactly like a full-rulegen trace of that frame.
        assert runner.cache.stats()["misses"] == 3
        off = _subset_runner(
            models=["SPP3"], simulators=["spade-he"],
            scenarios=list(self.SCENARIOS),
        )
        for frame, trace in enumerate(chain):
            full = off.trace_for(off.scenarios[0], off.models[0], frame)
            for left, right in zip(trace.layers, full.layers):
                if left.rules is None:
                    assert right.rules is None
                    continue
                for lp, rp in zip(left.rules.pairs, right.rules.pairs):
                    assert (lp.in_idx == rp.in_idx).all()
                    assert (lp.out_idx == rp.out_idx).all()

    def test_env_knob_resolves_through_settings(self, monkeypatch):
        from repro.engine import DELTA_TRACE_ENV_VAR

        monkeypatch.setenv(DELTA_TRACE_ENV_VAR, "1")
        runner = _subset_runner(scenarios=list(self.SCENARIOS))
        assert runner.delta_trace is True
