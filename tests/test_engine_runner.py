"""Unified engine: trace cache behaviour, parallel/serial equality,
schema parity with the legacy per-simulator APIs, and the Table-1
sweep-equivalence acceptance check."""

import numpy as np
import pytest

from repro.analysis import trace_model
from repro.baselines import (
    A6000,
    PlatformModel,
    PointAccSimulator,
    SpConv2DAccModel,
)
from repro.core import SPADE_HE, SPADE_LE, DenseAccelerator, SpadeAccelerator
from repro.engine import (
    DenseAccSimulator,
    ExperimentRunner,
    PlatformSim,
    PointAccSim,
    Scenario,
    SimResult,
    SpadeSimulator,
    SpConv2DSim,
    TraceCache,
    build_simulator,
    frame_fingerprint,
    spec_fingerprint,
)
from repro.models import TABLE1_MODELS, build_model_spec


@pytest.fixture(scope="module")
def spp2_trace(kitti_batch):
    return trace_model(
        build_model_spec("SPP2"),
        kitti_batch.coords,
        kitti_batch.point_counts.astype(float),
    )


class TestTraceCache:
    def test_content_keyed_hit(self, kitti_batch):
        cache = TraceCache()
        spec = build_model_spec("SPP2")
        importance = kitti_batch.point_counts.astype(float)
        first = cache.get_trace(spec, kitti_batch.coords, importance)
        # A *distinct but equal* spec object and copied arrays still hit.
        second = cache.get_trace(
            build_model_spec("SPP2"),
            kitti_batch.coords.copy(),
            importance.copy(),
        )
        assert first is second
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "by_label": {},
            "disk_hits": 0,
            "disk_writes": 0,
            "delta_layers": 0,
            "full_layers": sum(
                1 for layer in first.layers if layer.rules is not None
            ),
            "quarantined": 0,
            "disk_dir": None,
        }

    def test_different_frame_misses(self, kitti_batch, mini_batch):
        cache = TraceCache()
        spec = build_model_spec("SPP2")
        cache.get_trace(spec, kitti_batch.coords)
        cache.get_trace(spec, mini_batch.coords)
        assert cache.stats()["misses"] == 2

    def test_spec_fingerprint_sensitivity(self):
        spp2 = build_model_spec("SPP2")
        assert spec_fingerprint(spp2) == spec_fingerprint(
            build_model_spec("SPP2")
        )
        assert spec_fingerprint(spp2) != spec_fingerprint(
            build_model_spec("SPP1")
        )
        mutated = build_model_spec("SPP2")
        mutated.layers[0].out_channels += 1
        assert spec_fingerprint(spp2) != spec_fingerprint(mutated)

    def test_frame_fingerprint_sensitivity(self, mini_batch):
        coords = mini_batch.coords
        base = frame_fingerprint(coords)
        assert base == frame_fingerprint(coords.copy())
        assert base != frame_fingerprint(coords[:-1])
        ones = frame_fingerprint(coords, np.ones(len(coords)))
        twos = frame_fingerprint(coords, 2 * np.ones(len(coords)))
        assert ones != twos

    def test_maxsize_evicts_oldest(self, kitti_batch, mini_batch):
        cache = TraceCache(maxsize=1)
        spec = build_model_spec("SPP3")
        cache.get_trace(spec, kitti_batch.coords)
        cache.get_trace(spec, mini_batch.coords)
        assert len(cache) == 1
        cache.get_trace(spec, kitti_batch.coords)   # evicted -> recompute
        assert cache.stats()["misses"] == 3


class TestRunnerCaching:
    def test_rulegen_once_per_model_frame(self, monkeypatch):
        """The acceptance property: trace_model (and with it rulegen)
        executes once per (scenario, model) no matter how many simulators
        consume the trace or how many times the grid re-runs."""
        import repro.engine.cache as cache_module

        calls = []
        real_trace_model = cache_module.trace_model

        def counting(spec, coords, importance=None, grid_shape=None,
                     rulegen_shards=None, prev_trace=None,
                     delta_threshold=None):
            calls.append(spec.name)
            return real_trace_model(spec, coords, importance,
                                    grid_shape=grid_shape,
                                    rulegen_shards=rulegen_shards,
                                    prev_trace=prev_trace,
                                    delta_threshold=delta_threshold)

        monkeypatch.setattr(cache_module, "trace_model", counting)
        runner = ExperimentRunner(
            simulators=["spade-he", "dense-he", "pointacc-he"],
            models=["SPP2", "SPP3"],
            cache=TraceCache(),
        )
        first = runner.run(parallel=True)
        second = runner.run(parallel=False)
        assert len(first) == len(second) == 6
        assert sorted(calls) == ["SPP2", "SPP3"]
        assert runner.cache.stats()["misses"] == 2
        # 2 trace lookups per run x 2 runs, minus the 2 misses.
        assert runner.cache.stats()["hits"] == 2


class TestRunnerParallelism:
    def test_parallel_equals_serial(self):
        runner = ExperimentRunner(
            simulators=["spade-he", "spade-le", "dense-he", "pointacc-he",
                        "spconv2d", "platform:A6000"],
            models=["SPP2", "SPP3"],
            scenarios=[Scenario("a", seed=0), Scenario("b", seed=7)],
            cache=TraceCache(),
            max_workers=4,
        )
        serial = runner.run(parallel=False)
        parallel = runner.run(parallel=True)
        assert len(serial) == len(parallel) == 2 * 2 * 6
        for left, right in zip(serial, parallel):
            assert left == right    # SimResult equality excludes `raw`

    def test_distinct_seeds_get_distinct_traces(self):
        # Regression: the trace map must key by the full scenario (the
        # seed included), not just its name — two seeds are two frames.
        runner = ExperimentRunner(
            simulators=["spade-he"],
            models=["SPP3"],
            scenarios=[Scenario("s0", seed=0), Scenario("s1", seed=7)],
            cache=TraceCache(),
        )
        table = runner.run(parallel=True)
        cycles = table.column("cycles")
        assert len(cycles) == 2
        assert cycles[0] != cycles[1]

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ExperimentRunner(
                simulators=["spade-he"],
                models=["SPP3"],
                scenarios=[Scenario("drive", seed=0),
                           Scenario("drive", seed=1)],
            )

    def test_duplicate_model_names_rejected(self):
        # Two distinct specs sharing a name would collapse to one trace.
        with pytest.raises(ValueError, match="unique"):
            ExperimentRunner(
                simulators=["spade-he"],
                models=[build_model_spec("SPP3"), "SPP3"],
            )

    def test_duplicate_simulator_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ExperimentRunner(
                simulators=["spade-he", SpadeSimulator(SPADE_HE)],
                models=["SPP3"],
            )

    def test_table1_named_spec_with_custom_grid_uses_spec_grid(self):
        # A spec reusing a Table-1 name but carrying a different grid
        # must still be framed on ITS grid, not the zoo's name lookup.
        from repro.data import MINI_GRID

        custom = build_model_spec("SPP3")
        custom.grid = MINI_GRID
        runner = ExperimentRunner(
            simulators=["spade-he"], models=[custom], cache=TraceCache(),
        )
        scenario = runner.scenarios[0]
        frame = runner.frame_provider.frame_for(scenario, custom)
        assert frame.grid.name == MINI_GRID.name
        result = runner.run().get(model="SPP3", simulator="SPADE.HE")
        assert 0 < result.cycles

    def test_custom_modelspec_uses_its_own_grid(self):
        # Regression: a renamed KITTI-grid spec must be fed a KITTI
        # frame, not the zoo's unknown-name nuScenes fallback.
        custom = build_model_spec("SPP2")
        custom.name = "SPP2-custom"
        runner = ExperimentRunner(
            simulators=["spade-he"],
            models=[custom, "SPP2"],
            cache=TraceCache(),
        )
        table = runner.run()
        assert (table.get(model="SPP2-custom", simulator="SPADE.HE").cycles
                == table.get(model="SPP2", simulator="SPADE.HE").cycles)

    def test_unknown_model_name_rejected(self):
        runner = ExperimentRunner(
            simulators=["spade-he"], models=["NotAModel"],
            cache=TraceCache(),
        )
        with pytest.raises(KeyError, match="NotAModel"):
            runner.run()

    def test_cell_filter_skips_cells_and_traces(self, monkeypatch):
        import repro.engine.cache as cache_module

        calls = []
        real_trace_model = cache_module.trace_model

        def counting(spec, coords, importance=None, grid_shape=None,
                     rulegen_shards=None, prev_trace=None,
                     delta_threshold=None):
            calls.append(spec.name)
            return real_trace_model(spec, coords, importance,
                                    grid_shape=grid_shape,
                                    rulegen_shards=rulegen_shards,
                                    prev_trace=prev_trace,
                                    delta_threshold=delta_threshold)

        monkeypatch.setattr(cache_module, "trace_model", counting)
        runner = ExperimentRunner(
            simulators=["spade-he", "dense-he"],
            models=["SPP2", "SPP3", "PP"],
            cache=TraceCache(),
            # SPADE only on the sparse models, DenseAcc only on PP.
            cell_filter=lambda scenario, model, simulator: (
                (model != "PP") == simulator.name.startswith("SPADE")
            ),
        )
        table = runner.run()
        labels = {(r.model, r.simulator) for r in table}
        assert labels == {("SPP2", "SPADE.HE"), ("SPP3", "SPADE.HE"),
                          ("PP", "DenseAcc.HE")}
        # Filtered-out cells are not traced either: 3 models, 3 traces,
        # but had the filter leaked, nothing changes here — the real
        # check is that no extra simulation rows exist above.
        assert sorted(calls) == ["PP", "SPP2", "SPP3"]

    def test_row_order_deterministic(self):
        runner = ExperimentRunner(
            simulators=["spade-he", "dense-he"],
            models=["SPP3"],
            scenarios=[Scenario("x"), Scenario("y", seed=5)],
            cache=TraceCache(),
        )
        table = runner.run()
        labels = [(r.scenario, r.model, r.simulator) for r in table]
        assert labels == [
            ("x", "SPP3", "SPADE.HE"),
            ("x", "SPP3", "DenseAcc.HE"),
            ("y", "SPP3", "SPADE.HE"),
            ("y", "SPP3", "DenseAcc.HE"),
        ]


class TestSchemaParity:
    """Each adapter reports exactly the numbers its legacy simulator
    produces — the unified schema is a view, not a re-model."""

    def test_spade(self, spp2_trace):
        legacy = SpadeAccelerator(SPADE_HE).run_trace(spp2_trace)
        unified = SpadeSimulator(SPADE_HE).run(spp2_trace)
        assert unified.cycles == legacy.total_cycles
        assert unified.latency_ms == legacy.latency_ms
        assert unified.fps == legacy.fps
        assert unified.energy_mj == legacy.energy_mj
        assert unified.dram_bytes == legacy.total_dram_bytes
        assert unified.utilization == legacy.utilization(SPADE_HE)
        assert len(unified.per_layer) == len(legacy.layers)
        assert unified.extras["breakdown"] == legacy.breakdown()

    def test_dense(self, spp2_trace):
        legacy = DenseAccelerator(SPADE_HE).run_trace(spp2_trace)
        unified = DenseAccSimulator(SPADE_HE).run(spp2_trace)
        assert unified.cycles == legacy.total_cycles
        assert unified.energy_mj == legacy.energy_mj
        assert unified.dram_bytes == legacy.total_dram_bytes

    def test_pointacc(self, spp2_trace):
        legacy = PointAccSimulator(SPADE_HE).run_trace(spp2_trace)
        unified = PointAccSim(SPADE_HE).run(spp2_trace)
        assert unified.cycles == legacy.total_cycles
        assert unified.dram_bytes == legacy.total_dram_bytes
        assert unified.extras["phases"] == legacy.phase_totals()
        assert unified.energy_mj is None

    def test_spconv2d(self, spp2_trace):
        model = SpConv2DAccModel()
        expected_cycles = sum(
            model.run_rules(layer.rules, layer.spec.in_channels,
                            layer.spec.out_channels).cycles
            for layer in spp2_trace.layers
            if layer.rules is not None
        )
        unified = SpConv2DSim().run(spp2_trace)
        assert unified.cycles == expected_cycles
        assert unified.extras["skipped_dense_layers"] == sum(
            1 for layer in spp2_trace.layers if layer.rules is None
        )

    def test_platform(self, spp2_trace):
        legacy = PlatformModel(A6000).run_trace(spp2_trace)
        unified = PlatformSim(A6000).run(spp2_trace)
        assert unified.latency_ms == legacy.latency_ms
        assert unified.fps == legacy.fps
        assert unified.energy_mj == legacy.energy_mj
        assert unified.cycles is None
        assert unified.extras["phases"] == legacy.phases()


class TestBuildSimulator:
    def test_registry_specs(self):
        assert build_simulator("spade-he").name == "SPADE.HE"
        assert build_simulator("spade-le-noopt").name == "SPADE.LE (no opt)"
        assert build_simulator("dense-le").name == "DenseAcc.LE"
        assert build_simulator("pointacc-he").name == "PointAcc.HE"
        assert build_simulator("spconv2d").name == "SpConv2D-Acc"
        assert build_simulator("platform:A6000").name == "A6000"

    def test_unknown_specs_raise(self):
        # Unknown/malformed specs are ValueErrors listing the valid
        # names (and remain KeyErrors for pre-registry callers — held
        # by tests/test_engine_registry.py).
        with pytest.raises(ValueError, match="config token"):
            build_simulator("spade-xl")
        with pytest.raises(ValueError, match="unknown platform"):
            build_simulator("platform:TPU")
        with pytest.raises(ValueError, match="registered"):
            build_simulator("warp-he")


class TestTable1SweepEquivalence:
    """Acceptance: the full Table-1 model sweep through the runner is
    numerically identical to the legacy direct-call path."""

    def test_full_sweep_matches_legacy(self):
        runner = ExperimentRunner(
            simulators=[SpadeSimulator(SPADE_HE), SpadeSimulator(SPADE_LE),
                        DenseAccSimulator(SPADE_HE), PointAccSim(SPADE_HE)],
            models=list(TABLE1_MODELS),
            cache=TraceCache(),
        )
        table = runner.run(parallel=True)
        assert len(table) == len(TABLE1_MODELS) * 4

        scenario = runner.scenarios[0]
        for name in TABLE1_MODELS:
            frame = runner.frame_provider.frame_for(scenario, name)
            trace = trace_model(
                build_model_spec(name),
                frame.coords,
                frame.point_counts.astype(float),
            )
            legacy_he = SpadeAccelerator(SPADE_HE).run_trace(trace)
            legacy_le = SpadeAccelerator(SPADE_LE).run_trace(trace)
            legacy_dense = DenseAccelerator(SPADE_HE).run_trace(trace)
            legacy_pa = PointAccSimulator(SPADE_HE).run_trace(trace)

            he = table.get(model=name, simulator="SPADE.HE")
            le = table.get(model=name, simulator="SPADE.LE")
            dense = table.get(model=name, simulator="DenseAcc.HE")
            pointacc = table.get(model=name, simulator="PointAcc.HE")

            assert he.cycles == legacy_he.total_cycles, name
            assert he.energy_mj == legacy_he.energy_mj, name
            assert le.cycles == legacy_le.total_cycles, name
            assert le.energy_mj == legacy_le.energy_mj, name
            assert dense.cycles == legacy_dense.total_cycles, name
            assert dense.energy_mj == legacy_dense.energy_mj, name
            assert pointacc.cycles == legacy_pa.total_cycles, name
            assert pointacc.dram_bytes == legacy_pa.total_dram_bytes, name


class TestResultTable:
    def test_filter_get_column(self):
        results = [
            SimResult(simulator=sim, model=model, cycles=index)
            for index, (sim, model) in enumerate(
                (s, m) for s in ("A", "B") for m in ("m1", "m2")
            )
        ]
        from repro.engine import ExperimentTable

        table = ExperimentTable(results=results)
        assert len(table.filter(simulator="A")) == 2
        assert table.get(simulator="B", model="m1").cycles == 2
        with pytest.raises(KeyError):
            table.get(simulator="A")        # ambiguous: two rows
        with pytest.raises(KeyError):
            table.get(simulator="C")        # no rows
        cycles = table.column("cycles")
        assert isinstance(cycles, np.ndarray)
        assert cycles.tolist() == [0, 1, 2, 3]
        assert table.simulators == ["A", "B"]
        assert table.models == ["m1", "m2"]

    def test_format_results_renders_none(self):
        from repro.analysis import format_results

        text = format_results(
            [SimResult(simulator="S", model="M", cycles=None,
                       latency_ms=1.5)],
            columns=("simulator", "model", "cycles", "latency_ms"),
        )
        assert "S" in text and "-" in text and "1.5" in text
