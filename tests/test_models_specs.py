"""Model workload specs and the Table I zoo."""

import pytest

from repro.models import (
    SPARSE_MODELS,
    TABLE1_MODELS,
    TABLE1_PAPER,
    LayerOp,
    build_model_spec,
    grid_for,
    load_model,
)
from repro.sparse import ConvType


class TestSpecConstruction:
    def test_all_table1_models_build(self):
        for name in TABLE1_MODELS:
            spec = build_model_spec(name)
            assert spec.num_layers > 5
            assert spec.name == name

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model_spec("YOLO")

    def test_pp_is_fully_dense(self):
        spec = build_model_spec("PP")
        assert all(layer.conv_type is None for layer in spec.layers)

    def test_spp1_uses_spconv_and_strided(self):
        spec = build_model_spec("SPP1")
        types = {layer.conv_type for layer in spec.layers
                 if layer.conv_type is not None}
        assert ConvType.SPCONV in types
        assert ConvType.STRIDED in types
        assert ConvType.DECONV in types

    def test_spp2_prunes_at_stage_starts(self):
        spec = build_model_spec("SPP2")
        pruned = [layer for layer in spec.layers
                  if layer.prune_keep is not None]
        # One strided (stage-start) layer per backbone stage.
        assert len(pruned) == 3
        assert all(layer.stride == 2 for layer in pruned)

    def test_spp3_submanifold_everywhere_in_backbone(self):
        spec = build_model_spec("SPP3")
        backbone = [layer for layer in spec.layers
                    if layer.name.startswith("B")]
        assert all(
            layer.conv_type in (ConvType.SUBM, ConvType.STRIDED_SUBM)
            for layer in backbone
        )

    def test_scp2_head_is_sparse(self):
        spec = build_model_spec("SCP2")
        heads = [layer for layer in spec.layers
                 if layer.name.startswith("H")]
        assert all(layer.op is LayerOp.SPARSE for layer in heads)

    def test_spp_head_is_dense(self):
        spec = build_model_spec("SPP1")
        heads = [layer for layer in spec.layers
                 if layer.name.startswith("H")]
        assert all(layer.op is LayerOp.DENSE for layer in heads)

    def test_pn_encoder_sparse_backbone_dense(self):
        spec = build_model_spec("PN")
        encoder = [layer for layer in spec.layers
                   if layer.name.startswith("E")]
        backbone = [layer for layer in spec.layers
                    if layer.name.startswith("B")]
        assert all(layer.op is LayerOp.SPARSE for layer in encoder)
        assert all(layer.op is LayerOp.DENSE for layer in backbone)

    def test_stage_structure_pp(self):
        spec = build_model_spec("PP")
        assert len(spec.layers_in_stage(1)) > 0
        stage2 = [l for l in spec.layers_in_stage(2)
                  if l.name.startswith("B")]
        assert len(stage2) == 6

    def test_dense_macs_positive(self):
        spec = build_model_spec("PP")
        for layer in spec.layers:
            assert layer.dense_macs(100, 100) > 0


class TestZoo:
    def test_paper_rows_complete(self):
        for name in TABLE1_MODELS:
            assert name in TABLE1_PAPER

    def test_sparse_models_have_positive_paper_sparsity(self):
        for name in SPARSE_MODELS:
            assert TABLE1_PAPER[name].sparsity_pct > 0

    def test_load_model_consistent(self):
        spec, scene, grid, row = load_model("SPP2")
        assert spec.name == "SPP2"
        assert grid is grid_for("SPP2")
        assert row.avg_gops == 12.30

    def test_kitti_models_use_kitti_grid(self):
        assert grid_for("PP").name == "kitti"
        assert grid_for("SCP1").name == "nuscenes"
        assert grid_for("SPN").name == "nuscenes-fine"
