"""Experiment service: the priority/fair-share scheduler, the durable
run store, and the ``repro serve`` daemon end to end — submit/status/
results/cancel/queue round trips, priority ordering through a shared
worker fleet, warm-cache fleet reuse, auth on the client socket, and a
daemon kill/restart recovering the queue from the store."""

import json
import threading
import time

import pytest

from repro.engine import ExperimentSpec, Worker
from repro.engine.dist import ConnectionClosed, ProtocolError
from repro.engine.service import (
    RECOVERABLE_STATES,
    RUN_STATES,
    TERMINAL_STATES,
    ExperimentService,
    RunScheduler,
    RunStore,
    ServiceClient,
    ServiceError,
)
from repro.engine.settings import (
    ENGINE_ENV_VARS,
    DistSettings,
    ServiceSettings,
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in ENGINE_ENV_VARS:
        monkeypatch.delenv(var, raising=False)


def service_spec(name: str, scenarios: int = 1, frames: int = 1) -> dict:
    return {
        "name": name,
        "simulators": ["spade-he"],
        "models": ["CP"],
        "scenarios": [{"name": f"s{i}", "seed": 7 + i, "frames": frames}
                      for i in range(scenarios)],
    }


def start_service(store_dir, *, max_inflight=1, submitter_cap=1,
                  token=None) -> ExperimentService:
    service = ExperimentService(
        ServiceSettings(host="127.0.0.1", port=0,
                        store_dir=str(store_dir),
                        max_inflight=max_inflight,
                        submitter_cap=submitter_cap,
                        drain_timeout=5.0),
        DistSettings.resolve(port=0, unit_timeout=60.0, token=token),
    )
    service.start()
    return service


def start_worker_thread(port: int, **kwargs) -> Worker:
    kwargs.setdefault("retry_seconds", 30.0)
    worker = Worker(("127.0.0.1", port), **kwargs)
    threading.Thread(target=worker.run, daemon=True).start()
    return worker


def wait_for_state(client: ServiceClient, run_id: str, state: str,
                   timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.status(run_id)
        if record.get("state") == state:
            return record
        time.sleep(0.05)
    raise AssertionError(
        f"run {run_id} never reached {state!r} "
        f"(last: {record.get('state')!r})"
    )


class TestRunScheduler:
    def drain(self, scheduler: RunScheduler) -> list:
        """Dispatch order: repeatedly next()+start()+finish()."""
        order = []
        while True:
            run_id = scheduler.next()
            if run_id is None:
                return order
            scheduler.start(run_id)
            scheduler.finish(run_id)
            order.append(run_id)

    def test_higher_priority_band_dispatches_first(self):
        scheduler = RunScheduler()
        scheduler.submit("low", priority=0, submitter="a")
        scheduler.submit("high", priority=5, submitter="a")
        scheduler.submit("mid", priority=2, submitter="a")
        assert self.drain(scheduler) == ["high", "mid", "low"]

    def test_fair_share_interleaves_submitters_within_a_band(self):
        scheduler = RunScheduler()
        for run_id, submitter in (("a1", "alice"), ("a2", "alice"),
                                  ("b1", "bob"), ("b2", "bob")):
            scheduler.submit(run_id, priority=1, submitter=submitter)
        # Round-robin across submitters, FIFO within one — not a1, a2
        # first just because alice submitted before bob.
        assert self.drain(scheduler) == ["a1", "b1", "a2", "b2"]

    def test_submitter_cap_holds_a_run_pending(self):
        scheduler = RunScheduler(max_inflight=2, submitter_cap=1)
        scheduler.submit("a1", submitter="alice")
        scheduler.submit("a2", submitter="alice")
        scheduler.submit("b1", submitter="bob")
        first = scheduler.next()
        assert first == "a1"
        scheduler.start(first)
        # alice is at her cap: a2 is pending, bob's run is the one ready.
        assert scheduler.next() == "b1"
        snapshot = scheduler.snapshot()
        readiness = {entry["run"]: entry["ready"]
                     for entry in snapshot["queued"]}
        assert readiness == {"a2": False, "b1": True}
        scheduler.finish("a1")
        assert scheduler.next() == "b1"     # round-robin: bob's turn

    def test_max_inflight_gates_dispatch(self):
        scheduler = RunScheduler(max_inflight=1)
        scheduler.submit("one", submitter="a")
        scheduler.submit("two", submitter="b")
        scheduler.start(scheduler.next())
        assert scheduler.next() is None
        scheduler.finish("one")
        assert scheduler.next() == "two"

    def test_cancel_queued_and_inflight(self):
        scheduler = RunScheduler()
        scheduler.submit("gone", submitter="a")
        scheduler.submit("busy", submitter="b")
        assert scheduler.cancel("gone") == "queued"
        assert scheduler.snapshot()["finished"]["gone"] == "cancelled"
        scheduler.start(scheduler.next())
        # Inflight: the scheduler only reports it — the caller must
        # interrupt the execution and then finish() the run.
        assert scheduler.cancel("busy") == "inflight"
        assert scheduler.inflight_ids() == ["busy"]
        scheduler.finish("busy", outcome="cancelled")
        assert scheduler.cancel("busy") is None
        assert scheduler.cancel("never-seen") is None

    def test_submit_is_idempotent(self):
        scheduler = RunScheduler()
        scheduler.submit("r1", priority=3, submitter="a")
        scheduler.submit("r1", priority=9, submitter="b")
        assert scheduler.queued_ids() == ["r1"]
        assert scheduler.snapshot()["queued"][0]["priority"] == 3


class TestRunStore:
    def test_create_allocates_monotonic_ids_across_restarts(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = store.create(service_spec("one"))
        second = store.create(service_spec("two"), priority=4,
                              submitter="alice")
        assert [first["run"], second["run"]] == ["r0001", "r0002"]
        assert second["priority"] == 4
        assert second["submitter"] == "alice"
        assert second["state"] == "queued"
        assert store.spec("r0002")["name"] == "two"
        # A fresh store over the same root continues the counter.
        reopened = RunStore(tmp_path / "runs")
        assert reopened.create(service_spec("three"))["run"] == "r0003"

    def test_update_timestamps_transitions(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run_id = store.create(service_spec("x"))["run"]
        state = store.update(run_id, state="running")
        assert state["running_at"] >= state["submitted_at"]
        state = store.update(run_id, state="done", rows=8)
        assert state["rows"] == 8
        assert "done_at" in state
        # No torn/leftover temp files from the atomic writes.
        assert not list((tmp_path / "runs").rglob("*.tmp"))

    def test_unknown_state_and_unknown_run_are_rejected(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        run_id = store.create(service_spec("x"))["run"]
        with pytest.raises(ValueError, match="unknown run state"):
            store.update(run_id, state="paused")
        with pytest.raises(KeyError, match="no run 'r9999'"):
            store.state("r9999")
        with pytest.raises(KeyError, match="no run 'r9999'"):
            store.spec("r9999")

    def test_recoverable_flips_running_to_interrupted(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        ids = [store.create(service_spec(name))["run"]
               for name in ("a", "b", "c", "d")]
        store.update(ids[1], state="running")
        store.update(ids[2], state="done")
        store.update(ids[3], state="cancelled")
        found = store.recoverable()
        assert [record["run"] for record in found] == [ids[0], ids[1]]
        assert [record["state"] for record in found] \
            == ["queued", "interrupted"]
        # The flip is durable, not just in the returned records.
        assert store.state(ids[1])["state"] == "interrupted"

    def test_state_vocabulary_is_closed(self):
        assert set(RECOVERABLE_STATES) | set(TERMINAL_STATES) \
            == set(RUN_STATES)
        assert not set(RECOVERABLE_STATES) & set(TERMINAL_STATES)


class TestServiceEndToEnd:
    def test_submit_runs_and_results_match_standalone(self, tmp_path):
        """Acceptance: a submitted spec executes on the fleet and the
        stored CSV is byte-identical to a standalone `repro run`."""
        spec = service_spec("round-trip", scenarios=2)
        expected = ExperimentSpec.from_dict(spec).build_runner().run(
            backend="serial").to_csv()
        service = start_service(tmp_path / "runs")
        try:
            start_worker_thread(service.port)
            client = ServiceClient(host="127.0.0.1", port=service.port)
            run_id = client.submit(spec, submitter="alice")["run"]
            assert run_id == "r0001"
            final = client.wait(run_id, timeout=120)
            assert final["state"] == "done"
            assert final["rows"] == 2
            results = client.results(run_id)
            assert results["csv"] == expected
            manifest = json.loads(results["manifest"])
            assert manifest["backend"] == "dist"
            # The durable copies match what the wire returned.
            store = service.store
            assert store.results_path(run_id).read_text() \
                == results["csv"]
            assert store.manifest_path(run_id).exists()
            summary = client.status()
            assert summary["service"]["store_dir"] == str(tmp_path / "runs")
            assert summary["workers"], "fleet roster missing"
        finally:
            service.stop()

    def test_results_before_done_and_bad_specs_are_errors(self, tmp_path):
        service = start_service(tmp_path / "runs")
        try:
            client = ServiceClient(host="127.0.0.1", port=service.port)
            with pytest.raises(ServiceError, match="config token"):
                client.submit(dict(service_spec("bad"),
                                   simulators=["spade"]))
            run_id = client.submit(service_spec("pending"))["run"]
            with pytest.raises(ServiceError,
                               match="available once it is done"):
                client.results(run_id)
            with pytest.raises(ServiceError, match="no run 'r9999'"):
                client.status("r9999")
        finally:
            service.stop()

    def test_priority_order_through_a_shared_fleet(self, tmp_path):
        """Acceptance: two queued specs at different priorities complete
        through one daemon in priority order, not submission order."""
        service = start_service(tmp_path / "runs")
        try:
            client = ServiceClient(host="127.0.0.1", port=service.port)
            # No workers yet: the blocker occupies the single inflight
            # slot so both follow-ups are queued when ordering matters.
            blocker = client.submit(service_spec("blocker"),
                                    submitter="z")["run"]
            wait_for_state(client, blocker, "running")
            low = client.submit(service_spec("low"), priority=0,
                                submitter="alice")["run"]
            high = client.submit(service_spec("high"), priority=5,
                                 submitter="bob")["run"]
            queue = client.queue()
            assert queue["inflight"] == [blocker]
            assert [entry["run"] for entry in queue["queued"]] \
                == [high, low]
            start_worker_thread(service.port)
            for run_id in (blocker, high, low):
                assert client.wait(run_id, timeout=120)["state"] == "done"
            assert client.status(high)["done_at"] \
                < client.status(low)["done_at"]
        finally:
            service.stop()

    def test_fleet_and_disk_cache_survive_across_runs(self, tmp_path):
        """Acceptance: the second identical submission reuses the same
        attached worker and hits the warm trace-cache disk tier."""
        service = start_service(tmp_path / "runs")
        try:
            worker = start_worker_thread(service.port)
            client = ServiceClient(host="127.0.0.1", port=service.port)
            first = client.submit(service_spec("warmup"))["run"]
            assert client.wait(first, timeout=120)["state"] == "done"
            second = client.submit(service_spec("warmed"))["run"]
            assert client.wait(second, timeout=120)["state"] == "done"
            # One worker served both runs over one connection.
            assert worker.units_done == 2
            stats = json.loads(
                service.store.manifest_path(second).read_text()
            )["cache"]
            assert stats["disk_hits"] >= 1
            assert stats["disk_writes"] == 0
        finally:
            service.stop()

    def test_cancel_queued_and_inflight_runs(self, tmp_path):
        service = start_service(tmp_path / "runs")
        try:
            client = ServiceClient(host="127.0.0.1", port=service.port)
            # No workers: the first run dispatches and then waits on the
            # fleet forever; the second stays queued behind it.
            inflight = client.submit(service_spec("inflight"))["run"]
            wait_for_state(client, inflight, "running")
            queued = client.submit(service_spec("queued"))["run"]
            assert client.cancel(queued)["state"] == "cancelled"
            assert client.status(queued)["state"] == "cancelled"
            reply = client.cancel(inflight)
            assert reply["state"] == "cancelling"
            assert client.wait(inflight, timeout=30)["state"] \
                == "cancelled"
            with pytest.raises(ServiceError, match="already cancelled"):
                client.cancel(inflight)
        finally:
            service.stop()

    def test_daemon_restart_recovers_queue_and_resumes(self, tmp_path):
        """Acceptance: killing the daemon mid-queue loses nothing — a
        restart re-queues pending runs and resumes the interrupted one
        from its journal without re-executing completed units."""
        spec = service_spec("resume-me", scenarios=2)
        expected = ExperimentSpec.from_dict(spec).build_runner().run(
            backend="serial").to_csv()
        store_dir = tmp_path / "runs"
        service = start_service(store_dir)
        run_id = None
        pending = None
        try:
            client = ServiceClient(host="127.0.0.1", port=service.port)
            run_id = client.submit(spec, submitter="alice")["run"]
            pending = client.submit(service_spec("behind"),
                                    submitter="bob")["run"]
            # The worker drains after one of the two units: unit one is
            # journalled, unit two never starts, the run stays running.
            worker = start_worker_thread(service.port, max_units=1)
            deadline = time.monotonic() + 60
            while worker.units_done < 1:
                assert time.monotonic() < deadline, "unit never finished"
                time.sleep(0.05)
        finally:
            service.stop(drain=False)       # the "kill": no drain
        assert service.store.state(run_id)["state"] == "interrupted"
        assert service.store.state(pending)["state"] == "queued"

        revived = start_service(store_dir)
        try:
            start_worker_thread(revived.port)
            client = ServiceClient(host="127.0.0.1", port=revived.port)
            final = client.wait(run_id, timeout=120)
            assert final["state"] == "done"
            # Exactly one unit resumed from the journal, one appended —
            # nothing duplicated, nothing lost.
            assert final["resumed_units"] == 1
            assert final["appended_units"] == 1
            assert client.results(run_id)["csv"] == expected
            assert client.wait(pending, timeout=120)["state"] == "done"
        finally:
            revived.stop()

    def test_client_socket_requires_the_shared_token(self, tmp_path,
                                                     monkeypatch):
        service = start_service(tmp_path / "runs", token="s3cret")
        try:
            good = ServiceClient(host="127.0.0.1", port=service.port,
                                 token="s3cret")
            assert good.status()["service"]["draining"] is False
            wrong = ServiceClient(host="127.0.0.1", port=service.port,
                                  token="wrong")
            with pytest.raises((ConnectionClosed, OSError)):
                wrong.status()
            unconfigured = ServiceClient(host="127.0.0.1",
                                         port=service.port, token="")
            with pytest.raises(ProtocolError,
                               match="no token is configured"):
                unconfigured.status()
            # An authenticated worker joins the same guarded socket and
            # serves a run end to end.
            monkeypatch.setenv("REPRO_ENGINE_DIST_TOKEN", "s3cret")
            start_worker_thread(service.port)
            run_id = good.submit(service_spec("guarded"))["run"]
            assert good.wait(run_id, timeout=120)["state"] == "done"
        finally:
            service.stop()

    def test_draining_service_rejects_new_submissions(self, tmp_path):
        service = start_service(tmp_path / "runs")
        try:
            service._draining = True
            client = ServiceClient(host="127.0.0.1", port=service.port)
            with pytest.raises(ServiceError, match="shutting down"):
                client.submit(service_spec("late"))
        finally:
            service._draining = False
            service.stop()


class TestServiceCli:
    def test_cli_verbs_reach_the_daemon(self, tmp_path, monkeypatch,
                                        capsys):
        from repro.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(service_spec("via-cli")))
        service = start_service(tmp_path / "runs")
        try:
            start_worker_thread(service.port)
            monkeypatch.setenv("REPRO_ENGINE_SERVICE_HOST", "127.0.0.1")
            monkeypatch.setenv("REPRO_ENGINE_SERVICE_PORT",
                               str(service.port))
            assert main(["submit", str(spec_file), "--wait"]) == 0
            run_id = capsys.readouterr().out.strip().splitlines()[0]
            assert main(["status", run_id]) == 0
            status_out = capsys.readouterr().out
            assert status_out.splitlines()[0] == f"run {run_id}"
            assert "state         : done" in status_out
            assert main(["results", run_id]) == 0
            csv_text = capsys.readouterr().out
            assert csv_text == service.store.results_path(
                run_id).read_text()
            assert main(["queue"]) == 0
            assert "inflight (0/1): -" in capsys.readouterr().out
        finally:
            service.stop()

    def test_cli_reports_an_unreachable_daemon(self, capsys):
        from repro.cli import main

        assert main(["queue", "--host", "127.0.0.1",
                     "--port", "1"]) == 2
        err = capsys.readouterr().err
        assert "repro serve" in err
