"""ExperimentTable CSV/JSON serialization round trips."""

import csv
import io

import numpy as np
import pytest

from repro.engine import (
    ExperimentRunner,
    ExperimentTable,
    RESULT_COLUMNS,
    SimResult,
    TraceCache,
    mean_result,
)


def _row(simulator="S", model="M", scenario="default", frame=None,
         cycles=100, latency_ms=1.5):
    return SimResult(
        simulator=simulator, model=model, scenario=scenario, frame=frame,
        cycles=cycles, latency_ms=latency_ms, fps=1e3 / latency_ms,
        energy_mj=None, dram_bytes=2048, utilization=0.5,
        per_layer=[{"name": "L1", "cycles": 60},
                   {"name": "L2", "cycles": 40}],
        extras={"phases": {"map": 10, "mxu": 90}},
    )


def _batched_table():
    per_frame = [_row(frame=0), _row(frame=1, cycles=200, latency_ms=3.0)]
    return ExperimentTable(
        results=per_frame + [mean_result(per_frame)] + [
            _row(simulator="T", cycles=None, latency_ms=2.0),
        ]
    )


class TestCsv:
    def test_header_and_rows(self):
        text = _batched_table().to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == list(RESULT_COLUMNS)
        assert len(rows) == 1 + 4
        # The mean aggregate row is labelled and averaged.
        mean_row = rows[3]
        assert mean_row[rows[0].index("frame")] == "mean"
        assert float(mean_row[rows[0].index("cycles")]) == 150.0
        # None metrics are empty cells.
        assert rows[4][rows[0].index("cycles")] == ""

    def test_writes_path(self, tmp_path):
        path = tmp_path / "table.csv"
        text = _batched_table().to_csv(path=path)
        assert path.read_text() == text


class TestJsonRoundTrip:
    def test_full_round_trip_including_batched_and_mean_rows(self):
        table = _batched_table()
        again = ExperimentTable.from_json(table.to_json())
        assert len(again) == len(table)
        for left, right in zip(table, again):
            assert left == right            # dataclass eq (raw excluded)
        # The mean row survives with its frame label and extras.
        mean = again.get(simulator="S", frame="mean")
        assert mean.extras == {"frames": 2}
        assert mean.cycles == 150.0

    def test_numpy_scalars_serialize_native(self):
        table = ExperimentTable(results=[
            _row(cycles=np.int64(123), latency_ms=float(np.float64(2.0)))
        ])
        again = ExperimentTable.from_json(table.to_json())
        assert again.results[0].cycles == 123
        assert isinstance(again.results[0].cycles, int)

    def test_unserializable_extras_dropped_not_stringified(self):
        row = _row()
        row.extras["legacy"] = object()
        text = ExperimentTable(results=[row]).to_json()
        again = ExperimentTable.from_json(text)
        assert "legacy" not in again.results[0].extras
        assert again.results[0].extras["phases"] == {"map": 10, "mxu": 90}

    def test_from_json_accepts_path(self, tmp_path):
        path = tmp_path / "table.json"
        table = _batched_table()
        table.to_json(path=path)
        assert len(ExperimentTable.from_json(path)) == len(table)

    def test_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="schema"):
            ExperimentTable.from_json("{\"results\": []}")
        with pytest.raises(ValueError, match="JSON|document"):
            ExperimentTable.from_json("not json at all {")

    def test_rejects_unknown_record_keys(self):
        payload = {
            "schema": "repro.ExperimentTable",
            "version": 1,
            "results": [{"simulator": "S", "model": "M", "cyclez": 1}],
        }
        with pytest.raises(ValueError, match="cyclez"):
            ExperimentTable.from_json(payload)


class TestLiveTableRoundTrip:
    """A real engine sweep (batched scenario included) survives JSON."""

    def test_batched_sweep(self):
        from repro.engine import Scenario

        runner = ExperimentRunner(
            simulators=["spade-he"],
            models=["SPP3"],
            scenarios=[Scenario("drive", seed=0, frames=2)],
            cache=TraceCache(),
            backend="serial",
        )
        table = runner.run()
        again = ExperimentTable.from_json(table.to_json())
        assert [r.frame for r in again] == [0, 1, "mean"]
        for left, right in zip(table, again):
            assert left.as_dict() == right.as_dict()
