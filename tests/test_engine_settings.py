"""EngineSettings: the single resolver for every engine env knob."""

import pytest

from repro.engine import (
    BACKEND_ENV_VAR,
    CACHE_DIR_ENV_VAR,
    DELTA_THRESHOLD_ENV_VAR,
    DELTA_TRACE_ENV_VAR,
    ENGINE_ENV_VARS,
    RULEGEN_SHARDS_ENV_VAR,
    TRACE_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    EngineSettings,
    ExperimentRunner,
    TraceCache,
)
from repro.engine.settings import (
    resolve_cache_dir,
    resolve_delta_threshold,
    resolve_delta_trace,
    resolve_rulegen_shards,
    resolve_trace_workers,
    resolve_workers,
)
from repro.sparse import rulegen as sparse_rulegen


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in ENGINE_ENV_VARS:
        monkeypatch.delenv(var, raising=False)


class TestPrecedence:
    def test_defaults(self):
        settings = EngineSettings.resolve()
        assert settings.backend == "thread"
        assert settings.workers >= 1
        assert settings.trace_workers == settings.workers
        assert settings.rulegen_shards == 1
        assert settings.cache_dir is None
        assert settings.delta_trace is False
        assert settings.delta_threshold == 0.5

    def test_env_overrides_defaults(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(TRACE_WORKERS_ENV_VAR, "2")
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "4")
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        monkeypatch.setenv(DELTA_TRACE_ENV_VAR, "1")
        monkeypatch.setenv(DELTA_THRESHOLD_ENV_VAR, "0.25")
        settings = EngineSettings.resolve()
        assert settings == EngineSettings(
            backend="serial", workers=3, trace_workers=2,
            rulegen_shards=4, cache_dir=str(tmp_path),
            delta_trace=True, delta_threshold=0.25,
        )

    def test_explicit_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        settings = EngineSettings.resolve(
            backend="process", workers=5, cache_dir=None,
        )
        assert settings.backend == "process"
        assert settings.workers == 5
        # Explicit None disables the disk tier despite the env var.
        assert settings.cache_dir is None

    def test_trace_workers_follow_workers(self):
        assert EngineSettings.resolve(workers=6).trace_workers == 6
        assert EngineSettings.resolve(
            workers=6, trace_workers=2
        ).trace_workers == 2


class TestBadValuesNameTheOffender:
    """A bad value for *any* knob names the offending variable."""

    @pytest.mark.parametrize("var, bad", [
        (WORKERS_ENV_VAR, "zero"),
        (WORKERS_ENV_VAR, "0"),
        (WORKERS_ENV_VAR, "-2"),
        (TRACE_WORKERS_ENV_VAR, "many"),
        (TRACE_WORKERS_ENV_VAR, "0"),
        (RULEGEN_SHARDS_ENV_VAR, "x"),
        (RULEGEN_SHARDS_ENV_VAR, "-1"),
        (DELTA_TRACE_ENV_VAR, "maybe"),
        (DELTA_TRACE_ENV_VAR, "2"),
        (DELTA_THRESHOLD_ENV_VAR, "0"),
        (DELTA_THRESHOLD_ENV_VAR, "1.5"),
        (DELTA_THRESHOLD_ENV_VAR, "half"),
    ])
    def test_env_knobs(self, monkeypatch, var, bad):
        monkeypatch.setenv(var, bad)
        with pytest.raises(ValueError, match=var):
            EngineSettings.resolve()

    @pytest.mark.parametrize("kwarg, source", [
        ("workers", "max_workers"),
        ("trace_workers", "trace_workers"),
        ("rulegen_shards", "rulegen_shards"),
    ])
    def test_explicit_knobs(self, kwarg, source):
        with pytest.raises(ValueError, match=source):
            ExperimentRunner(
                simulators=["spade-he"], models=["SPP3"],
                **{"max_workers" if kwarg == "workers" else kwarg: "bad"},
            )

    def test_resolvers_name_arguments(self):
        with pytest.raises(ValueError, match="max_workers"):
            resolve_workers("nope")
        with pytest.raises(ValueError, match="trace_workers"):
            resolve_trace_workers(0)
        with pytest.raises(ValueError, match="rulegen_shards"):
            resolve_rulegen_shards(-3)
        with pytest.raises(ValueError, match="delta_trace"):
            resolve_delta_trace("sometimes")
        with pytest.raises(ValueError, match="delta_threshold"):
            resolve_delta_threshold(0)


class TestDelegation:
    """Every engine layer routes env reads through this one module."""

    def test_runner_delegates(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        monkeypatch.setenv(TRACE_WORKERS_ENV_VAR, "2")
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "3")
        runner = ExperimentRunner(simulators=["spade-he"],
                                  models=["SPP3"])
        assert runner.max_workers == 4
        assert runner.trace_workers == 2
        assert runner.rulegen_shards == 3

    def test_cache_delegates(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert str(TraceCache().disk_dir) == str(tmp_path)
        assert TraceCache(disk_dir=None).disk_dir is None

    def test_sparse_rulegen_delegates(self, monkeypatch):
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "5")
        assert sparse_rulegen.resolve_rulegen_shards() == 5

    def test_env_var_names_agree_across_layers(self):
        # The sparse layer mirrors the literal (it cannot import the
        # engine at module scope); the mirror must never drift.
        assert (sparse_rulegen.RULEGEN_SHARDS_ENV_VAR
                == RULEGEN_SHARDS_ENV_VAR)
        assert (sparse_rulegen.DELTA_THRESHOLD_ENV_VAR
                == DELTA_THRESHOLD_ENV_VAR)

    def test_sparse_delta_threshold_delegates(self, monkeypatch):
        monkeypatch.setenv(DELTA_THRESHOLD_ENV_VAR, "0.125")
        assert sparse_rulegen.resolve_delta_threshold() == 0.125

    def test_runner_delegates_delta_knobs(self, monkeypatch):
        monkeypatch.setenv(DELTA_TRACE_ENV_VAR, "yes")
        monkeypatch.setenv(DELTA_THRESHOLD_ENV_VAR, "0.75")
        runner = ExperimentRunner(simulators=["spade-he"],
                                  models=["SPP3"])
        assert runner.delta_trace is True
        assert runner.delta_threshold == 0.75

    def test_no_stray_environ_reads_in_engine(self):
        # The dedupe contract itself: apart from settings.py, no engine
        # module (nor sparse rulegen) reads os.environ directly.
        import inspect

        import repro.engine.backends
        import repro.engine.cache
        import repro.engine.dist.coordinator
        import repro.engine.dist.protocol
        import repro.engine.dist.worker
        import repro.engine.runner
        import repro.engine.service.client
        import repro.engine.service.scheduler
        import repro.engine.service.server
        import repro.engine.service.store

        for module in (repro.engine.runner, repro.engine.backends,
                       repro.engine.cache, sparse_rulegen,
                       repro.engine.dist.coordinator,
                       repro.engine.dist.protocol,
                       repro.engine.dist.worker,
                       repro.engine.service.client,
                       repro.engine.service.scheduler,
                       repro.engine.service.server,
                       repro.engine.service.store):
            assert "os.environ" not in inspect.getsource(module), module

    def test_resolve_cache_dir_empty_string_is_none(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, "")
        assert resolve_cache_dir() is None


class TestDistKnobs:
    """REPRO_ENGINE_DIST_* resolves through the same single resolver."""

    def test_defaults(self):
        from repro.engine.settings import DistSettings

        settings = DistSettings.resolve()
        assert settings.host == "127.0.0.1"
        assert settings.port == 7463
        assert settings.chunksize == 1
        assert settings.unit_timeout == 300.0
        assert settings.heartbeat_interval == 1.0
        assert settings.worker_timeout == 10.0
        assert settings.max_attempts == 3
        assert settings.start_timeout == 60.0
        assert settings.trace_stage is True
        assert settings.token is None
        assert settings.batch_rows == 0

    def test_env_overrides_defaults(self, monkeypatch):
        from repro.engine.settings import DistSettings

        monkeypatch.setenv("REPRO_ENGINE_DIST_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_ENGINE_DIST_PORT", "9001")
        monkeypatch.setenv("REPRO_ENGINE_DIST_CHUNKSIZE", "4")
        monkeypatch.setenv("REPRO_ENGINE_DIST_UNIT_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_ENGINE_DIST_HEARTBEAT", "0.5")
        monkeypatch.setenv("REPRO_ENGINE_DIST_WORKER_TIMEOUT", "3")
        monkeypatch.setenv("REPRO_ENGINE_DIST_MAX_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_ENGINE_DIST_START_TIMEOUT", "5")
        monkeypatch.setenv("REPRO_ENGINE_DIST_TRACE_STAGE", "0")
        monkeypatch.setenv("REPRO_ENGINE_DIST_TOKEN", "s3cret")
        monkeypatch.setenv("REPRO_ENGINE_DIST_BATCH_ROWS", "16")
        settings = DistSettings.resolve()
        assert settings == DistSettings(
            host="0.0.0.0", port=9001, chunksize=4, unit_timeout=12.5,
            heartbeat_interval=0.5, worker_timeout=3.0, max_attempts=7,
            start_timeout=5.0, trace_stage=False, token="s3cret",
            batch_rows=16,
        )

    def test_explicit_beats_env(self, monkeypatch):
        from repro.engine.settings import DistSettings

        monkeypatch.setenv("REPRO_ENGINE_DIST_PORT", "9001")
        monkeypatch.setenv("REPRO_ENGINE_DIST_MAX_ATTEMPTS", "7")
        settings = DistSettings.resolve(port=0, max_attempts=1)
        assert settings.port == 0            # ephemeral is a valid choice
        assert settings.max_attempts == 1

    @pytest.mark.parametrize("var, bad", [
        ("REPRO_ENGINE_DIST_PORT", "loud"),
        ("REPRO_ENGINE_DIST_PORT", "70000"),
        ("REPRO_ENGINE_DIST_PORT", "-1"),
        ("REPRO_ENGINE_DIST_CHUNKSIZE", "0"),
        ("REPRO_ENGINE_DIST_UNIT_TIMEOUT", "-3"),
        ("REPRO_ENGINE_DIST_UNIT_TIMEOUT", "soon"),
        ("REPRO_ENGINE_DIST_HEARTBEAT", "0"),
        ("REPRO_ENGINE_DIST_WORKER_TIMEOUT", "never"),
        ("REPRO_ENGINE_DIST_MAX_ATTEMPTS", "1.5"),
        ("REPRO_ENGINE_DIST_START_TIMEOUT", "0"),
        ("REPRO_ENGINE_DIST_TRACE_STAGE", "maybe"),
        ("REPRO_ENGINE_DIST_BATCH_ROWS", "-1"),
        ("REPRO_ENGINE_DIST_BATCH_ROWS", "lots"),
    ])
    def test_bad_env_values_name_the_variable(self, monkeypatch, var,
                                              bad):
        from repro.engine.settings import DistSettings

        monkeypatch.setenv(var, bad)
        with pytest.raises(ValueError, match=var):
            DistSettings.resolve()

    def test_bad_arguments_name_the_knob(self):
        from repro.engine.settings import (
            resolve_dist_max_attempts,
            resolve_dist_port,
            resolve_dist_unit_timeout,
        )

        with pytest.raises(ValueError, match="port"):
            resolve_dist_port("80000")
        with pytest.raises(ValueError, match="unit_timeout"):
            resolve_dist_unit_timeout(0)
        with pytest.raises(ValueError, match="max_attempts"):
            resolve_dist_max_attempts("few")

    def test_empty_token_means_no_auth(self, monkeypatch):
        from repro.engine.settings import DistSettings

        monkeypatch.setenv("REPRO_ENGINE_DIST_TOKEN", "")
        assert DistSettings.resolve().token is None
        assert DistSettings.resolve(token="").token is None

    def test_as_dict_never_leaks_the_token(self):
        from repro.engine.settings import DistSettings

        masked = DistSettings.resolve(token="s3cret").as_dict()
        assert masked["token"] is True
        assert "s3cret" not in repr(masked)
        assert DistSettings.resolve().as_dict()["token"] is False

    def test_dist_vars_are_in_the_engine_contract(self):
        dist_vars = [var for var in ENGINE_ENV_VARS
                     if var.startswith("REPRO_ENGINE_DIST_")]
        assert len(dist_vars) == 11


class TestServiceKnobs:
    """REPRO_ENGINE_SERVICE_* resolves through the same resolver."""

    def test_defaults(self):
        from repro.engine.settings import ServiceSettings

        settings = ServiceSettings.resolve()
        assert settings == ServiceSettings(
            host="127.0.0.1", port=7464, store_dir="runs",
            max_inflight=1, submitter_cap=1, drain_timeout=30.0,
        )

    def test_env_overrides_defaults(self, monkeypatch, tmp_path):
        from repro.engine.settings import ServiceSettings

        monkeypatch.setenv("REPRO_ENGINE_SERVICE_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_ENGINE_SERVICE_PORT", "7700")
        monkeypatch.setenv("REPRO_ENGINE_SERVICE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_ENGINE_SERVICE_MAX_INFLIGHT", "3")
        monkeypatch.setenv("REPRO_ENGINE_SERVICE_SUBMITTER_CAP", "2")
        monkeypatch.setenv("REPRO_ENGINE_SERVICE_DRAIN_TIMEOUT", "12.5")
        settings = ServiceSettings.resolve()
        assert settings == ServiceSettings(
            host="0.0.0.0", port=7700, store_dir=str(tmp_path),
            max_inflight=3, submitter_cap=2, drain_timeout=12.5,
        )

    def test_explicit_beats_env(self, monkeypatch):
        from repro.engine.settings import ServiceSettings

        monkeypatch.setenv("REPRO_ENGINE_SERVICE_PORT", "7700")
        monkeypatch.setenv("REPRO_ENGINE_SERVICE_MAX_INFLIGHT", "3")
        settings = ServiceSettings.resolve(port=0, max_inflight=1)
        assert settings.port == 0          # ephemeral is a valid choice
        assert settings.max_inflight == 1

    @pytest.mark.parametrize("var, bad", [
        ("REPRO_ENGINE_SERVICE_PORT", "loud"),
        ("REPRO_ENGINE_SERVICE_PORT", "70000"),
        ("REPRO_ENGINE_SERVICE_MAX_INFLIGHT", "0"),
        ("REPRO_ENGINE_SERVICE_SUBMITTER_CAP", "-1"),
        ("REPRO_ENGINE_SERVICE_DRAIN_TIMEOUT", "0"),
        ("REPRO_ENGINE_SERVICE_DRAIN_TIMEOUT", "later"),
    ])
    def test_bad_env_values_name_the_variable(self, monkeypatch, var,
                                              bad):
        from repro.engine.settings import ServiceSettings

        monkeypatch.setenv(var, bad)
        with pytest.raises(ValueError, match=var):
            ServiceSettings.resolve()

    def test_service_vars_are_in_the_engine_contract(self):
        service_vars = [var for var in ENGINE_ENV_VARS
                        if var.startswith("REPRO_ENGINE_SERVICE_")]
        assert len(service_vars) == 6
