"""EngineSettings: the single resolver for every engine env knob."""

import pytest

from repro.engine import (
    BACKEND_ENV_VAR,
    CACHE_DIR_ENV_VAR,
    ENGINE_ENV_VARS,
    RULEGEN_SHARDS_ENV_VAR,
    TRACE_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    EngineSettings,
    ExperimentRunner,
    TraceCache,
)
from repro.engine.settings import (
    resolve_cache_dir,
    resolve_rulegen_shards,
    resolve_trace_workers,
    resolve_workers,
)
from repro.sparse import rulegen as sparse_rulegen


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in ENGINE_ENV_VARS:
        monkeypatch.delenv(var, raising=False)


class TestPrecedence:
    def test_defaults(self):
        settings = EngineSettings.resolve()
        assert settings.backend == "thread"
        assert settings.workers >= 1
        assert settings.trace_workers == settings.workers
        assert settings.rulegen_shards == 1
        assert settings.cache_dir is None

    def test_env_overrides_defaults(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(TRACE_WORKERS_ENV_VAR, "2")
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "4")
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        settings = EngineSettings.resolve()
        assert settings == EngineSettings(
            backend="serial", workers=3, trace_workers=2,
            rulegen_shards=4, cache_dir=str(tmp_path),
        )

    def test_explicit_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BACKEND_ENV_VAR, "serial")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        settings = EngineSettings.resolve(
            backend="process", workers=5, cache_dir=None,
        )
        assert settings.backend == "process"
        assert settings.workers == 5
        # Explicit None disables the disk tier despite the env var.
        assert settings.cache_dir is None

    def test_trace_workers_follow_workers(self):
        assert EngineSettings.resolve(workers=6).trace_workers == 6
        assert EngineSettings.resolve(
            workers=6, trace_workers=2
        ).trace_workers == 2


class TestBadValuesNameTheOffender:
    """A bad value for *any* knob names the offending variable."""

    @pytest.mark.parametrize("var, bad", [
        (WORKERS_ENV_VAR, "zero"),
        (WORKERS_ENV_VAR, "0"),
        (WORKERS_ENV_VAR, "-2"),
        (TRACE_WORKERS_ENV_VAR, "many"),
        (TRACE_WORKERS_ENV_VAR, "0"),
        (RULEGEN_SHARDS_ENV_VAR, "x"),
        (RULEGEN_SHARDS_ENV_VAR, "-1"),
    ])
    def test_env_knobs(self, monkeypatch, var, bad):
        monkeypatch.setenv(var, bad)
        with pytest.raises(ValueError, match=var):
            EngineSettings.resolve()

    @pytest.mark.parametrize("kwarg, source", [
        ("workers", "max_workers"),
        ("trace_workers", "trace_workers"),
        ("rulegen_shards", "rulegen_shards"),
    ])
    def test_explicit_knobs(self, kwarg, source):
        with pytest.raises(ValueError, match=source):
            ExperimentRunner(
                simulators=["spade-he"], models=["SPP3"],
                **{"max_workers" if kwarg == "workers" else kwarg: "bad"},
            )

    def test_resolvers_name_arguments(self):
        with pytest.raises(ValueError, match="max_workers"):
            resolve_workers("nope")
        with pytest.raises(ValueError, match="trace_workers"):
            resolve_trace_workers(0)
        with pytest.raises(ValueError, match="rulegen_shards"):
            resolve_rulegen_shards(-3)


class TestDelegation:
    """Every engine layer routes env reads through this one module."""

    def test_runner_delegates(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        monkeypatch.setenv(TRACE_WORKERS_ENV_VAR, "2")
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "3")
        runner = ExperimentRunner(simulators=["spade-he"],
                                  models=["SPP3"])
        assert runner.max_workers == 4
        assert runner.trace_workers == 2
        assert runner.rulegen_shards == 3

    def test_cache_delegates(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert str(TraceCache().disk_dir) == str(tmp_path)
        assert TraceCache(disk_dir=None).disk_dir is None

    def test_sparse_rulegen_delegates(self, monkeypatch):
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "5")
        assert sparse_rulegen.resolve_rulegen_shards() == 5

    def test_env_var_names_agree_across_layers(self):
        # The sparse layer mirrors the literal (it cannot import the
        # engine at module scope); the mirror must never drift.
        assert (sparse_rulegen.RULEGEN_SHARDS_ENV_VAR
                == RULEGEN_SHARDS_ENV_VAR)

    def test_no_stray_environ_reads_in_engine(self):
        # The dedupe contract itself: apart from settings.py, no engine
        # module (nor sparse rulegen) reads os.environ directly.
        import inspect

        import repro.engine.backends
        import repro.engine.cache
        import repro.engine.runner

        for module in (repro.engine.runner, repro.engine.backends,
                       repro.engine.cache, sparse_rulegen):
            assert "os.environ" not in inspect.getsource(module), module

    def test_resolve_cache_dir_empty_string_is_none(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, "")
        assert resolve_cache_dir() is None
