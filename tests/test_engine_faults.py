"""Fault-injection harness: plan grammar, deterministic counted
triggers, settings/spec resolution, worker backoff, cache quarantine."""

import random
import time

import pytest

from repro.engine import ExperimentSpec, TraceCache
from repro.engine import faults
from repro.engine.cache import QUARANTINE_SUFFIX, scan_disk_tier
from repro.engine.dist.worker import Worker, backoff_delays
from repro.engine.faults import FaultPlan, InjectedFault
from repro.engine.settings import (
    DEGRADE_ENV_VAR,
    ENGINE_ENV_VARS,
    FAULTS_ENV_VAR,
    EngineSettings,
    resolve_degrade,
    resolve_faults,
)
from repro.models.specs import build_model_spec


@pytest.fixture(autouse=True)
def disarm():
    faults.reset()
    yield
    faults.reset()


class TestPlanGrammar:
    def test_parse_multi_rule_plan(self):
        plan = FaultPlan.parse(
            "kill_worker:unit=2; drop_conn:after=5;"
            "delay_conn:after=3,seconds=0.25"
        )
        assert [r.kind for r in plan.rules] \
            == ["kill_worker", "drop_conn", "delay_conn"]
        assert plan.rules[0].trigger == 2
        assert plan.rules[2].seconds == 0.25
        assert plan

    def test_blank_plans_are_empty(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ;  ")

    def test_triggers_default_to_one(self):
        plan = FaultPlan.parse("stall_heartbeat")
        assert plan.rules[0].trigger == 1

    @pytest.mark.parametrize("text, match", [
        ("explode", "unknown fault kind"),
        ("kill_worker:unit=0", "positive integer"),
        ("kill_worker:unit=x", "positive integer"),
        ("kill_worker:units=2", "unknown parameter"),
        ("kill_worker:unit", "malformed parameter"),
        ("kill_worker:unit=1,unit=2", "duplicate parameter"),
        ("delay_conn:after=1,seconds=-2", "seconds must be"),
        ("kill_worker:seconds=1", "unknown parameter"),
        ("drop_conn:after=1,p=2", "p must be"),
        ("drop_conn:after=1,p=zero", "p must be"),
    ])
    def test_grammar_errors_name_the_rule(self, text, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.parse(text)

    def test_error_counts_rules_from_one(self):
        with pytest.raises(ValueError, match="rule 2"):
            FaultPlan.parse("stall_heartbeat;explode")


class TestInjector:
    def test_counted_trigger_fires_once(self):
        faults.install("drop_conn:after=3")
        assert faults.check("protocol.message") is None
        assert faults.check("protocol.message") is None
        with pytest.raises(InjectedFault, match="drop_conn"):
            faults.check("protocol.message")
        # One-shot: the rule disarmed after firing.
        assert faults.check("protocol.message") is None

    def test_sites_are_independent(self):
        faults.install("drop_conn:after=1")
        assert faults.check("worker.unit", unit=1) is None
        assert faults.check("cache.store", key="k") is None
        with pytest.raises(InjectedFault):
            faults.check("protocol.message")

    def test_call_site_kinds_are_returned(self):
        faults.install("stall_heartbeat:after=2")
        assert faults.check("worker.heartbeat") is None
        assert faults.check("worker.heartbeat") == "stall_heartbeat"
        assert faults.check("worker.heartbeat") is None

    def test_delay_conn_sleeps_in_place(self):
        faults.install("delay_conn:after=1,seconds=0.05")
        started = time.monotonic()
        assert faults.check("protocol.message") == "delay_conn"
        assert time.monotonic() - started >= 0.05

    def test_probabilistic_rules_replay_identically(self):
        plan = FaultPlan.parse("drop_conn:after=1,p=0.3,seed=7")

        def firing_event(injector):
            for event in range(1, 100):
                if injector.fire("protocol.message") is not None:
                    return event
            return None

        first = firing_event(plan.arm())
        second = firing_event(plan.arm())
        assert first is not None
        assert first == second

    def test_scoped_restores_previous_install(self):
        faults.install("stall_heartbeat:after=1")
        with faults.scoped("drop_conn:after=1"):
            with pytest.raises(InjectedFault):
                faults.check("protocol.message")
        assert faults.check("worker.heartbeat") == "stall_heartbeat"

    def test_env_plan_arms_lazily(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "stall_heartbeat:after=1")
        faults.reset()
        assert faults.installed_plan() == "stall_heartbeat:after=1"
        assert faults.check("worker.heartbeat") == "stall_heartbeat"

    def test_invalid_env_plan_never_crashes_a_run(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "explode")
        faults.reset()
        assert faults.check("worker.heartbeat") is None
        assert faults.installed_plan() is None


class TestSettings:
    def test_env_vars_are_registered(self):
        assert FAULTS_ENV_VAR in ENGINE_ENV_VARS
        assert DEGRADE_ENV_VAR in ENGINE_ENV_VARS

    def test_resolve_faults_validates(self, monkeypatch):
        assert resolve_faults("kill_worker:unit=1") \
            == "kill_worker:unit=1"
        assert resolve_faults(None) is None
        monkeypatch.setenv(FAULTS_ENV_VAR, "explode")
        with pytest.raises(ValueError, match=FAULTS_ENV_VAR):
            resolve_faults()
        with pytest.raises(ValueError, match="faults"):
            resolve_faults("explode")

    def test_resolve_degrade(self, monkeypatch):
        assert resolve_degrade(None) is False
        monkeypatch.setenv(DEGRADE_ENV_VAR, "1")
        assert resolve_degrade() is True
        monkeypatch.setenv(DEGRADE_ENV_VAR, "maybe")
        with pytest.raises(ValueError, match=DEGRADE_ENV_VAR):
            resolve_degrade()

    def test_settings_resolve_and_as_dict(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "stall_heartbeat:after=2")
        monkeypatch.setenv(DEGRADE_ENV_VAR, "yes")
        settings = EngineSettings.resolve()
        assert settings.faults == "stall_heartbeat:after=2"
        assert settings.degrade is True
        as_dict = settings.as_dict()
        assert as_dict["faults"] == "stall_heartbeat:after=2"
        assert as_dict["degrade"] is True

    def test_spec_knobs_round_trip(self):
        spec = ExperimentSpec(
            name="chaos",
            simulators=["spade-he"],
            models=["SPP3"],
            faults="kill_worker:unit=1",
            degrade="1",
        )
        assert spec.degrade is True
        assert spec.to_dict()["faults"] == "kill_worker:unit=1"
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        runner = rebuilt.build_runner()
        assert runner.faults == "kill_worker:unit=1"
        assert runner.degrade is True

    def test_spec_rejects_a_bad_plan(self):
        with pytest.raises(ValueError, match="faults"):
            ExperimentSpec(name="bad", simulators=["spade-he"],
                           models=["SPP3"], faults="explode")


class TestBackoff:
    def test_delays_are_deterministic_per_seed(self):
        left = backoff_delays(random.Random("repro-worker-w1"))
        right = backoff_delays(random.Random("repro-worker-w1"))
        first = [next(left) for _ in range(8)]
        assert first == [next(right) for _ in range(8)]

    def test_workers_desynchronize(self):
        one = backoff_delays(random.Random("repro-worker-w1"))
        two = backoff_delays(random.Random("repro-worker-w2"))
        assert [next(one) for _ in range(4)] \
            != [next(two) for _ in range(4)]

    def test_delays_grow_exponentially_to_the_cap(self):
        delays = list(
            next(backoff_delays(random.Random(0), base=0.1, cap=2.0))
            for _ in range(1)
        )
        assert 0.05 <= delays[0] < 0.1
        stream = backoff_delays(random.Random(0), base=0.1, cap=2.0)
        jittered = [next(stream) for _ in range(12)]
        # Jitter is in [0.5, 1.0): every delay is bounded by the
        # un-jittered exponential and never exceeds the cap.
        for index, delay in enumerate(jittered):
            assert delay < min(2.0, 0.1 * (2 ** index)) + 1e-9
            assert delay <= 2.0

    def test_worker_rng_is_seeded_by_id(self):
        first = Worker(("127.0.0.1", 1), worker_id="w1")
        second = Worker(("127.0.0.1", 1), worker_id="w1")
        assert first._rng.random() == second._rng.random()


class TestQuarantine:
    def _store_one(self, tmp_path, coords):
        cache = TraceCache(disk_dir=tmp_path)
        spec = build_model_spec("SPP2")
        cache.get_trace(spec, coords)
        (artifact,) = tmp_path.glob("*.trace.pkl")
        return spec, artifact

    def test_corrupt_artifact_is_quarantined_and_recomputed(
        self, tmp_path, kitti_batch
    ):
        coords = kitti_batch.coords
        spec, artifact = self._store_one(tmp_path, coords)
        artifact.write_bytes(b"garbage, not a pickle")
        fresh = TraceCache(disk_dir=tmp_path)
        trace = fresh.get_trace(spec, coords)
        assert trace is not None
        assert fresh.stats()["quarantined"] == 1
        quarantined = list(tmp_path.glob(f"*{QUARANTINE_SUFFIX}"))
        assert len(quarantined) == 1
        # The poisoned artifact no longer shadows the rewritten one.
        assert scan_disk_tier(tmp_path)["quarantined"] == 1
        assert fresh.stats()["disk_writes"] == 1

    def test_corrupt_cache_fault_poisons_a_store(self, tmp_path,
                                                 kitti_batch):
        coords = kitti_batch.coords
        faults.install("corrupt_cache:entry=1")
        spec, artifact = self._store_one(tmp_path, coords)
        faults.reset()
        fresh = TraceCache(disk_dir=tmp_path)
        assert fresh.get_trace(spec, coords) is not None
        assert fresh.stats()["quarantined"] == 1

    def test_clear_removes_quarantined_artifacts(self, tmp_path,
                                                 kitti_batch):
        coords = kitti_batch.coords
        spec, artifact = self._store_one(tmp_path, coords)
        artifact.write_bytes(b"garbage")
        cache = TraceCache(disk_dir=tmp_path)
        cache.get_trace(spec, coords)
        cache.clear(disk=True)
        assert list(tmp_path.glob("*.trace.*")) == []
        assert cache.stats()["quarantined"] == 0
