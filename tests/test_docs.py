"""Documentation stays true: generated knob reference in sync,
markdown links resolving, README examples runnable verbatim, and the
engine's public API fully docstringed (local mirror of CI's ruff D1
check)."""

import ast
import dataclasses
import shlex
from pathlib import Path

import pytest

from repro import cli, docs
from repro.engine import (
    ENGINE_ENV_VARS,
    EngineSettings,
    ExperimentSpec,
    RunManifest,
    RunObserver,
    manifest_path_for,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
ENGINE_SRC = REPO_ROOT / "src" / "repro" / "engine"


class TestKnobReference:
    def test_generated_doc_is_committed_in_sync(self):
        committed = (REPO_ROOT / docs.KNOBS_DOC).read_text()
        assert committed == docs.generate_knobs_markdown(), (
            "docs/knobs.md is stale; regenerate with "
            "`python -m repro.docs`"
        )

    def test_every_engine_knob_is_documented(self):
        text = (REPO_ROOT / docs.KNOBS_DOC).read_text()
        for env_var in ENGINE_ENV_VARS:
            assert f"| {env_var} |" in text

    def test_dist_knobs_are_documented(self):
        text = (REPO_ROOT / docs.KNOBS_DOC).read_text()
        for env_var in docs.DIST_KNOB_ENV.values():
            assert f"| {env_var} |" in text

    def test_marker_warns_against_hand_edits(self):
        text = (REPO_ROOT / docs.KNOBS_DOC).read_text()
        assert docs.GENERATED_MARKER in text

    def test_attribute_docs_reads_the_settings_docstring(self):
        parsed = docs.attribute_docs(EngineSettings)
        for field_name in docs.ENGINE_KNOB_ENV:
            assert parsed.get(field_name), (
                f"EngineSettings docstring documents {field_name}")

    def test_unmapped_field_is_an_error(self):
        @dataclasses.dataclass
        class Odd:
            """Odd.

            Attributes:
                mystery: An attribute no env map covers.
            """

            mystery: int = 3

        with pytest.raises(ValueError, match="mystery"):
            docs.knob_rows(Odd, {})

    def test_check_mode_exit_codes(self, tmp_path, monkeypatch):
        assert docs.main(["--check"]) == 0
        # A stale copy must fail the same check.
        stale = tmp_path / "repo"
        (stale / "docs").mkdir(parents=True)
        (stale / "docs" / "knobs.md").write_text("# old\n")
        monkeypatch.chdir(stale)
        assert docs.main(["--check"]) == 1


class TestLinkCheck:
    def test_repo_docs_links_resolve(self):
        assert docs.check_links(REPO_ROOT) == []
        assert docs.main(["--links"]) == 0

    def test_broken_link_is_caught(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "page.md").write_text(
            "see [gone](missing.md) and [ok](other.md) "
            "and [web](https://example.com)\n")
        (tmp_path / "docs" / "other.md").write_text("ok\n")
        assert docs.check_links(tmp_path) \
            == [("docs/page.md", "missing.md")]

    def test_fragments_are_stripped(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "page.md").write_text(
            "[sec](other.md#section) [frag](#local)\n")
        (tmp_path / "docs" / "other.md").write_text("ok\n")
        assert docs.check_links(tmp_path) == []


def _public_docstring_gaps(path: Path) -> list:
    """(qualname, lineno) of public defs lacking docstrings — a local
    mirror of CI's `ruff check --select D1 --ignore D105,D107`."""
    tree = ast.parse(path.read_text())
    gaps = []
    if ast.get_docstring(tree) is None:
        gaps.append(("<module>", 1))

    def walk(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = child.name
                if name.startswith("_"):     # D105/D107 out of scope
                    continue
                if ast.get_docstring(child) is None:
                    gaps.append((f"{prefix}{name}", child.lineno))
                walk(child, f"{prefix}{name}.")
            else:
                walk(child, prefix)

    walk(tree, "")
    return gaps


class TestEnginePublicApiDocstrings:
    @pytest.mark.parametrize(
        "path",
        sorted(ENGINE_SRC.rglob("*.py")),
        ids=lambda path: str(path.relative_to(ENGINE_SRC)),
    )
    def test_module_is_fully_documented(self, path):
        gaps = _public_docstring_gaps(path)
        assert gaps == [], (
            f"{path.relative_to(REPO_ROOT)} public API missing "
            f"docstrings: {gaps}"
        )


def readme_report_commands() -> list:
    """The `repro report ...` lines of the README's manifests-and-
    reports bash block, in order."""
    text = (REPO_ROOT / "README.md").read_text()
    section = text.split("## Run manifests & reports", 1)[1]
    block = section.split("```bash", 1)[1].split("```", 1)[0]
    commands = []
    for line in block.splitlines():
        words = shlex.split(line, comments=True)
        if words and words[0] == "repro":
            commands.append(words[1:])
    return commands


class TestReadmeExamples:
    def test_report_examples_run_verbatim(self, tmp_path, monkeypatch,
                                          capsys):
        spec = ExperimentSpec(
            name="readme",
            simulators=["spade-he", "dense-he"],
            models=["SPP3"],
            scenarios=[{"name": "m", "seed": 0}],
            backend="serial",
        )
        runner = spec.build_runner()
        observer = RunObserver()
        table = runner.run(observer=observer)
        monkeypatch.chdir(tmp_path)
        manifest = RunManifest.collect(runner, table,
                                       observer=observer)
        for stem in ("results", "a", "b"):
            results = tmp_path / f"{stem}.json"
            table.to_json(results)
            manifest.write(manifest_path_for(results))
        (tmp_path / "out").mkdir()
        commands = readme_report_commands()
        assert len(commands) >= 4, "README examples went missing"
        for arguments in commands:
            assert cli.main(arguments) == 0, \
                f"README example failed: repro {' '.join(arguments)}"
            capsys.readouterr()
        assert list(tmp_path.glob("out/*.report.html"))
        assert (tmp_path / "report.html").exists()

    def test_report_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["report", "--help"])
        assert excinfo.value.code == 0
        help_text = capsys.readouterr().out
        for flag in ("--html", "--out", "--diff", "--baseline",
                     "--manifest"):
            assert flag in help_text
