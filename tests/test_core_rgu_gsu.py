"""SPADE core: streaming RGU equivalence and GSU tile invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SPADE_HE, RGUModel, plan_tiles, streaming_rulegen
from repro.sparse import ConvType, build_rules, unflatten

SHAPE = (40, 48)


def coords_from_flat(flat):
    return unflatten(np.sort(np.asarray(flat, np.int64)), SHAPE)


@st.composite
def coord_sets(draw, max_count=70):
    total = SHAPE[0] * SHAPE[1]
    count = draw(st.integers(1, max_count))
    flat = draw(st.lists(st.integers(0, total - 1), min_size=count,
                         max_size=count, unique=True))
    return coords_from_flat(flat)


def canonical_pairs(rules):
    """Per-offset (in, out) pairs as sorted tuples for comparison."""
    result = []
    for pair in rules.pairs:
        items = sorted(zip(pair.in_idx.tolist(), pair.out_idx.tolist()))
        result.append(items)
    return result


class TestStreamingRGU:
    @given(coord_sets())
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_rules(self, coords):
        reference = build_rules(coords, SHAPE, ConvType.SPCONV)
        streamed = streaming_rulegen(coords, SHAPE)
        np.testing.assert_array_equal(reference.out_coords,
                                      streamed.out_coords)
        assert canonical_pairs(reference) == canonical_pairs(streamed)

    def test_single_pillar(self):
        coords = np.array([[5, 5]], np.int32)
        streamed = streaming_rulegen(coords, SHAPE)
        assert streamed.num_outputs == 9
        assert streamed.total_pairs == 9

    def test_corner_pillar_clipped(self):
        coords = np.array([[0, 0]], np.int32)
        streamed = streaming_rulegen(coords, SHAPE)
        assert streamed.num_outputs == 4


class TestRGUCycleModel:
    def test_cycles_linear_in_entries(self):
        model = RGUModel(SPADE_HE)
        small = build_rules(coords_from_flat(np.arange(0, 400, 9)),
                            SHAPE, ConvType.SPCONV)
        report = model.cycles_for(small)
        assert report.cycles >= report.rule_entries
        assert report.cycles < 2 * report.rule_entries + 200

    def test_energy_proportional_to_entries(self):
        model = RGUModel(SPADE_HE)
        rules = build_rules(coords_from_flat(np.arange(0, 400, 9)),
                            SHAPE, ConvType.SPCONV)
        report = model.cycles_for(rules)
        expected = rules.total_pairs * SPADE_HE.rgu_energy_per_rule_pj
        assert report.energy_pj == pytest.approx(expected)

    def test_count_upper_bound(self):
        model = RGUModel(SPADE_HE)
        assert model.cycles_for_count(1000) == 9000 + RGUModel.PIPELINE_FILL


class TestGSUTiling:
    def _rules(self, count=200, conv_type=ConvType.SPCONV, stride=1):
        rng = np.random.default_rng(3)
        total = SHAPE[0] * SHAPE[1]
        flat = np.sort(rng.choice(total, count, replace=False))
        return build_rules(unflatten(flat, SHAPE), SHAPE, conv_type,
                           stride=stride)

    def test_tiles_cover_all_inputs(self):
        rules = self._rules()
        schedule = plan_tiles(rules, max_inputs=32, max_outputs=512)
        covered = 0
        for tile in schedule.tiles:
            assert tile.in_start == covered
            covered = tile.in_end
        assert covered == rules.num_inputs

    def test_input_capacity_respected(self):
        rules = self._rules()
        schedule = plan_tiles(rules, max_inputs=16, max_outputs=10_000)
        assert all(tile.num_inputs <= 16 for tile in schedule.tiles)

    def test_output_capacity_respected_or_single_input(self):
        rules = self._rules()
        schedule = plan_tiles(rules, max_inputs=64, max_outputs=40)
        for tile in schedule.tiles:
            assert tile.num_outputs <= 40 or tile.num_inputs == 1

    def test_pair_counts_sum_to_rule_entries(self):
        rules = self._rules()
        schedule = plan_tiles(rules, max_inputs=32, max_outputs=512)
        total = sum(tile.total_pairs for tile in schedule.tiles)
        assert total == rules.total_pairs

    def test_output_windows_monotone(self):
        rules = self._rules()
        schedule = plan_tiles(rules, max_inputs=32, max_outputs=512)
        previous_start = -1
        for tile in schedule.tiles:
            if tile.num_outputs == 0:
                continue
            assert tile.out_start >= previous_start
            previous_start = tile.out_start

    def test_overlap_counts_boundary_outputs(self):
        rules = self._rules()
        schedule = plan_tiles(rules, max_inputs=32, max_outputs=512)
        assert schedule.total_copy_psum == sum(
            tile.overlap_with_prev for tile in schedule.tiles
        )
        # Dilating conv with small tiles must share some boundary outputs.
        assert schedule.total_copy_psum > 0

    def test_single_tile_when_everything_fits(self):
        rules = self._rules(count=50)
        schedule = plan_tiles(rules, max_inputs=10_000, max_outputs=10_000)
        assert schedule.num_tiles == 1
        assert schedule.total_copy_psum == 0

    def test_empty_rules(self):
        rules = build_rules(np.zeros((0, 2), np.int32), SHAPE,
                            ConvType.SPCONV)
        schedule = plan_tiles(rules, 16, 16)
        assert schedule.num_tiles == 0
