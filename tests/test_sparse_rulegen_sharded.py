"""Fused and row-sharded rule generation: bit-identical parity against
the per-offset reference loop for every ConvType, every frame shape
(empty, single-row, dense) and shard counts beyond the row count, plus
the monotonicity invariant on the merged per-offset index lists."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    RULEGEN_SHARDS_ENV_VAR,
    ConvType,
    build_rules,
    build_rules_reference,
    build_rules_sharded,
    resolve_rulegen_shards,
    unflatten,
)

SHAPE = (26, 34)

#: Every variant at its canonical configuration plus off-nominal kernel
#: sizes and strides (even kernels reach asymmetrically — the halo math
#: must honour that).
CASES = [
    (ConvType.SPCONV, 1, 3),
    (ConvType.SPCONV, 1, 2),
    (ConvType.SPCONV, 1, 5),
    (ConvType.SUBM, 1, 3),
    (ConvType.SPCONV_P, 1, 3),
    (ConvType.STRIDED, 2, 3),
    (ConvType.STRIDED, 3, 3),
    (ConvType.STRIDED_SUBM, 2, 3),
    (ConvType.DECONV, 2, 2),
    (ConvType.DECONV, 3, 3),
]

CASE_IDS = [f"{ct.value}-s{stride}-k{ks}" for ct, stride, ks in CASES]


def frame_from_flat(flat):
    return unflatten(np.sort(np.asarray(flat, np.int64)), SHAPE)


def random_frame(count, seed=0):
    rng = np.random.default_rng(seed)
    total = SHAPE[0] * SHAPE[1]
    return frame_from_flat(rng.choice(total, count, replace=False))


FRAMES = {
    "typical": random_frame(120),
    "sparse": random_frame(7, seed=3),
    "empty": np.zeros((0, 2), np.int32),
    "single-row": frame_from_flat(5 * SHAPE[1] + np.arange(0, 30, 3)),
    "single-pillar": frame_from_flat([8 * SHAPE[1] + 17]),
    "half-dense": random_frame(SHAPE[0] * SHAPE[1] // 2, seed=7),
}


def assert_rules_identical(reference, candidate, label=""):
    assert candidate.out_shape == reference.out_shape, label
    np.testing.assert_array_equal(
        candidate.out_coords, reference.out_coords, err_msg=label
    )
    assert len(candidate.pairs) == len(reference.pairs), label
    for index, (expect, got) in enumerate(
        zip(reference.pairs, candidate.pairs)
    ):
        np.testing.assert_array_equal(
            got.in_idx, expect.in_idx, err_msg=f"{label} offset {index}"
        )
        np.testing.assert_array_equal(
            got.out_idx, expect.out_idx, err_msg=f"{label} offset {index}"
        )


class TestFusedParity:
    @pytest.mark.parametrize("conv_type,stride,kernel", CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("frame", sorted(FRAMES))
    def test_fused_matches_reference(self, conv_type, stride, kernel, frame):
        coords = FRAMES[frame]
        reference = build_rules_reference(
            coords, SHAPE, conv_type, kernel_size=kernel, stride=stride
        )
        fused = build_rules(
            coords, SHAPE, conv_type, kernel_size=kernel, stride=stride
        )
        assert_rules_identical(reference, fused, f"{frame}")

    def test_index_dtypes_are_int64(self):
        rules = build_rules(FRAMES["typical"], SHAPE, ConvType.SPCONV)
        for pair in rules.pairs:
            assert pair.in_idx.dtype == np.int64
            assert pair.out_idx.dtype == np.int64


class TestShardedParity:
    @pytest.mark.parametrize("conv_type,stride,kernel", CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 64])
    def test_sharded_matches_reference(self, conv_type, stride, kernel,
                                       shards):
        coords = FRAMES["typical"]
        reference = build_rules_reference(
            coords, SHAPE, conv_type, kernel_size=kernel, stride=stride
        )
        sharded = build_rules_sharded(
            coords, SHAPE, conv_type, kernel_size=kernel, stride=stride,
            shards=shards, max_workers=2,
        )
        assert_rules_identical(reference, sharded, f"shards={shards}")

    @pytest.mark.parametrize(
        "frame", ["empty", "single-row", "single-pillar", "half-dense"]
    )
    def test_degenerate_frames(self, frame):
        """Shard counts exceeding the occupied-row count must degrade to
        fewer bands, and an empty frame to the empty-rules shape."""
        coords = FRAMES[frame]
        for conv_type, stride, kernel in CASES:
            reference = build_rules_reference(
                coords, SHAPE, conv_type, kernel_size=kernel, stride=stride
            )
            sharded = build_rules_sharded(
                coords, SHAPE, conv_type, kernel_size=kernel, stride=stride,
                shards=16, max_workers=2,
            )
            assert_rules_identical(
                reference, sharded, f"{frame} {conv_type.value}"
            )

    def test_serial_and_threaded_bands_identical(self):
        coords = FRAMES["half-dense"]
        threaded = build_rules_sharded(
            coords, SHAPE, ConvType.SPCONV, shards=4, max_workers=4
        )
        serial = build_rules_sharded(
            coords, SHAPE, ConvType.SPCONV, shards=4, max_workers=1
        )
        assert_rules_identical(serial, threaded)


class TestMergedMonotonicity:
    @given(
        flat=st.lists(
            st.integers(0, SHAPE[0] * SHAPE[1] - 1),
            min_size=1, max_size=90, unique=True,
        ),
        shards=st.integers(min_value=2, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_merged_per_offset_lists_strictly_ascend(self, flat, shards):
        """The band merge must preserve the invariant the RGU, ATM and
        conflict-free scatter depend on: per-offset in/out index lists
        strictly ascend."""
        coords = frame_from_flat(flat)
        for conv_type, stride in [
            (ConvType.SPCONV, 1),
            (ConvType.SUBM, 1),
            (ConvType.STRIDED, 2),
            (ConvType.DECONV, 2),
        ]:
            rules = build_rules_sharded(
                coords, SHAPE, conv_type, stride=stride, shards=shards,
                max_workers=2,
            )
            for pair in rules.pairs:
                if len(pair) > 1:
                    assert (np.diff(pair.in_idx) > 0).all()
                    assert (np.diff(pair.out_idx) > 0).all()


class TestShardResolution:
    def test_explicit_value_validated(self):
        assert resolve_rulegen_shards(4) == 4
        assert resolve_rulegen_shards("2") == 2
        for bad in (0, -3, "two", 1.5, ""):
            with pytest.raises(ValueError, match="rulegen_shards"):
                resolve_rulegen_shards(bad)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(RULEGEN_SHARDS_ENV_VAR, raising=False)
        assert resolve_rulegen_shards() == 1
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "3")
        assert resolve_rulegen_shards() == 3
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "zero")
        with pytest.raises(ValueError, match=RULEGEN_SHARDS_ENV_VAR):
            resolve_rulegen_shards()

    def test_env_feeds_sharded_builder(self, monkeypatch):
        monkeypatch.setenv(RULEGEN_SHARDS_ENV_VAR, "3")
        coords = FRAMES["typical"]
        from_env = build_rules_sharded(coords, SHAPE, ConvType.SPCONV)
        reference = build_rules_reference(coords, SHAPE, ConvType.SPCONV)
        assert_rules_identical(reference, from_env)
