"""Accelerator integration: SPADE vs DenseAcc on traced models, energy,
area — the paper's headline properties as assertions."""

import numpy as np
import pytest

from repro.analysis import compute_savings, trace_model
from repro.core import (
    SPADE_HE,
    SPADE_LE,
    DenseAccelerator,
    ModelResult,
    SpadeAccelerator,
    accelerator_area,
    pointacc_like_area,
    sram_kilobytes,
)
from repro.models import build_model_spec


@pytest.fixture(scope="module")
def kitti_traces(kitti_batch):
    importance = kitti_batch.point_counts.astype(float)
    traces = {}
    for name in ("SPP1", "SPP2", "SPP3"):
        model, dense, savings = compute_savings(
            name, kitti_batch.coords, importance
        )
        traces[name] = (model, dense, savings)
    return traces


@pytest.fixture(scope="module")
def spade_he():
    return SpadeAccelerator(SPADE_HE)


@pytest.fixture(scope="module")
def dense_he():
    return DenseAccelerator(SPADE_HE)


class TestSpeedupProportionality:
    def test_speedup_tracks_ops_savings(self, kitti_traces, spade_he,
                                        dense_he):
        # Paper Fig. 11(c): "speedup aligns directly with OPs savings".
        for name, (model, dense, savings) in kitti_traces.items():
            spade_result = spade_he.run_trace(model)
            dense_result = dense_he.run_trace(dense)
            speedup = dense_result.total_cycles / spade_result.total_cycles
            ideal = 1.0 / (1.0 - savings)
            assert 0.5 * ideal < speedup <= 1.3 * ideal, name

    def test_sparser_model_is_faster(self, kitti_traces, spade_he):
        cycles = {
            name: spade_he.run_trace(model).total_cycles
            for name, (model, _, _) in kitti_traces.items()
        }
        assert cycles["SPP3"] < cycles["SPP2"] < cycles["SPP1"]

    def test_high_end_realtime_class(self, kitti_traces, spade_he):
        # Paper: record-breaking 500 FPS on the sparsest models.
        result = spade_he.run_trace(kitti_traces["SPP3"][0])
        assert result.fps > 300

    def test_le_matches_peak_ratio(self, kitti_traces):
        model = kitti_traces["SPP2"][0]
        he = SpadeAccelerator(SPADE_HE).run_trace(model)
        le = SpadeAccelerator(SPADE_LE).run_trace(model)
        peak_ratio = SPADE_HE.peak_macs_per_cycle / SPADE_LE.peak_macs_per_cycle
        assert le.total_cycles / he.total_cycles > 0.3 * peak_ratio


class TestEnergy:
    def test_energy_savings_track_ops_savings(self, kitti_traces, spade_he,
                                              dense_he):
        # Paper Fig. 10(c): near-optimal energy scaling vs DenseAcc.
        for name, (model, dense, savings) in kitti_traces.items():
            spade_energy = spade_he.run_trace(model).energy_mj
            dense_energy = dense_he.run_trace(dense).energy_mj
            ratio = dense_energy / spade_energy
            ideal = 1.0 / (1.0 - savings)
            assert 0.5 * ideal < ratio < 1.5 * ideal, name

    def test_energy_breakdown_components_positive(self, kitti_traces,
                                                  spade_he):
        energy = spade_he.run_trace(kitti_traces["SPP2"][0]).energy
        assert energy.compute_pj > 0
        assert energy.sram_pj > 0
        assert energy.dram_pj > 0
        assert energy.rgu_pj > 0

    def test_compute_dominates(self, kitti_traces, spade_he):
        # A sane accelerator energy budget is compute/SRAM dominated.
        energy = spade_he.run_trace(kitti_traces["SPP1"][0]).energy
        assert energy.compute_pj > energy.rgu_pj
        assert energy.compute_pj > energy.pruning_pj

    def test_dram_savings_lag_ops_savings(self, kitti_traces, spade_he,
                                          dense_he):
        # Paper Fig. 12: DRAM savings slightly lag ops savings.
        model, dense, savings = kitti_traces["SPP3"]
        spade_energy = spade_he.run_trace(model).energy
        dense_energy = dense_he.run_trace(dense).energy
        dram_ratio = dense_energy.dram_pj / spade_energy.dram_pj
        compute_ratio = dense_energy.compute_pj / spade_energy.compute_pj
        assert dram_ratio < compute_ratio


class TestUtilization:
    def test_spade_utilization_reasonable(self, kitti_traces, spade_he):
        result = spade_he.run_trace(kitti_traces["SPP1"][0])
        assert result.utilization(SPADE_HE) > 0.5

    def test_optimizations_improve_total(self, kitti_traces):
        model = kitti_traces["SPP2"][0]
        optimized = SpadeAccelerator(SPADE_HE, optimize=True).run_trace(model)
        baseline = SpadeAccelerator(SPADE_HE, optimize=False).run_trace(model)
        assert optimized.total_cycles <= baseline.total_cycles


class TestAreaModel:
    def test_sparse_support_is_small_fraction_he(self):
        # Paper Fig. 10(b): extra hardware ~4.3% of SPADE.HE.
        area = accelerator_area(SPADE_HE, sparse_support=True)
        fraction = area.fraction("rgu", "gsu", "sfu", "rule_buffer")
        assert 0.01 < fraction < 0.12

    def test_sparse_fraction_larger_on_le(self):
        he = accelerator_area(SPADE_HE).fraction("rgu", "gsu", "sfu",
                                                 "rule_buffer")
        le = accelerator_area(SPADE_LE).fraction("rgu", "gsu", "sfu",
                                                 "rule_buffer")
        assert le > he

    def test_spade_smaller_than_pointacc(self):
        # Paper Fig. 10(a): smaller area and SRAM than PointAcc.
        spade = accelerator_area(SPADE_HE).total_mm2
        pointacc = pointacc_like_area(SPADE_HE).total_mm2
        assert spade < pointacc

    def test_spade_sram_smaller_than_pointacc_cache(self):
        assert sram_kilobytes(SPADE_HE) < 768 + 256

    def test_dense_acc_smaller_than_spade(self):
        dense = accelerator_area(SPADE_HE, sparse_support=False).total_mm2
        spade = accelerator_area(SPADE_HE, sparse_support=True).total_mm2
        assert dense < spade


class TestModelResultAccounting:
    def test_breakdown_sums_to_total(self, kitti_traces, spade_he):
        result = spade_he.run_trace(kitti_traces["SPP2"][0])
        assert sum(result.breakdown().values()) == result.total_cycles

    def test_latency_fps_consistent(self, kitti_traces, spade_he):
        result = spade_he.run_trace(kitti_traces["SPP2"][0])
        assert result.fps == pytest.approx(1e3 / result.latency_ms)

    def test_layer_count_matches_spec(self, kitti_batch):
        spec = build_model_spec("SPP1")
        trace = trace_model(spec, kitti_batch.coords)
        result = SpadeAccelerator(SPADE_HE).run_trace(trace)
        assert len(result.layers) == spec.num_layers

    def test_empty_result_fps_is_zero(self):
        # Guard: an empty frame (zero cycles) must report 0 FPS, not inf.
        empty = ModelResult(model_name="SPP2", accelerator="SPADE.HE")
        assert empty.total_cycles == 0
        assert empty.latency_ms == 0.0
        assert empty.fps == 0.0
        assert empty.energy_mj == 0.0
        assert empty.breakdown() == {}

    def test_aggregates_cached_and_invalidated(self, kitti_traces,
                                               spade_he):
        full = spade_he.run_trace(kitti_traces["SPP2"][0])
        partial = ModelResult(model_name="SPP2", accelerator="SPADE.HE",
                              clock_ghz=SPADE_HE.clock_ghz)
        partial.layers.extend(full.layers[:3])
        first_cycles = partial.total_cycles
        first_energy = partial.energy.total_pj
        # Cached: repeated access returns the same values...
        assert partial.total_cycles == first_cycles
        assert partial.energy.total_pj == first_energy
        # ...and appending a layer invalidates every aggregate.
        partial.layers.append(full.layers[3])
        extra = full.layers[3]
        assert partial.total_cycles == (
            first_cycles + extra.schedule.total_cycles
        )
        assert partial.energy.total_pj == pytest.approx(
            first_energy + extra.energy.total_pj
        )

    def test_energy_and_breakdown_return_copies(self, kitti_traces,
                                                spade_he):
        result = spade_he.run_trace(kitti_traces["SPP3"][0])
        energy = result.energy
        energy.add(energy)              # mutate the returned object
        assert result.energy.total_pj == pytest.approx(
            energy.total_pj / 2
        )
        breakdown = result.breakdown()
        breakdown["mxu"] = -1
        assert result.breakdown()["mxu"] != -1
