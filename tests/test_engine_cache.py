"""Two-tier TraceCache: on-disk persistence, content addressing across
processes-worth of cache instances, environment-variable wiring,
corruption recovery and eviction-reload behaviour."""

import numpy as np
import pytest

from repro.data.grids import GridSpec
from repro.engine import CACHE_DIR_ENV_VAR, TraceCache
from repro.models.specs import LayerOp, LayerSpec, ModelSpec
from repro.sparse import ConvType
from repro.sparse.coords import unflatten

SHAPE = (16, 16)


def tiny_spec(name="cache-test"):
    """A one-layer sparse model small enough to trace in microseconds."""
    grid = GridSpec(
        name=f"{name}-grid",
        x_range=(0.0, float(SHAPE[1])),
        y_range=(0.0, float(SHAPE[0])),
        z_range=(-3.0, 1.0),
        pillar_size=1.0,
    )
    assert grid.shape == SHAPE
    return ModelSpec(
        name=name,
        base="micro",
        grid=grid,
        pillar_channels=8,
        layers=[
            LayerSpec("L1", LayerOp.SPARSE, 8, 8, conv_type=ConvType.SPCONV),
            LayerSpec("L2", LayerOp.SPARSE, 8, 8, conv_type=ConvType.SUBM),
        ],
    )


def tiny_frame(seed=0, count=24):
    rng = np.random.default_rng(seed)
    flat = np.sort(rng.choice(SHAPE[0] * SHAPE[1], count, replace=False))
    return unflatten(flat, SHAPE)


def assert_traces_equal(left, right):
    assert left.total_macs == right.total_macs
    assert len(left.layers) == len(right.layers)
    for a, b in zip(left.layers, right.layers):
        assert a.sparse_macs == b.sparse_macs
        np.testing.assert_array_equal(a.rules.out_coords, b.rules.out_coords)
        for pa, pb in zip(a.rules.pairs, b.rules.pairs):
            np.testing.assert_array_equal(pa.in_idx, pb.in_idx)
            np.testing.assert_array_equal(pa.out_idx, pb.out_idx)


class TestDiskTier:
    def test_round_trip_across_cache_instances(self, tmp_path):
        """A second cache (think: another process, another run) loads the
        persisted trace instead of re-tracing."""
        spec, coords = tiny_spec(), tiny_frame()
        writer = TraceCache(disk_dir=tmp_path)
        computed = writer.get_trace(spec, coords)
        stats = writer.stats()
        assert stats["misses"] == 1
        assert stats["disk_writes"] == 1
        assert list(tmp_path.glob("*.trace.pkl"))

        reader = TraceCache(disk_dir=tmp_path)
        loaded = reader.get_trace(tiny_spec(), coords.copy())
        stats = reader.stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 0
        assert stats["disk_writes"] == 0
        assert_traces_equal(computed, loaded)

    def test_memory_tier_still_first(self, tmp_path):
        spec, coords = tiny_spec(), tiny_frame()
        cache = TraceCache(disk_dir=tmp_path)
        first = cache.get_trace(spec, coords)
        second = cache.get_trace(spec, coords)
        assert first is second
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["disk_hits"] == 0

    def test_distinct_content_distinct_files(self, tmp_path):
        cache = TraceCache(disk_dir=tmp_path)
        cache.get_trace(tiny_spec(), tiny_frame(seed=0))
        cache.get_trace(tiny_spec(), tiny_frame(seed=1))
        cache.get_trace(tiny_spec("other-model"), tiny_frame(seed=0))
        assert len(list(tmp_path.glob("*.trace.pkl"))) == 3

    def test_corrupt_entry_recomputed_and_replaced(self, tmp_path):
        spec, coords = tiny_spec(), tiny_frame()
        cache = TraceCache(disk_dir=tmp_path)
        key = cache.key_for(spec, coords)
        path = tmp_path / f"{key}.trace.pkl"
        path.write_bytes(b"not a pickle")

        trace = cache.get_trace(spec, coords)
        assert cache.stats()["misses"] == 1  # recomputed, not crashed
        assert cache.stats()["disk_writes"] == 1  # rewritten clean

        fresh = TraceCache(disk_dir=tmp_path)
        assert_traces_equal(trace, fresh.get_trace(spec, coords))
        assert fresh.stats()["disk_hits"] == 1

    def test_eviction_reloads_from_disk(self, tmp_path):
        cache = TraceCache(maxsize=1, disk_dir=tmp_path)
        spec = tiny_spec()
        cache.get_trace(spec, tiny_frame(seed=0))
        cache.get_trace(spec, tiny_frame(seed=1))  # evicts seed-0
        cache.get_trace(spec, tiny_frame(seed=0))
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["disk_hits"] == 1

    def test_clear_disk_removes_files(self, tmp_path):
        cache = TraceCache(disk_dir=tmp_path)
        cache.get_trace(tiny_spec(), tiny_frame())
        assert list(tmp_path.glob("*.trace.pkl"))
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.trace.pkl"))
        assert len(cache) == 0


class TestEnvironmentWiring:
    def test_default_construction_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        cache = TraceCache()
        assert cache.disk_dir == tmp_path
        cache.get_trace(tiny_spec(), tiny_frame())
        assert list(tmp_path.glob("*.trace.pkl"))

    def test_explicit_none_disables_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        cache = TraceCache(disk_dir=None)
        assert cache.disk_dir is None
        cache.get_trace(tiny_spec(), tiny_frame())
        assert not list(tmp_path.glob("*.trace.pkl"))

    def test_unset_env_means_memory_only(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        cache = TraceCache()
        assert cache.disk_dir is None
        assert cache.stats()["disk_dir"] is None

    def test_rulegen_shards_do_not_change_the_key(self, tmp_path):
        """Sharded rulegen is bit-identical, so a trace computed sharded
        must be found by an unsharded lookup (and vice versa)."""
        spec, coords = tiny_spec(), tiny_frame()
        sharded = TraceCache(disk_dir=tmp_path)
        computed = sharded.get_trace(spec, coords, rulegen_shards=4)
        plain = TraceCache(disk_dir=tmp_path)
        loaded = plain.get_trace(spec, coords)
        assert plain.stats()["disk_hits"] == 1
        assert_traces_equal(computed, loaded)
