"""Run manifests: the RunObserver streaming collector, RunManifest
assembly/serialization, and per-unit timing coverage across the local
backends (the dist backend's manifest parity lives with the dist
tests)."""

import json
import threading

import pytest

from repro.analysis.sparsity import SparsityAnalyzer
from repro.engine import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    ExperimentSpec,
    RunManifest,
    RunObserver,
    git_revision,
    manifest_path_for,
    spec_hash,
)


def small_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        name="manifest-test",
        simulators=["spade-he", "dense-he"],
        models=["SPP3"],
        scenarios=[{"name": "m", "seed": 0}],
        backend="serial",
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def observed_run(spec=None, backend=None):
    """One spec run with an observer attached; (runner, table, observer)."""
    spec = spec or small_spec()
    runner = spec.build_runner()
    observer = RunObserver()
    table = runner.run(backend=backend, observer=observer)
    return runner, table, observer


class TestSpecHash:
    def test_key_order_does_not_matter(self):
        assert spec_hash({"a": 1, "b": [2, 3]}) \
            == spec_hash({"b": [2, 3], "a": 1})

    def test_content_does(self):
        assert spec_hash({"a": 1}) != spec_hash({"a": 2})

    def test_matches_the_spec_dict(self):
        spec = small_spec()
        runner, table, observer = observed_run(spec)
        manifest = RunManifest.collect(runner, table, observer=observer)
        assert manifest.spec == spec.to_dict()
        assert manifest.spec_hash == spec_hash(spec.to_dict())


class TestGitRevision:
    def test_resolves_in_this_repository(self):
        rev = git_revision()
        assert rev is not None and len(rev) == 40
        assert all(ch in "0123456789abcdef" for ch in rev)

    def test_none_outside_a_repository(self, tmp_path):
        assert git_revision(tmp_path) is None


class TestManifestPath:
    @pytest.mark.parametrize("sink, expected", [
        ("results.json", "results.manifest.json"),
        ("results.csv", "results.manifest.json"),
        ("out/table.json", "table.manifest.json"),
    ])
    def test_lands_next_to_the_sink(self, sink, expected):
        assert manifest_path_for(sink).name == expected


class TestRunObserver:
    def test_records_units_phases_and_rows(self):
        runner, table, observer = observed_run()
        # One (scenario, model) group; its unit carries every row.
        assert len(observer.units) == 1
        unit = observer.units[0]
        assert unit["scenario"] == "m" and unit["model"] == "SPP3"
        assert unit["rows"] == len(table) == 2
        assert unit["seconds"] > 0
        assert unit["worker"] is None
        names = [phase["name"] for phase in observer.phases]
        assert "run" in names
        assert observer.unit_seconds() > 0

    def test_cache_delta_is_a_delta(self):
        # Two identical runs against the same runner cache: the second
        # observer must see a pure-hit delta, not cumulative counters.
        # The scenario seed is unique so the shared in-process trace
        # cache (warmed by other tests) is cold for the first run.
        spec = small_spec(scenarios=[{"name": "delta-probe",
                                      "seed": 987123}])
        runner = spec.build_runner()
        first = RunObserver()
        runner.run(observer=first)
        second = RunObserver()
        runner.run(observer=second)
        assert first.cache_stats["misses"] == 1
        assert second.cache_stats["misses"] == 0
        assert second.cache_stats["hits"] >= 1

    def test_streaming_analytics_aggregate_per_layer(self):
        runner, table, observer = observed_run()
        summary = observer.analyzer.summary()
        assert summary["rows_ingested"] == len(table)
        assert summary["layers"] > 0
        fields = summary["per_layer"][0]["fields"]
        assert "overhead_fraction" in fields or "macs" in fields

    def test_phase_context_manager(self):
        observer = RunObserver()
        with observer.phase("stage"):
            pass
        assert observer.phases[0]["name"] == "stage"
        assert observer.phases[0]["seconds"] >= 0

    def test_thread_safe_unit_recording(self):
        observer = RunObserver()
        threads = [
            threading.Thread(
                target=lambda: [
                    observer.record_unit("s", "m", 0.001)
                    for _ in range(50)
                ]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(observer.units) == 400

    def test_as_dict_is_json_safe(self):
        runner, table, observer = observed_run()
        observer.record_dist({"requeues": 0}, [{"worker": "w"}],
                             settings={"port": 0})
        snapshot = observer.as_dict()
        json.dumps(snapshot)     # must not raise
        assert snapshot["dist"]["workers"] == [{"worker": "w"}]


class TestRunManifest:
    def test_collect_records_settings_and_table_shape(self):
        runner, table, observer = observed_run()
        manifest = RunManifest.collect(runner, table, observer=observer)
        assert manifest.name == "manifest-test"
        assert manifest.backend == "serial"
        assert manifest.settings["workers"] == runner.max_workers
        assert manifest.settings["delta_trace"] is False
        assert manifest.table["rows"] == 2
        assert manifest.table["simulators"] == ["SPADE.HE",
                                                "DenseAcc.HE"]
        assert manifest.units == observer.units
        assert manifest.analysis["rows_ingested"] == 2

    def test_json_round_trip(self, tmp_path):
        runner, table, observer = observed_run()
        manifest = RunManifest.collect(runner, table, observer=observer)
        path = manifest.write(tmp_path / "run.manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        document = json.loads(path.read_text())
        assert document["schema"] == MANIFEST_SCHEMA
        assert document["version"] == MANIFEST_VERSION

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="not a"):
            RunManifest.from_dict({"schema": "something.else"})
        with pytest.raises(ValueError, match="version"):
            RunManifest.from_dict({"schema": MANIFEST_SCHEMA,
                                   "version": 99})

    def test_collect_without_observer_still_works(self):
        spec = small_spec()
        runner = spec.build_runner()
        table = runner.run()
        manifest = RunManifest.collect(runner, table)
        assert manifest.units == [] and manifest.phases == []
        assert manifest.table["rows"] == len(table)


class TestBackendCoverage:
    """Every local backend produces complete unit records."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_units_cover_the_table(self, backend):
        spec = small_spec(
            models=["SPP2", "SPP3"],
            scenarios=[{"name": "a", "seed": 0},
                       {"name": "b", "seed": 1}],
            backend=backend,
            workers=2,
        )
        runner, table, observer = observed_run(spec)
        # One unit per (scenario, model) group, each timed and with
        # its streamed rows counted.
        assert len(observer.units) == 4
        assert sorted((unit["scenario"], unit["model"])
                      for unit in observer.units) == [
            ("a", "SPP2"), ("a", "SPP3"),
            ("b", "SPP2"), ("b", "SPP3"),
        ]
        assert all(unit["seconds"] > 0 for unit in observer.units)
        assert sum(unit["rows"] for unit in observer.units) \
            == len(table) == 8
        if backend != "serial":
            assert "trace" in [p["name"] for p in observer.phases]

    def test_thread_backend_matches_serial_analytics(self):
        serial = observed_run(small_spec())[2]
        threaded = observed_run(
            small_spec(backend="thread", workers=2))[2]
        assert serial.analyzer.layer_stats() \
            == threaded.analyzer.layer_stats()


class TestSparsityAnalyzerUnit:
    def test_gating(self):
        analyzer = SparsityAnalyzer(enabled=False)
        analyzer.ingest_result({"model": "M",
                                "per_layer": [{"name": "L", "x": 1}]})
        assert analyzer.summary()["rows_ingested"] == 0
        analyzer.enable()
        analyzer.ingest_result({"model": "M",
                                "per_layer": [{"name": "L", "x": 1}]})
        assert analyzer.summary()["rows_ingested"] == 1

    def test_aggregates_count_mean_min_max(self):
        analyzer = SparsityAnalyzer()
        for value in (1.0, 3.0):
            analyzer.ingest_result({
                "model": "M",
                "per_layer": [{"name": "L", "metric": value,
                               "skipme": "text"}],
            })
        entry = analyzer.layer_stats()[0]
        assert entry["model"] == "M" and entry["layer"] == "L"
        stats = entry["fields"]["metric"]
        assert stats == {"count": 2, "mean": 2.0, "min": 1.0,
                         "max": 3.0}
        assert "skipme" not in entry["fields"]
