"""Hardware substrates: DRAM, SRAM, cache, hash table, bitonic sorter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    BitonicMergeRuleGen,
    DRAMConfig,
    DRAMModel,
    DirectMappedCache,
    HashTableRuleGen,
    SRAMModel,
    bitonic_sort,
    streaming_trace,
)
from repro.sparse import unflatten


class TestDRAM:
    def test_streaming_is_row_friendly(self):
        dram = DRAMModel()
        stats = dram.process_trace(streaming_trace(256 * 1024))
        assert stats.hit_rate > 0.9

    def test_random_is_row_hostile(self):
        dram = DRAMModel()
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 1 << 30, 4096) * 64
        stats = dram.process_trace(addresses)
        assert stats.hit_rate < 0.2

    def test_miss_latency_exceeds_hit(self):
        config = DRAMConfig()
        dram = DRAMModel(config)
        miss = dram.access(0)
        hit = dram.access(64)
        assert miss > hit
        assert hit == config.t_cl + config.t_burst

    def test_trace_matches_sequential_access(self):
        addresses = streaming_trace(16 * 1024).tolist()
        one_by_one = DRAMModel()
        for address in addresses:
            one_by_one.access(address)
        batched = DRAMModel()
        batched.process_trace(addresses)
        assert one_by_one.stats.cycles == batched.stats.cycles
        assert one_by_one.stats.row_hits == batched.stats.row_hits

    def test_energy_accumulates(self):
        dram = DRAMModel()
        dram.process_trace(streaming_trace(4096))
        assert dram.stats.energy_pj > 0

    def test_reset(self):
        dram = DRAMModel()
        dram.access(0)
        dram.reset()
        assert dram.stats.accesses == 0


class TestSRAM:
    def test_energy_scales_sublinearly_with_capacity(self):
        small = SRAMModel(32 * 1024)
        large = SRAMModel(128 * 1024)
        ratio = large.read_energy_pj / small.read_energy_pj
        assert 1.5 < ratio < 3.0  # sqrt scaling: exactly 2

    def test_write_costs_more(self):
        sram = SRAMModel(32 * 1024)
        assert sram.write_energy_pj > sram.read_energy_pj

    def test_area_grows_with_capacity(self):
        assert SRAMModel(256 * 1024).area_mm2 > SRAMModel(32 * 1024).area_mm2

    def test_energy_for_bytes_counts_accesses(self):
        sram = SRAMModel(32 * 1024, width_bytes=8)
        assert sram.energy_for_bytes(64) == pytest.approx(
            8 * sram.read_energy_pj
        )


class TestCache:
    def test_repeat_hits(self):
        cache = DirectMappedCache(1024, 64)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(32)  # same line

    def test_conflict_eviction(self):
        cache = DirectMappedCache(1024, 64)  # 16 lines
        cache.access(0)
        cache.access(1024)  # maps to the same index
        assert not cache.access(0)

    def test_requires_divisible_size(self):
        with pytest.raises(ValueError):
            DirectMappedCache(1000, 64)

    def test_process_trace_matches_scalar(self):
        rng = np.random.default_rng(1)
        addresses = rng.integers(0, 1 << 16, 500) * 8
        a = DirectMappedCache(4096, 64)
        scalar_hits = [a.access(int(addr)) for addr in addresses]
        b = DirectMappedCache(4096, 64)
        batch_hits = b.process_trace(addresses)
        assert scalar_hits == batch_hits.tolist()

    def test_miss_addresses_line_aligned(self):
        cache = DirectMappedCache(1024, 64)
        misses = cache.miss_addresses([10, 70, 10])
        assert (misses % 64 == 0).all()


class TestBitonicSort:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_sorts_power_of_two_padded(self, values):
        size = 1 << (len(values) - 1).bit_length()
        padded = np.array(values + [2**20] * (size - len(values)))
        result, _ = bitonic_sort(padded)
        np.testing.assert_array_equal(result, np.sort(padded))

    def test_comparator_count_formula(self):
        for n in (8, 32, 64):
            _, comparators = bitonic_sort(np.arange(n))
            log_n = int(np.log2(n))
            assert comparators == n // 2 * log_n * (log_n + 1) // 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bitonic_sort(np.arange(5))

    def test_descending(self):
        result, _ = bitonic_sort(np.array([3, 1, 2, 4]), descending=True)
        np.testing.assert_array_equal(result, [4, 3, 2, 1])


class TestRuleGenCycleModels:
    def _coords(self, count, shape=(496, 432), seed=0):
        rng = np.random.default_rng(seed)
        flat = np.sort(rng.choice(shape[0] * shape[1], count, replace=False))
        return unflatten(flat, shape), shape

    def test_hash_cycles_grow_with_pillars(self):
        gen = HashTableRuleGen()
        coords1, shape = self._coords(1000)
        coords2, _ = self._coords(10000)
        assert gen.run(coords2, shape).cycles > gen.run(coords1, shape).cycles

    def test_hash_unique_outputs_match_dilation(self):
        from repro.sparse import dilate

        coords, shape = self._coords(2000)
        result = HashTableRuleGen().run(coords, shape)
        assert result.num_unique_outputs == len(dilate(coords, shape))

    def test_hash_slower_than_rgu_linear_time(self):
        # Paper Fig. 5(b): hash ~5.9x slower than the streaming RGU.
        coords, shape = self._coords(10000)
        result = HashTableRuleGen().run(coords, shape)
        rgu_cycles = result.num_candidates  # 1 rule entry per cycle
        assert 3.0 < result.cycles / rgu_cycles < 12.0

    def test_merge_sort_slower_than_rgu(self):
        # Paper Fig. 5(b): merge sorter ~3.7x slower than the RGU.
        result = BitonicMergeRuleGen().run(10000)
        rgu_cycles = result.num_candidates
        assert 1.5 < result.cycles / rgu_cycles < 8.0

    def test_empty_inputs(self):
        assert HashTableRuleGen().run(np.zeros((0, 2), np.int32),
                                      (8, 8)).cycles == 0
        assert BitonicMergeRuleGen().run(0).cycles == 0
