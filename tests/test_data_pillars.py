"""Pillar encoding (voxelization / scatter / gather) tests."""

import numpy as np
import pytest

from repro.data import (
    KITTI_GRID,
    MINI_GRID,
    PointCloud,
    gather_from_dense,
    scatter_to_dense,
    voxelize,
)
from repro.sparse import is_cpr_sorted


def cloud_at(points):
    points = np.asarray(points, dtype=np.float32)
    return PointCloud(points, np.full(len(points), 0.5, dtype=np.float32))


class TestVoxelize:
    def test_coords_are_cpr_sorted(self, kitti_batch):
        assert is_cpr_sorted(kitti_batch.coords, KITTI_GRID.shape)

    def test_counts_match_points(self):
        # Two points in one pillar, one in another.
        cloud = cloud_at([[1.0, 0.0, -1.0], [1.01, 0.02, -1.0],
                          [30.0, 5.0, -1.0]])
        batch = voxelize(cloud, KITTI_GRID)
        assert batch.num_active == 2
        assert sorted(batch.point_counts.tolist()) == [1, 2]

    def test_empty_cloud(self):
        batch = voxelize(cloud_at(np.zeros((0, 3))), KITTI_GRID)
        assert batch.num_active == 0
        assert batch.occupancy == 0.0

    def test_max_points_per_pillar_truncates(self):
        points = [[1.0 + 0.001 * i, 0.0, -1.0] for i in range(50)]
        batch = voxelize(cloud_at(points), KITTI_GRID,
                         max_points_per_pillar=8)
        assert batch.point_counts.max() <= 8

    def test_max_pillars_caps(self, kitti_sweep):
        batch = voxelize(kitti_sweep, KITTI_GRID, max_pillars=100)
        assert batch.num_active == 100

    def test_decorated_features_center_offsets_bounded(self, mini_batch):
        # xp/yp offsets are within half a pillar of the center.
        for pillar in range(min(20, mini_batch.num_active)):
            count = mini_batch.point_counts[pillar]
            offsets = mini_batch.point_features[pillar, :count, 7:9]
            assert np.abs(offsets).max() <= MINI_GRID.pillar_size

    def test_centroid_offsets_sum_near_zero(self, mini_batch):
        # xc offsets are relative to the pillar centroid (over all points,
        # before truncation); for untruncated pillars they sum to ~0.
        for pillar in range(mini_batch.num_active):
            count = int(mini_batch.point_counts[pillar])
            if count == 0 or count == 32:
                continue
            offsets = mini_batch.point_features[pillar, :count, 4:7]
            assert np.abs(offsets.mean(axis=0)).max() < 1.0


class TestScatterGather:
    def test_roundtrip(self, mini_batch):
        rng = np.random.default_rng(0)
        features = rng.normal(
            size=(mini_batch.num_active, 16)
        ).astype(np.float32)
        dense = scatter_to_dense(mini_batch.coords, features, MINI_GRID.shape)
        recovered = gather_from_dense(dense, mini_batch.coords)
        np.testing.assert_allclose(recovered, features)

    def test_inactive_cells_zero(self, mini_batch):
        features = np.ones((mini_batch.num_active, 4), dtype=np.float32)
        dense = scatter_to_dense(mini_batch.coords, features, MINI_GRID.shape)
        assert dense.sum() == pytest.approx(4 * mini_batch.num_active)

    def test_dense_shape(self, mini_batch):
        features = np.ones((mini_batch.num_active, 7), dtype=np.float32)
        dense = scatter_to_dense(mini_batch.coords, features, MINI_GRID.shape)
        assert dense.shape == (7, 64, 64)
