"""Live telemetry layer: span tracer, metrics registry, Prometheus
exposition, the merged fleet trace, and the byte-identity contract —
a telemetry-disabled run's CSV/JSON and manifest (minus the
``telemetry`` key) must match a traced run's byte for byte."""

import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.engine import ExperimentSpec, ExperimentTable, telemetry
from repro.engine.dist.coordinator import Coordinator, _WorkerConn
from repro.engine.manifest import RunManifest, RunObserver
from repro.engine.settings import (
    ENGINE_ENV_VARS,
    DistSettings,
    TelemetrySettings,
)
from repro.engine.telemetry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    SpanTracer,
)

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in ENGINE_ENV_VARS:
        monkeypatch.delenv(var, raising=False)


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    """Telemetry is process-global state; never leak it across tests."""
    assert telemetry.active_tracer() is None
    yield
    telemetry.activate(None)


def small_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        name="telemetry-test",
        simulators=["spade-he", "dense-he"],
        models=["SPP2"],
        scenarios=[{"name": "a", "seed": 0, "frames": 2}],
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def assert_chrome_trace_schema(doc: dict) -> None:
    """The subset of the trace-event JSON schema Perfetto requires."""
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert isinstance(doc["traceEvents"], list)
    for event in doc["traceEvents"]:
        assert isinstance(event, dict)
        assert event["ph"] in ("X", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "M":
            assert event["name"] == "process_name"
            assert isinstance(event["args"]["name"], str)
        else:
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
            assert event["dur"] >= 0


class TestSpanTracer:
    def test_spans_record_counts_and_durations(self):
        tracer = SpanTracer(process="t")
        with telemetry.tracing(tracer):
            with telemetry.span("trace", "engine", model="SPP2"):
                with telemetry.span("cache-get", "cache"):
                    pass
            with telemetry.span("trace"):
                pass
        assert tracer.counts() == {"trace": 2, "cache-get": 1}
        profile = tracer.phase_profile()
        assert set(profile) == {"trace", "cache-get"}
        assert profile["trace"]["count"] == 2
        assert profile["trace"]["micros"] >= 0

    def test_timestamps_are_epoch_microseconds(self):
        tracer = SpanTracer()
        before = time.time_ns() // 1_000
        with tracer.span("trace"):
            pass
        after = time.time_ns() // 1_000
        (event,) = tracer.drain()
        assert before <= event["ts"] <= after
        assert event["tid"] == threading.get_ident()
        assert event["pid"] == 0

    def test_trace_events_document_is_schema_valid(self, tmp_path):
        tracer = SpanTracer(process="coordinator")
        with tracer.span("simulate", "engine", scenario="a"):
            pass
        tracer.ingest(
            [{"name": "simulate", "cat": "engine", "ph": "X",
              "ts": 1, "dur": 2, "pid": 0, "tid": 5}],
            worker="w0",
        )
        doc = tracer.trace_events()
        assert_chrome_trace_schema(doc)
        names = {event["args"]["name"] for event in doc["traceEvents"]
                 if event["ph"] == "M"}
        assert names == {"coordinator", "w0"}
        path = tmp_path / "run.trace.json"
        tracer.export(path)
        assert_chrome_trace_schema(json.loads(path.read_text()))

    def test_ingest_assigns_stable_pids_per_worker(self):
        tracer = SpanTracer()
        batch = [{"name": "simulate", "ph": "X", "ts": 0, "dur": 1,
                  "pid": 0, "tid": 1}]
        tracer.ingest(batch, worker="w0")
        tracer.ingest(batch, worker="w1")
        tracer.ingest(batch, worker="w0")
        events = tracer.drain()
        pids = {}
        for event in events:
            pids.setdefault(event["pid"], 0)
            pids[event["pid"]] += 1
        assert sorted(pids.values()) == [1, 2]
        assert tracer.counts() == {"simulate": 3}

    def test_drain_removes_local_events(self):
        tracer = SpanTracer()
        with tracer.span("trace"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []
        # Counts survive the drain — the manifest snapshot still sees
        # spans a dist worker already shipped away.
        assert tracer.counts() == {"trace": 1}


class TestNoopFastPath:
    def test_span_without_tracer_is_the_shared_noop(self):
        first = telemetry.span("trace", model="SPP2")
        second = telemetry.span("simulate")
        assert first is second
        with first:
            pass

    def test_drain_spans_without_tracer_is_empty(self):
        assert telemetry.drain_spans() == []

    def test_tracing_scope_restores_previous(self):
        outer, inner = SpanTracer(), SpanTracer()
        with telemetry.tracing(outer):
            with telemetry.tracing(inner):
                assert telemetry.active_tracer() is inner
            assert telemetry.active_tracer() is outer
        assert telemetry.active_tracer() is None


class TestMetricsRegistry:
    def test_counters_gauges_histograms_snapshot(self):
        registry = MetricsRegistry()
        registry.count("repro_cache_gets_total", result="hit")
        registry.count("repro_cache_gets_total", result="hit")
        registry.count("repro_cache_gets_total", result="miss")
        registry.gauge("repro_workers_connected", 2)
        registry.observe("repro_unit_seconds", 0.003, scenario="a")
        registry.observe("repro_unit_seconds", 9000.0, scenario="a")
        snapshot = registry.snapshot()
        hits = {
            entry["labels"]["result"]: entry["value"]
            for entry in snapshot["counters"]["repro_cache_gets_total"]
        }
        assert hits == {"hit": 2, "miss": 1}
        assert (snapshot["gauges"]["repro_workers_connected"][0]["value"]
                == 2)
        (histogram,) = snapshot["histograms"]["repro_unit_seconds"]
        assert histogram["labels"] == {"scenario": "a"}
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(9000.003)
        assert histogram["buckets"] == list(LATENCY_BUCKETS)
        # 0.003 lands in the 0.005 bucket; 9000 s in the +Inf overflow.
        assert histogram["counts"][1] == 1
        assert histogram["counts"][-1] == 1

    def test_prometheus_exposition_parses(self):
        registry = MetricsRegistry()
        registry.count("repro_requeues_total", 3)
        registry.count("repro_rows_streamed_total", 12, worker="w0")
        registry.gauge("repro_queue_depth", 4, band="0")
        registry.observe("repro_unit_seconds", 0.2, model="CP")
        text = registry.render_prometheus()
        assert text.endswith("\n")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE.+-]+$|"
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*\{[^}]*le=\"\+Inf\"[^}]*\} "
            r"[0-9]+$"
        )
        for line in text.strip().splitlines():
            if line.startswith("# TYPE "):
                assert line.split()[-1] in ("counter", "gauge",
                                            "histogram")
                continue
            assert sample.match(line), f"unparseable sample: {line!r}"
        assert "repro_requeues_total 3" in text
        assert 'repro_rows_streamed_total{worker="w0"} 12' in text
        assert 'repro_queue_depth{band="0"} 4' in text
        assert 'repro_unit_seconds_count{model="CP"} 1' in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'le="+Inf"' in text

    def test_collectors_run_per_snapshot_and_can_be_removed(self):
        registry = MetricsRegistry()
        calls = []

        def collector():
            calls.append(1)
            registry.gauge("repro_workers_connected", len(calls))

        registry.add_collector(collector)
        registry.snapshot()
        registry.render_prometheus()
        assert len(calls) == 2
        registry.remove_collector(collector)
        registry.remove_collector(collector)  # absent: ignored
        registry.snapshot()
        assert len(calls) == 2

    def test_failing_collector_does_not_break_scrapes(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda: 1 / 0)
        registry.count("ok_total")
        assert "ok_total 1" in registry.render_prometheus()


class TestLogLine:
    def test_whole_line_to_stderr(self, capsys):
        telemetry.log_line("[repro] one whole line")
        captured = capsys.readouterr()
        assert captured.err == "[repro] one whole line\n"
        assert captured.out == ""


class TestMetricsEndpoint:
    def test_serves_registry_and_404s_elsewhere(self):
        registry = MetricsRegistry()
        registry.count("repro_heartbeats_total", 5, worker="w0")
        server = telemetry.serve_metrics(0, registry=registry)
        try:
            port = server.server_address[1]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics") as reply:
                assert reply.status == 200
                assert reply.headers["Content-Type"].startswith(
                    "text/plain")
                body = reply.read().decode()
            assert 'repro_heartbeats_total{worker="w0"} 5' in body
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/other")
        finally:
            server.shutdown()


class TestTelemetrySettings:
    def test_defaults(self):
        settings = TelemetrySettings.resolve()
        assert settings == TelemetrySettings(
            enabled=False, trace_out=None, metrics_port=None,
        )

    def test_env_overrides_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY_TRACE_OUT",
                           "fleet.trace.json")
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY_METRICS_PORT",
                           "9109")
        settings = TelemetrySettings.resolve()
        assert settings == TelemetrySettings(
            enabled=True, trace_out="fleet.trace.json",
            metrics_port=9109,
        )

    def test_arguments_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY_METRICS_PORT", "1")
        settings = TelemetrySettings.resolve(enabled=True,
                                             metrics_port=0)
        assert settings.enabled is True
        assert settings.metrics_port == 0

    def test_bad_port_names_the_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY_METRICS_PORT",
                           "republic")
        with pytest.raises(ValueError,
                           match="REPRO_ENGINE_TELEMETRY_METRICS_PORT"):
            TelemetrySettings.resolve()


def _unit(unit_id: str) -> dict:
    return {"unit": unit_id, "label": unit_id, "groups": []}


class TestFirstAcceptedWinsSpans:
    def test_duplicate_result_spans_ingest_exactly_once(self):
        """A resent unit (requeue after a presumed-dead worker) books
        rows, stats AND spans exactly once — from the accepted result."""
        coordinator = Coordinator(
            units=[_unit("u0")], settings=DistSettings.resolve(),
        )
        tracer = SpanTracer(process="coordinator")
        batch = [{"name": "simulate", "ph": "X", "ts": 0, "dur": 7,
                  "pid": 0, "tid": 1}]
        first = _WorkerConn(None, worker_id="w0", pid=101)
        second = _WorkerConn(None, worker_id="w1", pid=102)
        coordinator._pending.clear()
        with telemetry.tracing(tracer):
            coordinator._handle_result(
                first, {"unit": "u0", "groups": {}, "timings": {},
                        "spans": list(batch)})
            # The duplicate from the presumed-dead worker: same unit,
            # same spans — must be dropped wholesale.
            coordinator._handle_result(
                second, {"unit": "u0", "groups": {}, "timings": {},
                         "spans": list(batch)})
        assert coordinator._done == {"u0"}
        assert tracer.counts() == {"simulate": 1}
        events = tracer.drain()
        assert len(events) == 1


class TestMergedFleetTrace:
    def test_two_subprocess_workers_one_timeline(self, tmp_path):
        """Acceptance: a traced 2-worker run exports one merged,
        schema-valid Chrome trace covering coordinator and both
        workers."""
        from repro.engine import DistBackend

        spec = small_spec(
            models=["SPP2", "SPP3"],
            scenarios=[{"name": "a", "seed": 0},
                       {"name": "b", "seed": 9}],
        )
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get(
            "PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", f"127.0.0.1:{port}",
                 "--id", f"trace-w{index}",
                 "--retry-seconds", "60"],
                env=env, stderr=subprocess.DEVNULL,
            )
            for index in range(2)
        ]
        tracer = SpanTracer(process="coordinator")
        try:
            with telemetry.tracing(tracer):
                table = spec.build_runner().run(
                    backend=DistBackend(port=port, start_timeout=60,
                                        unit_timeout=60,
                                        trace_stage=False),
                )
        finally:
            for worker in workers:
                worker.kill()
                worker.wait()
        assert len(table) == 8
        serial = spec.build_runner().run(backend="serial")
        assert table.to_csv() == serial.to_csv()
        path = tmp_path / "fleet.trace.json"
        tracer.export(path)
        doc = json.loads(path.read_text())
        assert_chrome_trace_schema(doc)
        processes = {event["args"]["name"]
                     for event in doc["traceEvents"]
                     if event["ph"] == "M"}
        assert processes == {"coordinator", "trace-w0", "trace-w1"}
        by_process = {name: 0 for name in processes}
        pid_names = {event["pid"]: event["args"]["name"]
                     for event in doc["traceEvents"]
                     if event["ph"] == "M"}
        names_seen = set()
        for event in doc["traceEvents"]:
            if event["ph"] != "X":
                continue
            by_process[pid_names[event["pid"]]] += 1
            names_seen.add(event["name"])
        # Every fleet member contributed spans to the one timeline.
        assert all(count > 0 for count in by_process.values())
        # Worker-side execution and coordinator-side protocol both
        # appear (the merged timeline covers the whole request path).
        assert "simulate" in names_seen
        assert "protocol-send" in names_seen


class TestByteIdentity:
    def run_once(self, traced: bool, tmp_path, label: str) -> tuple:
        spec = small_spec()
        runner = spec.build_runner()
        observer = RunObserver()
        tracer = SpanTracer() if traced else None
        with telemetry.tracing(tracer):
            table = runner.run(observer=observer)
            csv_text = table.to_csv()
            json_text = table.to_json()
        manifest = RunManifest.collect(runner, table, observer=observer)
        path = tmp_path / f"{label}.manifest.json"
        manifest.write(path)
        return csv_text, json_text, json.loads(path.read_text())

    def test_disabled_run_is_byte_identical(self, tmp_path):
        """Acceptance: telemetry on vs off — same CSV/JSON bytes, same
        manifest minus the ``telemetry`` key."""
        off_csv, off_json, off_manifest = self.run_once(
            False, tmp_path, "off")
        on_csv, on_json, on_manifest = self.run_once(
            True, tmp_path, "on")
        assert off_csv == on_csv
        assert off_json == on_json
        assert "telemetry" not in off_manifest
        assert set(on_manifest) - set(off_manifest) == {"telemetry"}
        assert on_manifest["telemetry"]["spans"]
        assert on_manifest["spec"] == off_manifest["spec"]
        assert on_manifest["settings"] == off_manifest["settings"]

    def test_manifest_round_trips_telemetry(self, tmp_path):
        _, _, on_manifest = self.run_once(True, tmp_path, "round")
        loaded = RunManifest.from_dict(on_manifest)
        assert loaded.telemetry["spans"] == (
            on_manifest["telemetry"]["spans"]
        )
        assert "metrics" in loaded.telemetry


class TestTraceOutCli:
    def test_run_trace_out_writes_perfetto_file(self, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-trace",
            "simulators": ["spade-he"],
            "models": ["SPP2"],
            "scenarios": [{"name": "a", "seed": 0}],
        }))
        out = tmp_path / "results.csv"
        trace = tmp_path / "run.trace.json"
        code = main(["run", str(spec_path), "--out", str(out),
                     "--trace-out", str(trace)])
        assert code == 0
        assert telemetry.active_tracer() is None
        doc = json.loads(trace.read_text())
        assert_chrome_trace_schema(doc)
        names = {event["name"] for event in doc["traceEvents"]
                 if event["ph"] == "X"}
        assert {"simulate", "serialize"} <= names
        manifest = json.loads(
            (tmp_path / "results.manifest.json").read_text())
        assert manifest["telemetry"]["spans"]["simulate"]["count"] > 0

    def test_untraced_cli_run_has_no_telemetry_key(self, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-plain",
            "simulators": ["spade-he"],
            "models": ["SPP2"],
            "scenarios": [{"name": "a", "seed": 0}],
        }))
        out = tmp_path / "results.csv"
        assert main(["run", str(spec_path), "--out", str(out)]) == 0
        manifest = json.loads(
            (tmp_path / "results.manifest.json").read_text())
        assert "telemetry" not in manifest


class TestServiceMetricsVerb:
    def test_metrics_round_trip_over_the_framed_socket(self, tmp_path):
        from repro.engine import Worker
        from repro.engine.service import ExperimentService, ServiceClient
        from repro.engine.settings import ServiceSettings

        service = ExperimentService(
            ServiceSettings(host="127.0.0.1", port=0,
                            store_dir=str(tmp_path / "store"),
                            max_inflight=1, submitter_cap=1,
                            drain_timeout=5.0),
            DistSettings.resolve(port=0, unit_timeout=60.0),
        )
        service.start()
        worker = Worker(("127.0.0.1", service.port),
                        retry_seconds=30.0)
        threading.Thread(target=worker.run, daemon=True).start()
        try:
            client = ServiceClient(host="127.0.0.1", port=service.port)
            run_id = client.submit({
                "name": "metrics-verb",
                "simulators": ["spade-he"],
                "models": ["CP"],
                "scenarios": [{"name": "s0", "seed": 7}],
            })["run"]
            assert client.wait(run_id, timeout=120)["state"] == "done"
            reply = client.metrics()
            assert set(reply) >= {"counters", "gauges", "histograms"}
            heartbeat = reply["counters"].get(
                "repro_heartbeats_total", [])
            assert sum(entry["value"] for entry in heartbeat) >= 0
            gauges = reply["gauges"]
            assert "repro_workers_connected" in gauges
            assert "repro_inflight_runs" in gauges
            streamed = reply["counters"].get(
                "repro_rows_streamed_total", [])
            assert sum(entry["value"] for entry in streamed) >= 1
        finally:
            service.stop(drain=False)


class TestTableConsistency:
    def test_traced_rows_round_trip_unchanged(self):
        """Tracing must not disturb the rows: the traced table matches
        an untraced run and survives the JSON projection."""
        spec = small_spec()
        untraced = spec.build_runner().run(backend="serial")
        tracer = SpanTracer()
        with telemetry.tracing(tracer):
            traced = spec.build_runner().run(backend="serial")
        assert traced.to_csv() == untraced.to_csv()
        assert ExperimentTable.from_json(
            traced.to_json()).to_csv() == traced.to_csv()
