"""Grid specification tests."""

import pytest

from repro.data import GRIDS, KITTI_GRID, MINI_GRID, NUSCENES_GRID, get_grid


class TestGridGeometry:
    def test_kitti_grid_matches_pointpillars_config(self):
        # 0.16 m pillars over 69.12 x 79.36 m -> 432 x 496.
        assert KITTI_GRID.nx == 432
        assert KITTI_GRID.ny == 496
        assert KITTI_GRID.shape == (496, 432)

    def test_nuscenes_grid_is_square_512(self):
        assert NUSCENES_GRID.nx == 512
        assert NUSCENES_GRID.ny == 512

    def test_num_pillars_is_product(self):
        for grid in GRIDS.values():
            assert grid.num_pillars == grid.nx * grid.ny

    def test_contains_accepts_interior_point(self):
        assert KITTI_GRID.contains((10.0, 0.0, -1.0))

    def test_contains_rejects_out_of_range(self):
        assert not KITTI_GRID.contains((-1.0, 0.0, -1.0))
        assert not KITTI_GRID.contains((10.0, 0.0, 5.0))

    def test_contains_is_half_open(self):
        x_max = KITTI_GRID.x_range[1]
        assert not KITTI_GRID.contains((x_max, 0.0, -1.0))
        assert KITTI_GRID.contains((KITTI_GRID.x_range[0], 0.0, -1.0))


class TestGridRegistry:
    def test_get_grid_returns_registered(self):
        assert get_grid("kitti") is KITTI_GRID
        assert get_grid("mini") is MINI_GRID

    def test_get_grid_unknown_raises(self):
        with pytest.raises(KeyError):
            get_grid("waymo")

    def test_mini_grid_is_64x64(self):
        assert MINI_GRID.shape == (64, 64)
