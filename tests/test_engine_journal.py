"""Run journal: write-ahead format, torn-tail recovery, and --resume
stitching that is byte-identical to an uninterrupted run."""

import json

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.cli import main
from repro.engine import (
    ExperimentSpec,
    RunJournal,
    RunManifest,
    manifest_path_for,
    read_journal,
    unit_key,
)
from repro.engine.journal import JOURNAL_SCHEMA, _encode, _scan
from repro.engine.result import (
    SimResult,
    _record_to_result,
    _result_to_record,
)


def journal_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        name="journal-test",
        simulators=["spade-he"],
        models=["SPP2", "SPP3"],
        scenarios=[{"name": "a", "seed": 0}, {"name": "b", "seed": 9}],
        backend="serial",
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def run_with_journal(spec, path):
    journal = RunJournal(path)
    table = spec.build_runner().run(journal=journal)
    return table, journal


class TestJournalFormat:
    def test_fresh_run_writes_header_then_units(self, tmp_path):
        path = tmp_path / "run.journal"
        table, journal = run_with_journal(journal_spec(), path)
        assert len(table) == 4
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["version"] == 1
        assert header["name"] == "journal-test"
        assert header["spec_hash"]
        units = [json.loads(line)["unit"] for line in lines[1:]]
        assert units == ["a/SPP2", "a/SPP3", "b/SPP2", "b/SPP3"]
        assert journal.summary() == {
            "path": str(path),
            "spec_hash": header["spec_hash"],
            "resumed_units": 0,
            "appended_units": 4,
            "dropped_lines": 0,
            "torn_bytes": 0,
        }

    def test_read_journal_round_trip(self, tmp_path):
        path = tmp_path / "run.journal"
        run_with_journal(journal_spec(), path)
        info = read_journal(path)
        assert info["header"]["name"] == "journal-test"
        assert [u["unit"] for u in info["units"]] \
            == ["a/SPP2", "a/SPP3", "b/SPP2", "b/SPP3"]
        assert info["dropped"] == 0
        assert info["torn_bytes"] == 0
        for unit in info["units"]:
            assert unit["rows"], "journaled rows must not be empty"
            assert unit["seconds"] >= 0

    def test_read_journal_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_journal(tmp_path / "missing.journal")
        bogus = tmp_path / "not-a-journal"
        bogus.write_text("just text\n")
        with pytest.raises(ValueError, match="header"):
            read_journal(bogus)

    def test_unit_key(self):
        assert unit_key("drive", "SPP3") == "drive/SPP3"


class TestResume:
    def test_fully_journaled_run_executes_nothing(self, tmp_path):
        path = tmp_path / "run.journal"
        spec = journal_spec()
        first, _ = run_with_journal(spec, path)
        second, journal = run_with_journal(spec, path)
        assert journal.summary()["resumed_units"] == 4
        assert journal.summary()["appended_units"] == 0
        assert second.to_csv() == first.to_csv()
        assert second.to_json() == first.to_json()

    def test_partial_resume_is_byte_identical(self, tmp_path):
        """Acceptance: kill a run after two units, resume, and the
        stitched CSV/JSON equals the uninterrupted run's byte for
        byte."""
        path = tmp_path / "run.journal"
        spec = journal_spec()
        uninterrupted = spec.build_runner().run()
        run_with_journal(spec, path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:3]))   # header + 2 units
        table, journal = run_with_journal(spec, path)
        assert journal.summary()["resumed_units"] == 2
        assert journal.summary()["appended_units"] == 2
        assert table.to_csv() == uninterrupted.to_csv()
        assert table.to_json() == uninterrupted.to_json()

    def test_torn_trailing_record_is_truncated(self, tmp_path):
        path = tmp_path / "run.journal"
        spec = journal_spec()
        uninterrupted = spec.build_runner().run()
        run_with_journal(spec, path)
        lines = path.read_bytes().splitlines(keepends=True)
        torn = lines[-1][: len(lines[-1]) // 2]  # half a record, no \n
        path.write_bytes(b"".join(lines[:3]) + torn)
        table, journal = run_with_journal(spec, path)
        assert journal.summary()["torn_bytes"] == len(torn)
        assert journal.summary()["resumed_units"] == 2
        assert table.to_csv() == uninterrupted.to_csv()
        # The torn bytes were physically truncated before appending.
        assert b"".join(path.read_bytes().splitlines(keepends=True)[:3]) \
            == b"".join(lines[:3])

    def test_invalid_interior_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "run.journal"
        spec = journal_spec()
        uninterrupted = spec.build_runner().run()
        run_with_journal(spec, path)
        lines = path.read_bytes().splitlines(keepends=True)
        mangled = lines[:2] + [b"{broken json\n"] + lines[3:]
        path.write_bytes(b"".join(mangled))
        table, journal = run_with_journal(spec, path)
        assert journal.summary()["dropped_lines"] == 1
        assert journal.summary()["resumed_units"] == 3
        assert table.to_csv() == uninterrupted.to_csv()

    def test_resuming_a_different_spec_fails_loudly(self, tmp_path):
        path = tmp_path / "run.journal"
        run_with_journal(journal_spec(), path)
        other = journal_spec(name="other-experiment",
                             scenarios=[{"name": "a", "seed": 1}])
        with pytest.raises(ValueError, match="different experiment"):
            other.build_runner().run(journal=RunJournal(path))

    def test_journal_units_outside_the_plan_fail(self, tmp_path):
        path = tmp_path / "run.journal"
        spec = journal_spec()
        run_with_journal(spec, path)
        with open(path, "ab") as handle:
            handle.write(_encode({"unit": "ghost/SPP9", "seconds": 0.1,
                                  "worker": None, "rows": []}))
        with pytest.raises(ValueError, match="ghost/SPP9"):
            spec.build_runner().run(journal=RunJournal(path))

    def test_resumed_units_feed_the_observer(self, tmp_path):
        from repro.engine import RunObserver

        path = tmp_path / "run.journal"
        spec = journal_spec()
        run_with_journal(spec, path)
        observer = RunObserver()
        runner = spec.build_runner()
        table = runner.run(observer=observer, journal=RunJournal(path))
        manifest = RunManifest.collect(runner, table, observer=observer)
        assert sorted((u["scenario"], u["model"])
                      for u in manifest.units) == [
            ("a", "SPP2"), ("a", "SPP3"), ("b", "SPP2"), ("b", "SPP3"),
        ]
        assert sum(u["rows"] for u in manifest.units) == len(table)


# Finite floats only: byte-identity is defined over JSON, where NaN has
# no interoperable encoding (the engine never emits NaN metrics).
_metric = st.none() | st.floats(allow_nan=False, allow_infinity=False,
                                width=64)
_count = st.none() | st.integers(min_value=0, max_value=2**40)
_name = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"),
                           whitelist_characters="-._"),
    min_size=1, max_size=16,
)


@st.composite
def sim_results(draw):
    return SimResult(
        simulator=draw(_name),
        model=draw(_name),
        scenario=draw(_name),
        frame=draw(st.none() | st.integers(0, 99) | _name),
        cycles=draw(_count),
        latency_ms=draw(_metric),
        fps=draw(_metric),
        energy_mj=draw(_metric),
        dram_bytes=draw(_count),
        utilization=draw(_metric),
        per_layer=draw(st.lists(
            st.dictionaries(_name, _metric | st.integers(0, 9),
                            max_size=3),
            max_size=3,
        )),
        extras=draw(st.dictionaries(_name, _metric | _name, max_size=3)),
    )


class TestJournalProperties:
    @hyp_settings(max_examples=50, deadline=None)
    @given(results=st.lists(sim_results(), min_size=1, max_size=4),
           seconds=st.floats(0, 1e6, allow_nan=False))
    def test_record_round_trip(self, tmp_path_factory, results, seconds):
        """Any journaled unit decodes back to the exact rows written —
        the property byte-identical resume rests on."""
        path = tmp_path_factory.mktemp("journal") / "rt.journal"
        journal = RunJournal(path)
        journal._handle = open(path, "wb")
        try:
            journal.record_unit("s", "m", seconds, results=results)
        finally:
            journal.close()
        line = path.read_bytes()
        assert line.endswith(b"\n")
        record = json.loads(line)
        assert record["unit"] == "s/m"
        assert record["seconds"] == float(seconds)
        decoded = [_record_to_result(row) for row in record["rows"]]
        assert decoded == results
        # And the wire encoding itself is stable under a second trip.
        assert [_result_to_record(row) for row in decoded] \
            == record["rows"]

    @hyp_settings(max_examples=100, deadline=None)
    @given(data=st.data(),
           results=st.lists(sim_results(), min_size=1, max_size=3))
    def test_torn_write_recovery(self, data, results):
        """Cutting a journal at ANY byte offset never corrupts resume:
        the scan keeps exactly the records whose newline survived and
        reports the rest as a torn tail."""
        blob = _encode({"schema": JOURNAL_SCHEMA, "version": 1,
                        "spec_hash": "h", "name": "t"})
        offsets = [len(blob)]
        for index, result in enumerate(results):
            blob += _encode({
                "unit": f"s/m{index}",
                "seconds": 0.5,
                "worker": None,
                "rows": [_result_to_record(result)],
            })
            offsets.append(len(blob))
        cut = data.draw(st.integers(offsets[0], len(blob)), label="cut")
        header, units, dropped, valid_end, torn = _scan(blob[:cut])
        assert header is not None
        complete = sum(1 for end in offsets[1:] if end <= cut)
        assert list(units) == [f"s/m{i}" for i in range(complete)]
        assert dropped == 0
        assert valid_end == offsets[complete]
        assert torn == cut - valid_end
        for index in range(complete):
            decoded = [_record_to_result(row)
                       for row in units[f"s/m{index}"]["rows"]]
            assert decoded == [results[index]]


class TestJournalCli:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(journal_spec().to_dict()))
        return str(path)

    def test_journal_flag_refuses_an_existing_file(self, capsys,
                                                   tmp_path, spec_path):
        path = tmp_path / "run.journal"
        path.write_text("data")
        assert main(["run", spec_path, "--journal", str(path),
                     "--out", "-"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_journal_and_resume_are_mutually_exclusive(self, capsys,
                                                       spec_path):
        assert main(["run", spec_path, "--journal", "a", "--resume",
                     "b"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_resume_cycle_and_inspect(self, capsys, tmp_path,
                                      spec_path):
        journal = tmp_path / "run.journal"
        first = tmp_path / "first.csv"
        second = tmp_path / "second.csv"
        assert main(["run", spec_path, "--resume", str(journal),
                     "--out", str(first)]) == 0
        err = capsys.readouterr().err
        assert "resumed 0 unit(s), appended 4" in err
        assert main(["run", spec_path, "--resume", str(journal),
                     "--out", str(second)]) == 0
        err = capsys.readouterr().err
        assert "resumed 4 unit(s), appended 0" in err
        assert first.read_bytes() == second.read_bytes()
        # The manifest records the journal counters.
        manifest = RunManifest.load(manifest_path_for(second))
        assert manifest.journal["resumed_units"] == 4
        assert manifest.journal["appended_units"] == 0
        assert main(["journal", "inspect", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "journal-test" in out
        assert "a/SPP2" in out and "b/SPP3" in out
        assert "completed   : 4" in out

    def test_inspect_missing_journal_exits_2(self, capsys, tmp_path):
        assert main(["journal", "inspect",
                     str(tmp_path / "nope.journal")]) == 2
        assert "no journal" in capsys.readouterr().err
