"""Shared fixtures: deterministic scenes, sparse tensors, rule sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    KITTI_GRID,
    KITTI_SCENE,
    MINI_GRID,
    SceneConfig,
    SceneGenerator,
    voxelize,
)
from repro.sparse import SparseTensor, unflatten


@pytest.fixture(scope="session")
def kitti_sweep():
    """One deterministic KITTI-like sweep (session-cached: generation is
    the slowest fixture)."""
    return SceneGenerator(KITTI_SCENE, seed=0).generate()


@pytest.fixture(scope="session")
def kitti_batch(kitti_sweep):
    return voxelize(kitti_sweep, KITTI_GRID)


@pytest.fixture(scope="session")
def mini_scene():
    config = SceneConfig(grid=MINI_GRID, num_objects=(2, 4),
                         azimuth_resolution=0.5)
    return SceneGenerator(config, seed=11).generate()


@pytest.fixture(scope="session")
def mini_batch(mini_scene):
    return voxelize(mini_scene, MINI_GRID)


def random_coords(shape, count, seed=0):
    """CPR-sorted unique random coordinates on a grid."""
    rng = np.random.default_rng(seed)
    total = shape[0] * shape[1]
    count = min(count, total)
    flat = np.sort(rng.choice(total, count, replace=False))
    return unflatten(flat, shape)


def random_sparse_tensor(shape=(32, 40), count=64, channels=8, seed=0):
    """A small random sparse tensor for conv-level tests."""
    rng = np.random.default_rng(seed)
    coords = random_coords(shape, count, seed)
    features = rng.normal(size=(len(coords), channels)).astype(np.float32)
    return SparseTensor(coords, features, shape)


@pytest.fixture
def small_tensor():
    return random_sparse_tensor()
