"""Chaos matrix: deterministic fault plans against real runs.

Each scenario injects one failure mode — a worker killed mid-run, a
dropped connection, a stalled heartbeat, a journal torn mid-record, a
run killed at a checkpoint — and asserts the final table is identical
to a fault-free serial run (resuming with the journal where the fault
killed the run process)."""

import json
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.engine import (
    DistBackend,
    DistRunError,
    DistStartTimeout,
    ExperimentSpec,
    ExperimentTable,
    Worker,
)
from repro.engine import faults
from repro.engine.backends import BackendUnavailable

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def chaos_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        name="chaos-test",
        simulators=["spade-he", "dense-he"],
        models=["SPP2", "SPP3"],
        scenarios=[{"name": "a", "seed": 0}, {"name": "b", "seed": 9}],
        backend="serial",
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def serial_projection(spec: ExperimentSpec) -> ExperimentTable:
    table = spec.build_runner().run(backend="serial")
    return ExperimentTable.from_json(table.to_json())


def subprocess_env(fault_plan: str = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_ENGINE_FAULTS", None)
    if fault_plan:
        env["REPRO_ENGINE_FAULTS"] = fault_plan
    return env


def start_worker_process(port: int, fault_plan: str = None,
                         reconnect: float = 60.0,
                         worker_id: str = None) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro", "worker",
               "--connect", f"127.0.0.1:{port}",
               "--retry-seconds", "60",
               "--reconnect-seconds", str(reconnect)]
    if worker_id:
        command += ["--id", worker_id]
    return subprocess.Popen(command, env=subprocess_env(fault_plan),
                            stderr=subprocess.DEVNULL)


@pytest.fixture(autouse=True)
def disarm():
    faults.reset()
    yield
    faults.reset()


class TestRunProcessChaos:
    """Faults that kill the *run* process: recover with --resume."""

    @pytest.mark.parametrize("plan, exit_code, durable_units", [
        ("kill_run:record=2", 137, 2),
        ("truncate_journal:record=2", 23, 1),
    ])
    def test_killed_run_resumes_byte_identical(self, tmp_path, plan,
                                               exit_code,
                                               durable_units):
        """Acceptance: a run killed at (or torn mid-) checkpoint 2,
        resumed with --resume, produces output byte-identical to an
        uninterrupted run."""
        spec = chaos_spec()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        journal = tmp_path / "run.journal"
        out = tmp_path / "out.csv"
        command = [sys.executable, "-m", "repro", "run", str(spec_path),
                   "--resume", str(journal), "--out", str(out)]
        first = subprocess.run(command, env=subprocess_env(plan),
                               capture_output=True, timeout=300)
        assert first.returncode == exit_code, first.stderr.decode()
        assert not out.exists(), "the killed run must not emit a table"
        from repro.engine import read_journal

        recovered = read_journal(journal)
        assert len(recovered["units"]) == durable_units
        # Clean resume: skips the durable units, reruns the rest.
        second = subprocess.run(command, env=subprocess_env(),
                                capture_output=True, timeout=300)
        assert second.returncode == 0, second.stderr.decode()
        assert f"resumed {durable_units} unit(s)" \
            in second.stderr.decode()
        expected = spec.build_runner().run(backend="serial")
        assert out.read_text() == expected.to_csv()

    def test_journal_truncation_leaves_a_recoverable_tail(
        self, tmp_path
    ):
        spec = chaos_spec(models=["SPP3"])
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        journal = tmp_path / "run.journal"
        command = [sys.executable, "-m", "repro", "run", str(spec_path),
                   "--resume", str(journal), "--out", "-"]
        torn = subprocess.run(
            command, env=subprocess_env("truncate_journal:record=2"),
            capture_output=True, timeout=300,
        )
        assert torn.returncode == 23
        data = journal.read_bytes()
        assert not data.endswith(b"\n"), "the tail must be torn"
        # `repro journal inspect` reports the torn tail instead of
        # choking on it.
        inspect = subprocess.run(
            [sys.executable, "-m", "repro", "journal", "inspect",
             str(journal)],
            env=subprocess_env(), capture_output=True, timeout=60,
        )
        assert inspect.returncode == 0
        assert b"torn tail" in inspect.stdout


class TestDistChaos:
    """Worker/connection faults: the run itself survives and the table
    still matches the fault-free serial run row for row."""

    @pytest.mark.parametrize("plan", [
        "kill_worker:unit=1",
        "stall_heartbeat:after=2",
        "drop_conn:after=8",
    ])
    def test_faulty_worker_never_corrupts_the_table(self, plan):
        spec = chaos_spec()
        port = free_port()
        workers = [
            start_worker_process(port, fault_plan=plan,
                                 worker_id="chaotic"),
            start_worker_process(port, worker_id="steady"),
        ]
        backend = DistBackend(port=port, start_timeout=60,
                              trace_stage=False, max_attempts=5,
                              heartbeat_interval=0.2,
                              worker_timeout=1.5)
        try:
            table = spec.build_runner().run(backend=backend)
        finally:
            for worker in workers:
                worker.kill()
                worker.wait()
        expected = serial_projection(spec)
        assert len(table) == len(expected) == 8
        for left, right in zip(expected, table):
            assert left == right
        assert table.to_csv() == expected.to_csv()

    def test_coordinator_drop_requeues_and_worker_reconnects(self):
        """The coordinator drops the socket mid-assignment; the worker
        re-dials with backoff, re-handshakes, and the unit lands."""
        spec = chaos_spec(models=["SPP3"])
        port = free_port()
        worker = Worker(("127.0.0.1", port), worker_id="boomerang",
                        retry_seconds=60.0, reconnect_seconds=60.0)
        threading.Thread(target=worker.run, daemon=True).start()
        backend = DistBackend(port=port, start_timeout=60,
                              trace_stage=False, max_attempts=5)
        faults.install("coordinator_drop:unit=1")
        try:
            table = spec.build_runner().run(backend=backend)
        finally:
            faults.reset()
        expected = serial_projection(spec)
        assert len(table) == len(expected)
        for left, right in zip(expected, table):
            assert left == right
        stats = backend.last_coordinator.stats
        assert stats["requeues"] >= 1 or stats["worker_failures"] >= 1

    def test_exhausted_unit_reports_its_attempt_history(self):
        from repro.engine import SimResult, Simulator, register_simulator
        from repro.engine.registry import SIMULATORS

        class _FailSim(Simulator):
            name = "FailSim"

            def run(self, trace):
                raise RuntimeError("injected simulator failure")

        register_simulator("chaosfail", lambda: _FailSim(),
                           overwrite=True)
        try:
            spec = chaos_spec(simulators=["chaosfail"], models=["SPP3"],
                              scenarios=[{"name": "doomed", "seed": 0}])
            port = free_port()
            worker = Worker(("127.0.0.1", port), worker_id="w0",
                            retry_seconds=60.0)
            threading.Thread(target=worker.run, daemon=True).start()
            backend = DistBackend(port=port, start_timeout=60,
                                  max_attempts=2)
            with pytest.raises(DistRunError) as caught:
                spec.build_runner().run(backend=backend)
        finally:
            SIMULATORS.unregister("chaosfail")
        error = caught.value
        assert "attempt 1 on 'w0'" in str(error)
        assert len(error.attempts) == 2
        for entry in error.attempts:
            assert entry["worker"] == "w0"
            assert entry["assigned_at"]
            assert "injected simulator failure" in entry["reason"]
            assert entry["failed_at"]


class TestDegradation:
    def test_start_timeout_degrades_to_a_local_backend(self, capsys):
        """With degrade on, a dist run that never sees a worker falls
        back down the ladder and still produces the serial table."""
        spec = chaos_spec(models=["SPP3"])
        backend = DistBackend(port=free_port(), start_timeout=0.5,
                              trace_stage=False)
        runner = spec.build_runner(degrade=True)
        table = runner.run(backend=backend)
        expected = serial_projection(spec)
        assert len(table) == len(expected)
        assert table.to_csv() == spec.build_runner().run(
            backend="serial").to_csv()
        assert "degrading to" in capsys.readouterr().err

    def test_degradation_is_opt_in(self):
        spec = chaos_spec(models=["SPP3"],
                          scenarios=[{"name": "a", "seed": 0}])
        backend = DistBackend(port=free_port(), start_timeout=0.3,
                              trace_stage=False)
        with pytest.raises(DistStartTimeout):
            spec.build_runner().run(backend=backend)

    def test_start_timeout_is_both_unavailable_and_dist_error(self):
        # Old handlers catching DistRunError and the degradation seam
        # catching BackendUnavailable both see the same exception.
        assert issubclass(DistStartTimeout, DistRunError)
        assert issubclass(DistStartTimeout, BackendUnavailable)

    def test_journaled_dist_run_checkpoints_units(self, tmp_path):
        """The journal seam works through the dist backend: a resumed
        dist run skips completed units and stitches identical rows."""
        from repro.engine import RunJournal

        spec = chaos_spec(models=["SPP3"])
        port = free_port()
        worker = Worker(("127.0.0.1", port), worker_id="w0",
                        retry_seconds=60.0)
        threading.Thread(target=worker.run, daemon=True).start()
        path = tmp_path / "dist.journal"
        backend = DistBackend(port=port, start_timeout=60,
                              trace_stage=False)
        table = spec.build_runner().run(backend=backend,
                                        journal=RunJournal(path))
        from repro.engine import read_journal

        recorded = read_journal(path)
        assert [u["unit"] for u in recorded["units"]] \
            == ["a/SPP3", "b/SPP3"]
        for unit in recorded["units"]:
            assert unit["worker"] == "w0"
        # Resume executes nothing (serial fallback never runs a group)
        # yet reproduces the dist table byte for byte.
        journal = RunJournal(path)
        resumed = spec.build_runner().run(backend="serial",
                                          journal=journal)
        assert journal.summary()["resumed_units"] == 2
        assert journal.summary()["appended_units"] == 0
        assert resumed.to_csv() == table.to_csv()
        assert resumed.to_json() == table.to_json()
