"""Functional systolic array: result correctness + timing-model agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystolicArray, pipeline_cycles


class TestSystolicCorrectness:
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 12),
           st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_matches_matmul(self, rows, cols, n, seed):
        rng = np.random.default_rng(seed)
        array = SystolicArray(rows, cols)
        weights = rng.normal(size=(rows, cols))
        activations = rng.normal(size=(n, rows))
        result = array.matmul(activations, weights)
        np.testing.assert_allclose(result.output, activations @ weights,
                                   atol=1e-9)

    def test_empty_stream(self):
        array = SystolicArray(4, 4)
        array.load_weights(np.ones((4, 4)))
        result = array.stream(np.zeros((0, 4)))
        assert result.cycles == 0
        assert result.output.shape == (0, 4)

    def test_rejects_bad_shapes(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError):
            array.load_weights(np.ones((3, 4)))
        with pytest.raises(ValueError):
            array.stream(np.ones((5, 3)))
        with pytest.raises(ValueError):
            SystolicArray(0, 4)


class TestSystolicTiming:
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_cycles_match_pipeline_formula(self, rows, cols, n):
        array = SystolicArray(rows, cols)
        array.load_weights(np.ones((rows, cols)))
        result = array.stream(np.ones((n, rows)))
        assert result.cycles == pipeline_cycles(n, rows, cols)

    def test_weight_load_costs_rows(self):
        array = SystolicArray(5, 3)
        assert array.load_weights(np.ones((5, 3))) == 5

    def test_mac_count_bounded(self):
        # With dense inputs every PE fires once per resident activation.
        array = SystolicArray(3, 3)
        array.load_weights(np.ones((3, 3)))
        result = array.stream(np.ones((10, 3)))
        assert result.macs == 10 * 3 * 3

    def test_zero_activations_skip_macs(self):
        array = SystolicArray(3, 3)
        array.load_weights(np.ones((3, 3)))
        activations = np.ones((10, 3))
        activations[:, 1] = 0.0  # one channel silent
        result = array.stream(activations)
        assert result.macs == 10 * 2 * 3
