"""PointNet, quantization, losses, optimizers, regularization tests."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Linear,
    PillarFeatureNet,
    TopKVectorPruner,
    VectorSparsityRegularizer,
    bce_with_logits,
    calibrate,
    focal_loss_with_logits,
    group_lasso_grad,
    group_lasso_loss,
    quantization_snr_db,
    quantize_dequantize,
    quantized_matmul,
    sigmoid,
    smooth_l1,
)


class TestPillarFeatureNet:
    def _batch(self, num_pillars=5, max_points=8, seed=0):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(num_pillars, max_points, 9)).astype(
            np.float32
        )
        counts = rng.integers(1, max_points + 1, num_pillars).astype(np.int32)
        return features, counts

    def test_output_shape(self):
        net = PillarFeatureNet(9, 16)
        features, counts = self._batch()
        out = net((features, counts))
        assert out.shape == (5, 16)

    def test_padding_does_not_affect_output(self):
        net = PillarFeatureNet(9, 16)
        net.eval()
        features, counts = self._batch()
        out1 = net((features, counts))
        corrupted = features.copy()
        for pillar, count in enumerate(counts):
            corrupted[pillar, count:] = 999.0  # garbage in padded slots
        out2 = net((corrupted, counts))
        np.testing.assert_allclose(out1, out2, atol=1e-5)

    def test_empty_batch(self):
        net = PillarFeatureNet(9, 16)
        out = net((np.zeros((0, 8, 9), np.float32), np.zeros(0, np.int32)))
        assert out.shape == (0, 16)

    def test_backward_runs(self):
        net = PillarFeatureNet(9, 8)
        features, counts = self._batch()
        out = net((features, counts))
        grad = net.backward(np.ones_like(out))
        assert grad.shape == features.shape


class TestQuantization:
    def test_roundtrip_error_small(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 100)).astype(np.float32)
        q = quantize_dequantize(x)
        assert quantization_snr_db(x, q) > 30.0

    def test_quantized_matmul_close_to_float(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(16, 32)).astype(np.float32)
        w = rng.normal(size=(32, 8)).astype(np.float32)
        xp, wp = calibrate(x), calibrate(w)
        approx = quantized_matmul(xp.quantize(x), wp.quantize(w), xp, wp)
        exact = x @ w
        assert quantization_snr_db(exact, approx) > 25.0

    def test_int32_accumulation_dtype(self):
        xp = calibrate(np.ones(4))
        q = xp.quantize(np.ones(4))
        assert q.dtype == np.int8
        accum = q.astype(np.int32) @ q.astype(np.int32)
        assert accum.dtype == np.int32

    def test_calibrate_empty(self):
        assert calibrate(np.zeros(0)).scale == 1.0


class TestLosses:
    def test_sigmoid_stable_extremes(self):
        y = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(0.5)
        assert y[2] == pytest.approx(1.0)

    def test_bce_gradient_sign(self):
        logits = np.array([[2.0, -2.0]])
        targets = np.array([[1.0, 0.0]])
        loss, grad = bce_with_logits(logits, targets)
        assert loss > 0
        assert grad[0, 0] < 0  # push logit up toward target 1
        assert grad[0, 1] > -1e-9

    def test_bce_numeric_gradient(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(3, 4))
        targets = (rng.random((3, 4)) > 0.5).astype(float)
        loss, grad = bce_with_logits(logits, targets)
        eps = 1e-5
        bumped = logits.copy()
        bumped[1, 2] += eps
        loss2, _ = bce_with_logits(bumped, targets)
        assert (loss2 - loss) / eps == pytest.approx(grad[1, 2], rel=1e-3)

    def test_focal_loss_downweights_easy(self):
        easy = np.array([[8.0]])     # confident correct
        hard = np.array([[-8.0]])    # confident wrong
        target = np.array([[1.0]])
        easy_loss, _ = focal_loss_with_logits(easy, target)
        hard_loss, _ = focal_loss_with_logits(hard, target)
        assert hard_loss > 100 * easy_loss

    def test_smooth_l1_quadratic_then_linear(self):
        loss_small, grad_small = smooth_l1(np.array([0.5]), np.array([0.0]))
        loss_large, grad_large = smooth_l1(np.array([5.0]), np.array([0.0]))
        assert loss_small == pytest.approx(0.125)
        assert loss_large == pytest.approx(4.5)
        assert grad_large[0] == pytest.approx(1.0)

    def test_smooth_l1_mask(self):
        pred = np.array([1.0, 100.0])
        target = np.zeros(2)
        mask = np.array([1.0, 0.0])
        loss, grad = smooth_l1(pred, target, mask)
        assert grad[1] == 0.0


class TestOptimizers:
    def _quadratic_descent(self, optimizer_factory, steps=150):
        layer = Linear(1, 1, bias=False)
        layer.weight.data[...] = 5.0
        optimizer = optimizer_factory([layer.weight])
        for _ in range(steps):
            optimizer.zero_grad()
            layer.weight.grad[...] = 2 * (layer.weight.data - 1.0)
            optimizer.step()
        return float(layer.weight.data[0, 0])

    def test_sgd_converges(self):
        final = self._quadratic_descent(lambda p: SGD(p, lr=0.1, momentum=0.5))
        assert final == pytest.approx(1.0, abs=1e-3)

    def test_adam_converges(self):
        final = self._quadratic_descent(lambda p: Adam(p, lr=0.1))
        assert final == pytest.approx(1.0, abs=1e-2)

    def test_weight_decay_shrinks(self):
        layer = Linear(1, 1, bias=False)
        layer.weight.data[...] = 1.0
        optimizer = SGD([layer.weight], lr=0.1, momentum=0.0,
                        weight_decay=0.5)
        optimizer.zero_grad()
        optimizer.step()
        assert float(layer.weight.data[0, 0]) < 1.0


class TestRegularization:
    def test_group_lasso_loss_is_norm_sum(self):
        x = np.zeros((1, 2, 1, 2), np.float32)
        x[0, :, 0, 0] = [3.0, 4.0]
        assert group_lasso_loss(x) == pytest.approx(5.0, abs=1e-3)

    def test_group_lasso_grad_is_unit_direction(self):
        x = np.zeros((1, 2, 1, 1), np.float32)
        x[0, :, 0, 0] = [3.0, 4.0]
        grad = group_lasso_grad(x)
        np.testing.assert_allclose(grad[0, :, 0, 0], [0.6, 0.8], atol=1e-4)

    def test_regularizer_injects_gradient_in_training(self):
        reg = VectorSparsityRegularizer(strength=1.0)
        reg.train()
        x = np.ones((1, 2, 2, 2), np.float32)
        reg(x)
        grad = reg.backward(np.zeros_like(x))
        assert np.abs(grad).sum() > 0

    def test_regularizer_inactive_in_eval(self):
        reg = VectorSparsityRegularizer(strength=1.0)
        reg.eval()
        x = np.ones((1, 2, 2, 2), np.float32)
        reg(x)
        grad = reg.backward(np.zeros_like(x))
        assert np.abs(grad).sum() == 0


class TestTopKPruner:
    def _map_with_magnitudes(self):
        x = np.zeros((1, 2, 2, 2), np.float32)
        x[0, 0] = [[10.0, 1.0], [5.0, 0.0]]
        return x

    def test_keeps_top_fraction_of_active(self):
        pruner = TopKVectorPruner(keep_ratio=0.34)
        y = pruner(self._map_with_magnitudes())
        # 3 active pillars, keep 1 -> only the magnitude-10 survives.
        assert y[0, 0, 0, 0] == 10.0
        assert y[0, 0, 1, 0] == 0.0

    def test_disabled_is_identity(self):
        pruner = TopKVectorPruner(keep_ratio=0.1, enabled=False)
        x = self._map_with_magnitudes()
        np.testing.assert_array_equal(pruner(x), x)

    def test_gradient_masked(self):
        pruner = TopKVectorPruner(keep_ratio=0.34)
        x = self._map_with_magnitudes()
        pruner(x)
        grad = pruner.backward(np.ones_like(x))
        assert grad[0, 0, 0, 0] == 1.0
        assert grad[0, 0, 1, 0] == 0.0

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TopKVectorPruner(keep_ratio=2.0)

    def test_kept_fraction_reported(self):
        pruner = TopKVectorPruner(keep_ratio=0.34)
        pruner(self._map_with_magnitudes())
        assert pruner.last_kept_fraction == pytest.approx(1 / 3, abs=0.01)
