"""CPR (compressed-pillar-row) encode/decode round-trip tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import cpr_decode, cpr_encode, unflatten

SHAPE = (20, 25)


@st.composite
def coord_sets(draw):
    total = SHAPE[0] * SHAPE[1]
    count = draw(st.integers(0, 60))
    flat = draw(st.lists(st.integers(0, total - 1), min_size=count,
                         max_size=count, unique=True))
    return unflatten(np.sort(np.array(flat, dtype=np.int64)), SHAPE)


class TestCprEncoding:
    @given(coord_sets())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, coords):
        row_pointers, column_indices = cpr_encode(coords, SHAPE)
        np.testing.assert_array_equal(
            cpr_decode(row_pointers, column_indices), coords
        )

    @given(coord_sets())
    @settings(max_examples=50, deadline=None)
    def test_row_pointers_monotone_and_complete(self, coords):
        row_pointers, column_indices = cpr_encode(coords, SHAPE)
        assert len(row_pointers) == SHAPE[0] + 1
        assert row_pointers[0] == 0
        assert row_pointers[-1] == len(coords)
        assert (np.diff(row_pointers) >= 0).all()

    @given(coord_sets())
    @settings(max_examples=50, deadline=None)
    def test_columns_ascend_within_rows(self, coords):
        row_pointers, column_indices = cpr_encode(coords, SHAPE)
        for row in range(SHAPE[0]):
            segment = column_indices[row_pointers[row]:row_pointers[row + 1]]
            if len(segment) > 1:
                assert (np.diff(segment) > 0).all()

    def test_rejects_unsorted(self):
        coords = np.array([[5, 0], [1, 0]], np.int32)
        with pytest.raises(ValueError):
            cpr_encode(coords, SHAPE)

    def test_known_example(self):
        coords = np.array([[0, 2], [0, 5], [2, 1]], np.int32)
        row_pointers, column_indices = cpr_encode(coords, (3, 6))
        assert row_pointers.tolist() == [0, 2, 2, 3]
        assert column_indices.tolist() == [2, 5, 1]
