"""Distributed backend: wire protocol framing, work-unit serialization,
2-worker parity with the serial backend, and fault tolerance — a worker
killed mid-run is requeued onto the survivors with an identical table,
and exhausting the attempt cap raises an error naming the unit."""

import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import (
    DistBackend,
    DistRunError,
    ExperimentRunner,
    ExperimentSpec,
    ExperimentTable,
    RunManifest,
    RunObserver,
    SimResult,
    Simulator,
    TraceCache,
    Worker,
    register_simulator,
)
from repro.engine.dist import (
    ConnectionClosed,
    ProtocolError,
    build_units,
    execute_unit,
    message,
    parse_address,
    recv_message,
    send_message,
)
from repro.engine.dist import protocol as protocol_module
from repro.engine.registry import SIMULATORS
from repro.engine.runner import FrameProvider
from repro.engine.settings import BACKEND_ENV_VAR

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def start_worker_thread(port: int, **kwargs) -> Worker:
    kwargs.setdefault("retry_seconds", 30.0)
    worker = Worker(("127.0.0.1", port), **kwargs)
    threading.Thread(target=worker.run, daemon=True).start()
    return worker


def dist_spec(**overrides) -> ExperimentSpec:
    fields = dict(
        name="dist-test",
        simulators=["spade-he", "dense-he"],
        models=["SPP2", "SPP3"],
        scenarios=[{"name": "a", "seed": 0}, {"name": "b", "seed": 9}],
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def serial_projection(spec: ExperimentSpec) -> ExperimentTable:
    """The serial table as the JSON wire schema projects it — the
    distributed backend's documented row contract."""
    table = spec.build_runner().run(backend="serial")
    return ExperimentTable.from_json(table.to_json())


class TestProtocol:
    def test_round_trip(self):
        left, right = socket.socketpair()
        try:
            payload = message("unit", unit=3,
                              groups=[{"index": 0, "spec": {"a": [1, 2]}}])
            send_message(left, payload)
            send_message(left, message("heartbeat"))
            assert recv_message(right) == payload
            assert recv_message(right) == {"type": "heartbeat"}
        finally:
            left.close()
            right.close()

    def test_closed_connection(self):
        left, right = socket.socketpair()
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_message(right)
        right.close()

    def test_truncated_frame(self):
        left, right = socket.socketpair()
        left.sendall(struct.pack(">I", 100) + b"short")
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_message(right)
        right.close()

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(
                ">I", protocol_module.MAX_MESSAGE_BYTES + 1
            ))
            with pytest.raises(ProtocolError, match="byte"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_non_object_payload_rejected(self):
        left, right = socket.socketpair()
        try:
            body = b"[1, 2, 3]"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="type"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_parse_address(self):
        assert parse_address("example.com:7463") == ("example.com", 7463)
        assert parse_address("127.0.0.1:80") == ("127.0.0.1", 80)
        for bad in ("no-port", ":7463", "host:", "host:x", "host:0"):
            with pytest.raises(ValueError, match="HOST:PORT|port"):
                parse_address(bad)


class TestUnitSerialization:
    def test_units_are_valid_specs(self):
        spec = dist_spec()
        runner = spec.build_runner()
        units = build_units(runner, runner.plan(), chunksize=1)
        assert len(units) == 4                     # 2 scenarios x 2 models
        for unit in units:
            assert len(unit["groups"]) == 1
            rebuilt = ExperimentSpec.from_dict(unit["groups"][0]["spec"])
            assert rebuilt.backend == "serial"
            assert [str(s) for s in rebuilt.simulators] \
                == ["spade-he", "dense-he"]
        labels = [unit["label"] for unit in units]
        assert labels == ["a/SPP2", "a/SPP3", "b/SPP2", "b/SPP3"]

    def test_cell_filter_is_baked_into_units(self):
        spec = dist_spec(
            cells=[{"model": "SPP2", "simulator": "SPADE*"},
                   {"model": "SPP3"}],
        )
        runner = spec.build_runner()
        units = build_units(runner, runner.plan(), chunksize=1)
        by_model = {
            unit["groups"][0]["spec"]["models"][0]:
                unit["groups"][0]["spec"]["simulators"]
            for unit in units
        }
        assert by_model["SPP2"] == ["spade-he"]
        assert by_model["SPP3"] == ["spade-he", "dense-he"]
        for unit in units:
            assert unit["groups"][0]["spec"]["cells"] == []

    def test_chunksize_groups_units(self):
        spec = dist_spec()
        runner = spec.build_runner()
        units = build_units(runner, runner.plan(), chunksize=3)
        assert [len(unit["groups"]) for unit in units] == [3, 1]
        assert units[0]["label"] == "a/SPP2, a/SPP3, b/SPP2"

    def test_execute_unit_matches_serial(self):
        spec = dist_spec(models=["SPP3"], scenarios=[{"name": "a",
                                                      "seed": 0}])
        runner = spec.build_runner()
        units = build_units(runner, runner.plan(), chunksize=1)
        out = execute_unit(units[0]["groups"], TraceCache(),
                           {"synthetic": FrameProvider()})
        rows = [
            # The wire records round-trip through the table schema.
            row for row in ExperimentTable.from_json(
                {"schema": "repro.ExperimentTable", "version": 1,
                 "results": out["0"]}
            )
        ]
        expected = serial_projection(spec).results
        assert rows == expected


class TestDistParity:
    def test_two_workers_match_serial_row_for_row(self):
        """Acceptance: a 2-worker dist run reproduces the serial table
        row for row (and byte for byte in CSV/JSON form)."""
        spec = dist_spec()
        port = free_port()
        for index in range(2):
            start_worker_thread(port, worker_id=f"w{index}")
        backend = DistBackend(port=port, start_timeout=30)
        events = []
        table = spec.build_runner().run(
            backend=backend,
            progress=lambda done, total, elapsed:
                events.append((done, total)),
        )
        expected = serial_projection(spec)
        assert len(table) == len(expected) == 8
        for left, right in zip(expected, table):
            assert left == right
        assert table.to_csv() == spec.build_runner().run(
            backend="serial").to_csv()
        # Progress reported through the same seam as every backend.
        assert events[-1] == (4, 4)
        stats = backend.last_coordinator.stats
        assert stats["units"] == 4
        assert stats["worker_failures"] == 0

    def test_batched_scenarios_match_serial(self):
        spec = dist_spec(
            models=["SPP3"],
            scenarios=[{"name": "drive", "seed": 3, "frames": 2}],
        )
        port = free_port()
        start_worker_thread(port)
        table = spec.build_runner().run(
            backend=DistBackend(port=port, start_timeout=30))
        expected = serial_projection(spec)
        assert len(table) == len(expected) == 6   # 2 sims x (2 + mean)
        for left, right in zip(expected, table):
            assert left == right

    def test_delta_trace_matches_serial(self, tmp_path, monkeypatch):
        """With delta tracing on, the dist CSV is byte-identical to the
        serial run's — the coordinator pre-traces each sequential chain
        (frame 0 full, frame 1 patched) into the shared disk tier and
        the workers consume the same content-keyed artifacts."""
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        spec = dist_spec(
            models=["SPP3"],
            scenarios=[{"name": "drive", "seed": 3, "frames": 2}],
            delta_trace=True,
        )
        expected = spec.build_runner().run(backend="serial").to_csv()
        port = free_port()
        start_worker_thread(port)
        table = spec.build_runner().run(
            backend=DistBackend(port=port, start_timeout=30))
        assert table.to_csv() == expected
        # One artifact per chain frame, under the unchanged content keys.
        assert len(list(tmp_path.glob("*.trace.pkl"))) == 2

    def test_trace_stage_ships_artifacts(self, tmp_path, monkeypatch):
        """With a shared cache dir, the coordinator pre-traces every
        unique frame and workers serve them as disk hits."""
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        spec = dist_spec(models=["SPP3"],
                         scenarios=[{"name": "a", "seed": 0}])
        port = free_port()
        worker = start_worker_thread(port)
        table = spec.build_runner().run(
            backend=DistBackend(port=port, start_timeout=30))
        assert len(table) == 2
        artifacts = list(tmp_path.glob("*.trace.pkl"))
        assert len(artifacts) == 1
        # The worker loaded the shipped artifact instead of re-tracing.
        assert worker.units_done == 1


class _FailSim(Simulator):
    name = "FailSim"

    def run(self, trace):
        raise RuntimeError("injected simulator failure")


class _SleepSim(Simulator):
    name = "SleepSim"

    def run(self, trace):
        time.sleep(2.0)
        return SimResult(simulator=self.name, model=trace.spec.name)


@pytest.fixture
def fail_family():
    register_simulator("failsim", lambda: _FailSim(), overwrite=True)
    yield
    SIMULATORS.unregister("failsim")


@pytest.fixture
def sleep_family():
    register_simulator("sleepsim", lambda: _SleepSim(), overwrite=True)
    yield
    SIMULATORS.unregister("sleepsim")


class TestFaultTolerance:
    def test_worker_killed_mid_run_is_requeued(self):
        """Acceptance: SIGKILLing a worker mid-sweep requeues its unit
        onto the survivor and the table still matches serial."""
        spec = dist_spec(
            scenarios=[{"name": "a", "seed": 0, "frames": 2},
                       {"name": "b", "seed": 9, "frames": 2}],
        )
        port = free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH",
                                                           "")
        command = [sys.executable, "-m", "repro", "worker",
                   "--connect", f"127.0.0.1:{port}",
                   "--retry-seconds", "60"]
        workers = [
            subprocess.Popen(command, env=env,
                             stderr=subprocess.DEVNULL)
            for _ in range(2)
        ]
        # Workers trace their own units (no coordinator pre-trace), so
        # every unit is long enough to be killed mid-flight.
        backend = DistBackend(port=port, start_timeout=60,
                              trace_stage=False, max_attempts=5)
        killed = []

        def kill_first_busy_worker():
            while not killed:
                coordinator = backend.last_coordinator
                if coordinator is not None:
                    for snap in coordinator.worker_snapshot():
                        if snap["inflight"] is not None and snap["pid"]:
                            os.kill(snap["pid"], signal.SIGKILL)
                            killed.append(snap["pid"])
                            return
                time.sleep(0.005)

        threading.Thread(target=kill_first_busy_worker,
                         daemon=True).start()
        observer = RunObserver()
        runner = spec.build_runner()
        try:
            table = runner.run(backend=backend, observer=observer)
        finally:
            for worker in workers:
                worker.kill()
                worker.wait()
        assert killed, "the watcher never saw a busy worker"
        expected = serial_projection(spec)
        # 4 groups x 2 simulators x (2 frames + the mean row)
        assert len(table) == len(expected) == 24
        for left, right in zip(expected, table):
            assert left == right
        stats = backend.last_coordinator.stats
        assert stats["worker_failures"] >= 1
        assert stats["requeues"] >= 1
        # Manifest parity: per-unit stats stay complete through the
        # kill/requeue — exactly one record per group (the first
        # accepted result), each timed, attributed and row-counted.
        manifest = RunManifest.collect(runner, table,
                                       observer=observer,
                                       backend="dist")
        assert sorted((unit["scenario"], unit["model"])
                      for unit in manifest.units) == [
            ("a", "SPP2"), ("a", "SPP3"),
            ("b", "SPP2"), ("b", "SPP3"),
        ]
        for unit in manifest.units:
            assert unit["seconds"] > 0
            assert unit["worker"]
        assert sum(unit["rows"] for unit in manifest.units) \
            == len(table)
        assert manifest.backend == "dist"
        assert manifest.dist["stats"]["requeues"] >= 1
        assert manifest.dist["workers"], "worker roster missing"
        assert manifest.analysis["rows_ingested"] == len(table)

    def test_attempt_cap_names_the_failing_unit(self, fail_family):
        """Acceptance: a unit that fails on every attempt surfaces a
        DistRunError naming the unit, not a hang or a silent gap."""
        spec = dist_spec(simulators=["failsim"], models=["SPP3"],
                         scenarios=[{"name": "doomed", "seed": 0}])
        port = free_port()
        start_worker_thread(port)
        backend = DistBackend(port=port, start_timeout=30,
                              max_attempts=2)
        with pytest.raises(DistRunError) as caught:
            spec.build_runner().run(backend=backend)
        text = str(caught.value)
        assert "doomed/SPP3" in text
        assert "2 attempt(s)" in text
        assert "injected simulator failure" in text

    def test_unit_timeout_requeues_then_fails(self, sleep_family):
        spec = dist_spec(simulators=["sleepsim"], models=["SPP3"],
                         scenarios=[{"name": "slow", "seed": 0}])
        port = free_port()
        start_worker_thread(port)
        backend = DistBackend(port=port, start_timeout=30,
                              unit_timeout=0.5, max_attempts=1)
        with pytest.raises(DistRunError, match="timed out"):
            spec.build_runner().run(backend=backend)

    def test_slow_unit_does_not_kill_its_worker(self, sleep_family):
        """A unit blowing its timeout is requeued, but its healthy,
        heartbeating worker survives — and when the original execution
        finishes first anyway, its (deterministic) result is accepted
        and the run completes."""
        spec = dist_spec(simulators=["sleepsim"], models=["SPP3"],
                         scenarios=[{"name": "slow", "seed": 0}])
        port = free_port()
        start_worker_thread(port)
        backend = DistBackend(port=port, start_timeout=30,
                              unit_timeout=0.4, max_attempts=5,
                              trace_stage=False)
        table = spec.build_runner().run(backend=backend)
        assert len(table) == 1
        stats = backend.last_coordinator.stats
        assert stats["requeues"] >= 1          # the timeout fired
        assert stats["worker_failures"] == 0   # ...but nobody was shot

    def test_silent_idle_worker_is_reaped_not_hung(self):
        """An idle worker whose host vanishes without FIN/RST must be
        reaped on heartbeat silence, arming the no-worker timeout —
        never leaving the run hung with units pending forever."""
        spec = dist_spec(models=["SPP3"],
                         scenarios=[{"name": "a", "seed": 0}])
        port = free_port()
        backend = DistBackend(port=port, start_timeout=2.0,
                              worker_timeout=0.5,
                              heartbeat_interval=0.2,
                              trace_stage=False)

        def ghost_worker():
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    sock = socket.create_connection(
                        ("127.0.0.1", port), timeout=1.0)
                    break
                except OSError:
                    time.sleep(0.05)
            else:
                return
            send_message(sock, message("hello", worker="ghost", pid=0))
            recv_message(sock)            # welcome
            time.sleep(30)                # ...then total silence

        threading.Thread(target=ghost_worker, daemon=True).start()
        with pytest.raises(DistRunError, match="no connected workers"):
            spec.build_runner().run(backend=backend)

    def test_no_workers_fails_after_start_timeout(self):
        spec = dist_spec(models=["SPP3"],
                         scenarios=[{"name": "a", "seed": 0}])
        backend = DistBackend(port=free_port(), start_timeout=0.5,
                              trace_stage=False)
        with pytest.raises(DistRunError, match="no connected workers"):
            spec.build_runner().run(backend=backend)


class TestAuth:
    def _handshake(self, port: int, token: str):
        """Open a raw worker connection and answer the challenge."""
        sock = socket.create_connection(("127.0.0.1", port),
                                        timeout=5.0)
        sock.settimeout(5.0)
        send_message(sock, message("hello", worker="probe", pid=0))
        challenge = recv_message(sock)
        assert challenge["type"] == "challenge"
        send_message(sock, message(
            "auth",
            digest=protocol_module.auth_digest(token,
                                               challenge["nonce"]),
        ))
        return sock

    def test_worker_socket_challenges_and_verifies(self):
        from repro.engine.dist import Coordinator
        from repro.engine.settings import DistSettings

        spec = dist_spec(models=["SPP3"],
                         scenarios=[{"name": "a", "seed": 0}])
        runner = spec.build_runner()
        units = build_units(runner, runner.plan(), 1)
        coordinator = Coordinator(
            units, settings=DistSettings.resolve(port=0, token="hush"),
            hold_units=True,
        )
        coordinator.start()
        try:
            good = self._handshake(coordinator.port, "hush")
            assert recv_message(good)["type"] == "welcome"
            good.close()
            bad = self._handshake(coordinator.port, "wrong-token")
            # Dropped without a welcome: the failed digest closes the
            # socket before any protocol state is reachable.
            with pytest.raises(ConnectionClosed):
                recv_message(bad)
            bad.close()
        finally:
            coordinator.shutdown()

    def test_authenticated_run_matches_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_DIST_TOKEN", "hush")
        spec = dist_spec(models=["SPP3"],
                         scenarios=[{"name": "a", "seed": 0}])
        port = free_port()
        start_worker_thread(port)       # reads the token from the env
        table = spec.build_runner().run(
            backend=DistBackend(port=port, start_timeout=30))
        assert table.to_csv() == serial_projection(spec).to_csv()


class TestResultBatching:
    def test_batched_run_matches_serial(self):
        """batch_rows streams partial result frames; the assembled
        table is still byte-identical to the serial run."""
        spec = dist_spec()
        port = free_port()
        start_worker_thread(port)
        table = spec.build_runner().run(
            backend=DistBackend(port=port, start_timeout=30,
                                chunksize=4, batch_rows=1))
        assert table.to_csv() == serial_projection(spec).to_csv()

    def test_worker_flushes_partial_frames(self):
        spec = dist_spec(models=["SPP3"])
        runner = spec.build_runner()
        units = build_units(runner, runner.plan(), chunksize=2)
        entries = units[0]["groups"]
        assert len(entries) == 2
        left, right = socket.socketpair()
        try:
            worker = Worker(("127.0.0.1", 0))
            final = worker._run_unit(left, "u7", entries, TraceCache(),
                                     {"synthetic": FrameProvider()},
                                     batch_rows=1)
            partial = recv_message(right)
        finally:
            left.close()
            right.close()
        assert partial["type"] == "result"
        assert partial["done"] is False
        assert set(partial["groups"]) == {"0"}
        assert final["done"] is True
        assert set(final["groups"]) == {"1"}
        # Between them the frames cover the unit exactly once.
        assert partial["groups"]["0"] and final["groups"]["1"]

    def test_single_group_units_stay_one_frame(self):
        spec = dist_spec(models=["SPP3"],
                         scenarios=[{"name": "a", "seed": 0}])
        runner = spec.build_runner()
        units = build_units(runner, runner.plan(), chunksize=1)
        worker = Worker(("127.0.0.1", 0))
        final = worker._run_unit(None, "u1", units[0]["groups"],
                                 TraceCache(),
                                 {"synthetic": FrameProvider()},
                                 batch_rows=1)
        # No socket needed: one group never flushes a partial frame,
        # and the legacy single-frame shape (no "done" key) is kept.
        assert final.get("done", True) is True
        assert set(final["groups"]) == {"0"}


class TestDistSelection:
    def test_dist_requires_a_spec_built_runner(self):
        runner = ExperimentRunner(simulators=["spade-he"],
                                  models=["SPP3"])
        with pytest.raises(ValueError, match="ExperimentSpec"):
            runner.run(backend="dist")

    def test_env_default_dist_falls_back_for_plain_runners(
        self, monkeypatch
    ):
        # REPRO_ENGINE_BACKEND=dist must not break programmatic runners
        # that cannot serialize work units: the env default falls back
        # to threads (no coordinator, no workers, still a table).
        monkeypatch.setenv(BACKEND_ENV_VAR, "dist")
        runner = ExperimentRunner(simulators=["spade-he"],
                                  models=["SPP3"], cache=TraceCache())
        table = runner.run()
        assert len(table) == 1

    def test_duplicate_worker_ids_survive_a_reap(self):
        # Two workers announcing the same id (identical container
        # hostnames and pids happen in practice) must be tracked
        # independently: one draining and disconnecting must not reap
        # the live clone's registration.
        spec = dist_spec()
        port = free_port()
        start_worker_thread(port, worker_id="clone", max_units=1)
        start_worker_thread(port, worker_id="clone")
        backend = DistBackend(port=port, start_timeout=30)
        table = spec.build_runner().run(backend=backend)
        expected = serial_projection(spec)
        assert len(table) == len(expected)
        for left, right in zip(expected, table):
            assert left == right
        assert backend.last_coordinator.stats["workers_seen"] == 2

    def test_worker_drain_mode_is_not_a_failure(self):
        spec = dist_spec()
        port = free_port()
        drained = start_worker_thread(port, worker_id="drain",
                                      max_units=1)
        start_worker_thread(port, worker_id="rest")
        backend = DistBackend(port=port, start_timeout=30)
        table = spec.build_runner().run(backend=backend)
        assert len(table) == len(serial_projection(spec))
        assert drained.units_done == 1
        # The drain announced itself (goodbye): no phantom failure.
        assert backend.last_coordinator.stats["worker_failures"] == 0

    def test_explicit_provider_instance_rejected(self):
        # Even under a registered non-default name, a caller-supplied
        # provider *instance* cannot ship — workers recreate providers
        # from the registry name, so the instance would be silently
        # ignored remotely.
        from repro.engine.registry import (
            FRAME_PROVIDERS,
            register_frame_provider,
        )

        class TweakedFrames(FrameProvider):
            pass

        register_frame_provider("tweaked", TweakedFrames,
                                overwrite=True)
        try:
            spec = dist_spec(frame_provider="tweaked")
            runner = spec.build_runner(frame_provider=TweakedFrames())
            with pytest.raises(ValueError, match="registry name"):
                runner.run(backend="dist")
            # The same spec without the instance is fine to build units
            # for — workers recreate "tweaked" themselves.
            assert DistBackend.incompatibility(
                spec.build_runner()) is None
        finally:
            FRAME_PROVIDERS.unregister("tweaked")

    def test_held_units_flow_only_after_release(self):
        """hold_units lets the listener accept (and handshake) workers
        while the trace stage runs; units only flow once released."""
        from repro.engine.dist import Coordinator
        from repro.engine.settings import DistSettings

        spec = dist_spec(models=["SPP3"],
                         scenarios=[{"name": "a", "seed": 0}])
        runner = spec.build_runner()
        units = build_units(runner, runner.plan(), 1)
        coordinator = Coordinator(
            units, settings=DistSettings.resolve(port=0),
            hold_units=True,
        )
        coordinator.start()
        worker = start_worker_thread(coordinator.port)
        time.sleep(1.0)
        assert worker.units_done == 0       # connected, politely waiting
        rows = coordinator.serve()          # serve() releases the queue
        assert set(rows) == {0}
        assert worker.units_done == 1
