"""Detection metric tests: IoU properties and AP behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BoundingBox3D
from repro.models import (
    average_precision,
    bev_iou,
    evaluate_map,
    iou_3d,
    match_detections,
    polygon_intersection_area,
)


def box(cx=0.0, cy=0.0, cz=0.0, l=4.0, w=2.0, h=1.5, yaw=0.0, score=1.0):
    return BoundingBox3D((cx, cy, cz), (l, w, h), yaw, score=score)


@st.composite
def boxes(draw):
    return box(
        cx=draw(st.floats(-10, 10)),
        cy=draw(st.floats(-10, 10)),
        l=draw(st.floats(0.5, 6.0)),
        w=draw(st.floats(0.5, 3.0)),
        yaw=draw(st.floats(-np.pi, np.pi)),
    )


class TestPolygonIntersection:
    def test_identical_squares(self):
        square = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], float)
        assert polygon_intersection_area(square, square) == pytest.approx(4.0)

    def test_half_overlap(self):
        a = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], float)
        b = a + np.array([1.0, 0.0])
        assert polygon_intersection_area(a, b) == pytest.approx(2.0)

    def test_disjoint(self):
        a = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], float)
        b = a + 5.0
        assert polygon_intersection_area(a, b) == 0.0

    def test_winding_independent(self):
        a = np.array([[0, 0], [2, 0], [2, 2], [0, 2]], float)
        assert polygon_intersection_area(a, a[::-1]) == pytest.approx(4.0)


class TestBevIoU:
    @given(boxes())
    @settings(max_examples=40, deadline=None)
    def test_self_iou_is_one(self, b):
        assert bev_iou(b, b) == pytest.approx(1.0, abs=1e-6)

    @given(boxes(), boxes())
    @settings(max_examples=40, deadline=None)
    def test_symmetric_and_bounded(self, a, b):
        iou_ab = bev_iou(a, b)
        iou_ba = bev_iou(b, a)
        assert iou_ab == pytest.approx(iou_ba, abs=1e-6)
        assert 0.0 <= iou_ab <= 1.0 + 1e-9

    def test_known_value_shifted(self):
        # 4x2 boxes shifted by 2 along length: overlap 2x2=4, union 12.
        assert bev_iou(box(), box(cx=2.0)) == pytest.approx(4 / 12, abs=1e-6)

    def test_rotation_90_known_value(self):
        # 4x2 crossing 2x4: overlap 2x2=4, union 12.
        assert bev_iou(box(), box(yaw=np.pi / 2)) == pytest.approx(1 / 3,
                                                                   abs=1e-6)


class TestIoU3D:
    def test_identical(self):
        assert iou_3d(box(), box()) == pytest.approx(1.0, abs=1e-6)

    def test_no_height_overlap(self):
        assert iou_3d(box(), box(cz=5.0)) == 0.0

    def test_half_height_overlap(self):
        # Same BEV, shifted by h/2 vertically: inter = V/2, union = 1.5V.
        result = iou_3d(box(), box(cz=0.75))
        assert result == pytest.approx(1 / 3, abs=1e-6)


class TestMatchingAndAP:
    def test_perfect_detection(self):
        gt = [box(), box(cx=10.0)]
        preds = [box(score=0.9), box(cx=10.0, score=0.8)]
        flags, _, num_gt = match_detections(preds, gt)
        assert flags.all()
        assert num_gt == 2
        assert average_precision(flags, num_gt) == pytest.approx(1.0)

    def test_duplicate_matches_count_once(self):
        gt = [box()]
        preds = [box(score=0.9), box(score=0.8)]
        flags, _, _ = match_detections(preds, gt)
        assert flags.tolist() == [True, False]

    def test_low_iou_is_false_positive(self):
        gt = [box()]
        preds = [box(cx=3.9, score=0.9)]
        flags, _, _ = match_detections(preds, gt, iou_threshold=0.5)
        assert not flags.any()

    def test_ap_zero_without_gt(self):
        assert average_precision(np.array([True]), 0) == 0.0

    def test_ap_halves_with_misses(self):
        flags = np.array([True, False, True, False])
        ap = average_precision(flags, 4)
        assert 0.2 < ap < 0.8

    def test_evaluate_map_multi_frame(self):
        frames_preds = [[box(score=0.9)], [box(cx=5, score=0.7)]]
        frames_gt = [[box()], [box(cx=5)]]
        assert evaluate_map(frames_preds, frames_gt) == pytest.approx(1.0)

    def test_evaluate_map_empty(self):
        assert evaluate_map([], []) == 0.0
