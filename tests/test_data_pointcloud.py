"""Point cloud container and bounding-box tests."""

import numpy as np
import pytest

from repro.data import KITTI_GRID, BoundingBox3D, PointCloud


def make_cloud(points):
    points = np.asarray(points, dtype=np.float32)
    return PointCloud(points, np.full(len(points), 0.5, dtype=np.float32))


class TestPointCloud:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((4, 2)), np.zeros(4))

    def test_rejects_mismatched_intensity(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((4, 3)), np.zeros(3))

    def test_len_counts_points(self):
        cloud = make_cloud([[1, 0, -1], [2, 0, -1]])
        assert len(cloud) == 2

    def test_crop_removes_out_of_range(self):
        cloud = make_cloud([[10, 0, -1], [-5, 0, -1], [10, 0, 9]])
        cropped = cloud.crop(KITTI_GRID)
        assert len(cropped) == 1

    def test_crop_preserves_boxes(self):
        cloud = make_cloud([[10, 0, -1]])
        cloud.boxes.append(BoundingBox3D((10, 0, -1), (4, 2, 1.5), 0.0))
        assert len(cloud.crop(KITTI_GRID).boxes) == 1

    def test_concat_merges_points_and_boxes(self):
        a = make_cloud([[1, 0, -1]])
        b = make_cloud([[2, 0, -1]])
        a.boxes.append(BoundingBox3D((1, 0, -1), (4, 2, 1.5), 0.0))
        merged = a.concat(b)
        assert len(merged) == 2
        assert len(merged.boxes) == 1


class TestBoundingBox:
    def test_bev_corners_axis_aligned(self):
        box = BoundingBox3D((0, 0, 0), (4, 2, 1.5), 0.0)
        corners = box.bev_corners()
        assert corners[:, 0].max() == pytest.approx(2.0)
        assert corners[:, 1].max() == pytest.approx(1.0)

    def test_bev_corners_rotation_swaps_extent(self):
        box = BoundingBox3D((0, 0, 0), (4, 2, 1.5), np.pi / 2)
        corners = box.bev_corners()
        assert corners[:, 0].max() == pytest.approx(1.0, abs=1e-6)
        assert corners[:, 1].max() == pytest.approx(2.0, abs=1e-6)

    def test_aabb_bounds_corners(self):
        box = BoundingBox3D((5, -3, 0), (4, 2, 1.5), 0.7)
        xmin, ymin, xmax, ymax = box.bev_aabb()
        corners = box.bev_corners()
        assert xmin == pytest.approx(corners[:, 0].min())
        assert ymax == pytest.approx(corners[:, 1].max())

    def test_contains_bev_center_and_outside(self):
        box = BoundingBox3D((5, 5, 0), (4, 2, 1.5), 0.3)
        inside = box.contains_bev(np.array([[5.0, 5.0], [50.0, 50.0]]))
        assert inside.tolist() == [True, False]

    def test_contains_bev_respects_rotation(self):
        box = BoundingBox3D((0, 0, 0), (4, 0.5, 1.5), np.pi / 2)
        # Long axis now along y: (0, 1.8) inside, (1.8, 0) outside.
        result = box.contains_bev(np.array([[0.0, 1.8], [1.8, 0.0]]))
        assert result.tolist() == [True, False]
