"""Delta rule generation: bit-identical parity against the per-offset
reference loop when frame N's rules are patched from frame N-1's, for
every ConvType — empty transitions, identical frames, 100%-changed
frames (the fallback), random toggles (hypothesis) and multi-frame
delta chains through the sharded fallback path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    DELTA_THRESHOLD_ENV_VAR,
    ConvType,
    build_rules_delta,
    build_rules_reference,
    resolve_delta_threshold,
    unflatten,
)

SHAPE = (26, 34)
TOTAL = SHAPE[0] * SHAPE[1]

#: Every variant at its canonical configuration plus off-nominal kernel
#: sizes and strides — the same grid the fused/sharded parity suites
#: pin, so the delta path honors the identical contract.
CASES = [
    (ConvType.SPCONV, 1, 3),
    (ConvType.SPCONV, 1, 2),
    (ConvType.SPCONV, 1, 5),
    (ConvType.SUBM, 1, 3),
    (ConvType.SPCONV_P, 1, 3),
    (ConvType.STRIDED, 2, 3),
    (ConvType.STRIDED, 3, 3),
    (ConvType.STRIDED_SUBM, 2, 3),
    (ConvType.DECONV, 2, 2),
    (ConvType.DECONV, 3, 3),
]

CASE_IDS = [f"{ct.value}-s{stride}-k{ks}" for ct, stride, ks in CASES]

EMPTY = np.zeros((0, 2), np.int32)


def frame_from_flat(flat):
    return unflatten(np.sort(np.asarray(flat, np.int64)), SHAPE)


def random_frame(count, seed=0):
    rng = np.random.default_rng(seed)
    return frame_from_flat(rng.choice(TOTAL, count, replace=False))


def toggled(flat, toggles):
    """Symmetric difference: each toggle flips one cell's membership."""
    base = set(int(value) for value in flat)
    for cell in toggles:
        cell = int(cell)
        if cell in base:
            base.remove(cell)
        else:
            base.add(cell)
    return frame_from_flat(sorted(base))


def assert_rules_identical(reference, candidate, label=""):
    assert candidate.out_shape == reference.out_shape, label
    np.testing.assert_array_equal(
        candidate.out_coords, reference.out_coords, err_msg=label
    )
    assert len(candidate.pairs) == len(reference.pairs), label
    for index, (expect, got) in enumerate(
        zip(reference.pairs, candidate.pairs)
    ):
        np.testing.assert_array_equal(
            got.in_idx, expect.in_idx, err_msg=f"{label} offset {index}"
        )
        np.testing.assert_array_equal(
            got.out_idx, expect.out_idx, err_msg=f"{label} offset {index}"
        )


def reference_for(coords, conv_type, stride, kernel):
    return build_rules_reference(
        coords, SHAPE, conv_type, kernel_size=kernel, stride=stride
    )


class TestDeltaParity:
    @given(
        base=st.lists(st.integers(0, TOTAL - 1),
                      min_size=20, max_size=120, unique=True),
        toggles=st.lists(st.integers(0, TOTAL - 1),
                         min_size=0, max_size=10, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_toggles_match_reference(self, base, toggles):
        """The core property: for every ConvType, patching frame N-1's
        rules with a random membership toggle is bit-identical to
        rebuilding frame N from scratch (threshold=1.0 keeps the true
        delta path engaged, never the fallback)."""
        prev_coords = frame_from_flat(base)
        new_coords = toggled(base, toggles)
        for conv_type, stride, kernel in CASES:
            prev = reference_for(prev_coords, conv_type, stride, kernel)
            delta = build_rules_delta(prev, new_coords, threshold=1.0)
            expect = reference_for(new_coords, conv_type, stride, kernel)
            assert_rules_identical(
                expect, delta, f"{conv_type.value}-s{stride}-k{kernel}"
            )

    @pytest.mark.parametrize("conv_type,stride,kernel", CASES,
                             ids=CASE_IDS)
    def test_identical_frame_shares_previous_rules(self, conv_type,
                                                   stride, kernel):
        coords = random_frame(90, seed=11)
        prev = reference_for(coords, conv_type, stride, kernel)
        delta = build_rules_delta(prev, coords.copy(), threshold=1.0)
        assert_rules_identical(prev, delta)
        # Zero delta: the patch reuses the previous structure outright.
        for before, after in zip(prev.pairs, delta.pairs):
            assert after.in_idx is before.in_idx
            assert after.out_idx is before.out_idx

    @pytest.mark.parametrize("conv_type,stride,kernel", CASES,
                             ids=CASE_IDS)
    def test_empty_transitions(self, conv_type, stride, kernel):
        frame = random_frame(40, seed=5)
        for prev_coords, new_coords, label in (
            (EMPTY, frame, "empty->frame"),
            (frame, EMPTY, "frame->empty"),
            (EMPTY, EMPTY, "empty->empty"),
        ):
            prev = reference_for(prev_coords, conv_type, stride, kernel)
            delta = build_rules_delta(prev, new_coords, threshold=1.0)
            expect = reference_for(new_coords, conv_type, stride, kernel)
            assert_rules_identical(expect, delta, label)

    @pytest.mark.parametrize("conv_type,stride,kernel", CASES,
                             ids=CASE_IDS)
    def test_fully_changed_frame_falls_back(self, conv_type, stride,
                                            kernel):
        """A 100%-changed frame exceeds any threshold fraction, so the
        patch routes through the full rebuild — and still matches."""
        rng = np.random.default_rng(17)
        cells = rng.choice(TOTAL, 160, replace=False)
        prev_coords = frame_from_flat(cells[:80])
        new_coords = frame_from_flat(cells[80:])
        prev = reference_for(prev_coords, conv_type, stride, kernel)
        for threshold in (None, 0.5, 1.0):
            delta = build_rules_delta(prev, new_coords,
                                      threshold=threshold)
            expect = reference_for(new_coords, conv_type, stride, kernel)
            assert_rules_identical(expect, delta, f"t={threshold}")


class TestDeltaChains:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_chained_deltas_do_not_drift(self, seed):
        """Frames 1..N patch from the *previous delta result*, so any
        drift would compound — parity must hold at every link, for a
        random walk of toggles, through the sharded fallback path."""
        rng = np.random.default_rng(seed)
        flat = set(rng.choice(TOTAL, 100, replace=False).tolist())
        for conv_type, stride, kernel in (
            (ConvType.SPCONV, 1, 3),
            (ConvType.SUBM, 1, 3),
            (ConvType.STRIDED, 2, 3),
            (ConvType.DECONV, 2, 2),
        ):
            coords = frame_from_flat(sorted(flat))
            rules = build_rules_reference(
                coords, SHAPE, conv_type, kernel_size=kernel,
                stride=stride,
            )
            walk = set(flat)
            for frame in range(1, 4):
                for cell in rng.choice(TOTAL, 8, replace=False):
                    cell = int(cell)
                    if cell in walk:
                        walk.remove(cell)
                    else:
                        walk.add(cell)
                coords = frame_from_flat(sorted(walk))
                rules = build_rules_delta(rules, coords, threshold=1.0,
                                          shards=3)
                expect = build_rules_reference(
                    coords, SHAPE, conv_type, kernel_size=kernel,
                    stride=stride,
                )
                assert_rules_identical(
                    expect, rules, f"{conv_type.value} frame {frame}"
                )


class TestThresholdResolution:
    def test_explicit_value_validated(self):
        assert resolve_delta_threshold(0.25) == 0.25
        assert resolve_delta_threshold("0.5") == 0.5
        assert resolve_delta_threshold(1) == 1.0
        for bad in (0, -0.5, 1.5, "half", ""):
            with pytest.raises(ValueError, match="delta_threshold"):
                resolve_delta_threshold(bad)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(DELTA_THRESHOLD_ENV_VAR, raising=False)
        assert resolve_delta_threshold() == 0.5
        monkeypatch.setenv(DELTA_THRESHOLD_ENV_VAR, "0.75")
        assert resolve_delta_threshold() == 0.75
        monkeypatch.setenv(DELTA_THRESHOLD_ENV_VAR, "2")
        with pytest.raises(ValueError, match=DELTA_THRESHOLD_ENV_VAR):
            resolve_delta_threshold()
