"""Dataflow scheduler: instruction breakdowns, optimizations, dense path."""

import numpy as np
import pytest

from repro.core import (
    INSTRUCTIONS,
    SPADE_HE,
    SPADE_LE,
    schedule_dense_layer,
    schedule_sparse_layer,
)
from repro.sparse import ConvType, build_rules, unflatten

SHAPE = (96, 104)


def make_rules(count=600, conv_type=ConvType.SPCONV, stride=1, seed=0):
    rng = np.random.default_rng(seed)
    total = SHAPE[0] * SHAPE[1]
    flat = np.sort(rng.choice(total, count, replace=False))
    return build_rules(unflatten(flat, SHAPE), SHAPE, conv_type,
                       stride=stride)


class TestSparseSchedule:
    def test_breakdown_has_all_instructions(self):
        schedule = schedule_sparse_layer(make_rules(), 64, 64, SPADE_HE)
        assert set(schedule.breakdown) == set(INSTRUCTIONS)

    def test_total_is_breakdown_sum(self):
        schedule = schedule_sparse_layer(make_rules(), 64, 64, SPADE_HE)
        assert schedule.total_cycles == sum(schedule.breakdown.values())

    def test_mxu_cycles_at_least_ideal(self):
        schedule = schedule_sparse_layer(make_rules(), 64, 64, SPADE_HE)
        ideal = schedule.macs / SPADE_HE.peak_macs_per_cycle
        assert schedule.mxu_cycles >= ideal

    def test_utilization_bounded(self):
        schedule = schedule_sparse_layer(make_rules(), 64, 64, SPADE_HE)
        assert 0.0 < schedule.utilization(SPADE_HE) <= 1.0

    def test_wider_channels_increase_macs_not_tiles(self):
        narrow = schedule_sparse_layer(make_rules(), 64, 64, SPADE_HE)
        wide = schedule_sparse_layer(make_rules(), 64, 256, SPADE_HE)
        assert wide.macs == 4 * narrow.macs

    def test_empty_rules_zero_cycles(self):
        rules = build_rules(np.zeros((0, 2), np.int32), SHAPE,
                            ConvType.SPCONV)
        schedule = schedule_sparse_layer(rules, 64, 64, SPADE_HE)
        assert schedule.total_cycles == 0

    def test_dram_bytes_cover_activations(self):
        rules = make_rules()
        schedule = schedule_sparse_layer(rules, 64, 64, SPADE_HE)
        minimum = rules.num_inputs * 64 + rules.num_outputs * 64
        assert schedule.dram_bytes >= minimum

    def test_prune_flag_counts_outputs(self):
        rules = make_rules()
        schedule = schedule_sparse_layer(rules, 64, 64, SPADE_HE, prune=True)
        assert schedule.pruned_outputs == rules.num_outputs

    def test_le_slower_than_he(self):
        rules = make_rules(count=2000)
        he = schedule_sparse_layer(rules, 64, 64, SPADE_HE)
        le = schedule_sparse_layer(rules, 64, 64, SPADE_LE)
        assert le.total_cycles > 2 * he.total_cycles


class TestWeightGrouping:
    def test_grouping_reduces_weight_loads(self):
        rules = make_rules(count=3000, conv_type=ConvType.STRIDED, stride=2)
        base = schedule_sparse_layer(rules, 64, 64, SPADE_HE, optimize=False)
        opt = schedule_sparse_layer(rules, 64, 64, SPADE_HE, optimize=True)
        assert opt.weight_grouping
        assert not base.weight_grouping
        assert opt.breakdown["load_wgt"] < base.breakdown["load_wgt"]

    def test_grouping_reduces_overhead_fraction(self):
        # Fig. 8(c) left: weight grouping cuts SpStConv overhead ~2x.
        rules = make_rules(count=3000, conv_type=ConvType.STRIDED, stride=2)
        base = schedule_sparse_layer(rules, 64, 64, SPADE_HE, optimize=False)
        opt = schedule_sparse_layer(rules, 64, 64, SPADE_HE, optimize=True)
        assert opt.overhead_fraction < base.overhead_fraction

    def test_grouping_not_applied_to_plain_spconv(self):
        schedule = schedule_sparse_layer(make_rules(), 64, 64, SPADE_HE,
                                         optimize=True)
        assert not schedule.weight_grouping


class TestGangedScatter:
    def test_ganged_scatter_increases_effective_ta(self):
        rules = make_rules(count=3000, conv_type=ConvType.DECONV, stride=4)
        base = schedule_sparse_layer(rules, 256, 128, SPADE_HE,
                                     optimize=False)
        opt = schedule_sparse_layer(rules, 256, 128, SPADE_HE, optimize=True)
        assert opt.ganged_scatter
        assert opt.effective_ta > base.effective_ta

    def test_ganged_scatter_reduces_cycles(self):
        rules = make_rules(count=3000, conv_type=ConvType.DECONV, stride=4)
        base = schedule_sparse_layer(rules, 256, 128, SPADE_HE,
                                     optimize=False)
        opt = schedule_sparse_layer(rules, 256, 128, SPADE_HE, optimize=True)
        assert opt.total_cycles < base.total_cycles


class TestDenseSchedule:
    def test_dense_utilization_high_for_big_layers(self):
        schedule = schedule_dense_layer(128 * 128, 128, 128, SPADE_HE,
                                        out_width=128)
        assert schedule.utilization(SPADE_HE) > 0.6

    def test_dense_macs_formula(self):
        schedule = schedule_dense_layer(1000, 64, 64, SPADE_HE, out_width=50)
        assert schedule.macs == 1000 * 9 * 64 * 64

    def test_deconv_counts_input_pixels(self):
        schedule = schedule_dense_layer(1000, 64, 64, SPADE_HE,
                                        kernel_size=2, upsample_stride=2,
                                        out_width=100)
        assert schedule.macs == 1000 * 4 * 64 * 64

    def test_1x1_has_no_copy_psum(self):
        schedule = schedule_dense_layer(1000, 384, 72, SPADE_HE,
                                        kernel_size=1, out_width=100)
        assert schedule.breakdown["copy_psum"] == 0
