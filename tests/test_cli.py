"""The `repro` CLI front-end: run/list/describe over the engine."""

import csv
import io
import json

import pytest

from repro.cli import main
from repro.engine import (
    BACKENDS,
    FRAME_PROVIDERS,
    SIMULATORS,
    ExperimentRunner,
    ExperimentTable,
    RunManifest,
    Scenario,
    manifest_path_for,
    shared_trace_cache,
    spec_hash,
)

SPEC = {
    "version": 1,
    "name": "cli-test",
    "simulators": ["spade-he", "dense-he"],
    "models": ["SPP3"],
    "scenarios": [{"name": "cli", "seed": 0}],
    "backend": "serial",
}


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


class TestList:
    def test_simulators_non_empty(self, capsys):
        assert main(["list", "simulators"]) == 0
        out = capsys.readouterr().out.strip()
        assert out, "repro list simulators must be non-empty"
        assert "spade" in out
        assert "platform" in out

    def test_models_backends_providers(self, capsys):
        assert main(["list", "models"]) == 0
        assert "SPP2" in capsys.readouterr().out
        assert main(["list", "backends"]) == 0
        out = capsys.readouterr().out
        assert "serial" in out and "thread" in out and "process" in out
        assert main(["list", "frame-providers"]) == 0
        assert "synthetic" in capsys.readouterr().out

    def test_scenarios_need_a_spec(self, capsys, spec_path):
        assert main(["list", "scenarios"]) == 2
        assert "spec" in capsys.readouterr().err
        assert main(["list", "scenarios", spec_path]) == 0
        assert "cli" in capsys.readouterr().out


class TestDescribe:
    @pytest.mark.parametrize("name, expect", [
        ("spade-he", "SpadeSimulator"),
        ("SPP2", "Table I"),
        ("serial", "backend"),
        ("synthetic", "frame provider"),
    ])
    def test_describe_kinds(self, capsys, name, expect):
        assert main(["describe", name]) == 0
        assert expect in capsys.readouterr().out

    def test_describe_spec_file(self, capsys, spec_path):
        assert main(["describe", spec_path]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out and "backend=serial" in out

    def test_describe_unknown_exits_2(self, capsys):
        assert main(["describe", "gibberish"]) == 2
        assert "nothing named" in capsys.readouterr().err


class TestRun:
    def test_run_parity_with_hand_built_runner(self, capsys, spec_path,
                                               tmp_path):
        """Acceptance: `repro run spec.json` produces a table identical
        row-for-row to the equivalent hand-built ExperimentRunner."""
        out_path = tmp_path / "results.json"
        assert main(["run", spec_path, "--out", str(out_path)]) == 0
        cli_table = ExperimentTable.from_json(out_path)

        hand_built = ExperimentRunner(
            simulators=["spade-he", "dense-he"],
            models=["SPP3"],
            scenarios=[Scenario("cli", seed=0)],
            backend="serial",
            cache=shared_trace_cache(),
        ).run()
        assert len(cli_table) == len(hand_built) == 2
        for cli_row, hand_row in zip(cli_table, hand_built):
            assert cli_row.as_dict() == hand_row.as_dict()

    def test_run_stdout_csv(self, capsys, spec_path):
        assert main(["run", spec_path, "--out", "-"]) == 0
        captured = capsys.readouterr()
        rows = list(csv.reader(io.StringIO(captured.out)))
        assert rows[0][0] == "scenario"
        assert len(rows) == 3
        # Status chatter goes to stderr, keeping stdout machine-clean.
        assert "cli-test" in captured.err

    def test_run_stdout_json(self, capsys, spec_path):
        assert main(["run", spec_path, "--out", "-",
                     "--format", "json"]) == 0
        table = ExperimentTable.from_json(capsys.readouterr().out)
        assert table.simulators == ["SPADE.HE", "DenseAcc.HE"]

    def test_run_csv_file_format_inferred(self, capsys, tmp_path,
                                          spec_path):
        out_path = tmp_path / "results.csv"
        assert main(["run", spec_path, "--out", str(out_path)]) == 0
        rows = list(csv.reader(io.StringIO(out_path.read_text())))
        assert rows[0][0] == "scenario" and len(rows) == 3

    def test_run_default_prints_table(self, capsys, spec_path):
        assert main(["run", spec_path]) == 0
        out = capsys.readouterr().out
        assert "SPADE.HE" in out and "DenseAcc.HE" in out

    def test_run_backend_override_validated(self, capsys, spec_path):
        assert main(["run", spec_path, "--backend", "quantum"]) == 2
        err = capsys.readouterr().err
        assert "quantum" in err and "serial" in err

    def test_run_bad_workers_names_knob(self, capsys, spec_path):
        assert main(["run", spec_path, "--workers", "lots"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_run_missing_spec_file(self, capsys):
        assert main(["run", "no/such/spec.json"]) == 2
        assert "spec" in capsys.readouterr().err

    def test_run_invalid_spec_names_problem(self, capsys, tmp_path):
        bad = dict(SPEC, simulators=["warp-he"])
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown simulator" in err

    def test_unknown_format_target_rejected(self, capsys, tmp_path,
                                            spec_path):
        out_path = tmp_path / "results.xlsx"
        assert main(["run", spec_path, "--out", str(out_path)]) == 2
        assert "format" in capsys.readouterr().err

    def test_run_progress_reports_groups(self, capsys, spec_path):
        assert main(["run", spec_path, "--progress", "--out", "-"]) == 0
        captured = capsys.readouterr()
        # One (scenario, model) group in the test spec; stdout stays
        # machine-clean, the ticker goes to stderr.
        assert "groups 1/1" in captured.err
        assert "groups" not in captured.out


class TestCache:
    def _run_with_cache(self, spec_path, cache_dir):
        assert main(["run", spec_path, "--cache-dir", str(cache_dir),
                     "--out", "-"]) == 0

    def test_stats_without_dir_says_disabled(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "disabled" in out
        assert "memory tier" in out

    def test_stats_counts_artifacts(self, capsys, tmp_path, spec_path):
        self._run_with_cache(spec_path, tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "artifacts   : 1" in out
        assert str(tmp_path) in out

    def test_stats_reads_env_dir(self, capsys, tmp_path, spec_path,
                                 monkeypatch):
        self._run_with_cache(spec_path, tmp_path)
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        assert "artifacts   : 1" in capsys.readouterr().out

    def test_clear_removes_artifacts(self, capsys, tmp_path, spec_path):
        self._run_with_cache(spec_path, tmp_path)
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "removed 1 trace artifact" in capsys.readouterr().err
        assert list(tmp_path.glob("*.trace.pkl")) == []
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "artifacts   : 0" in capsys.readouterr().out

    def test_clear_without_dir_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        assert main(["cache", "clear"]) == 2
        assert "REPRO_TRACE_CACHE_DIR" in capsys.readouterr().err


class TestWorkerCommand:
    def test_connect_is_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker"])
        assert "--connect" in capsys.readouterr().err

    def test_bad_address_exits_2(self, capsys):
        assert main(["worker", "--connect", "no-port-here"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_unreachable_coordinator_exits_1(self, capsys):
        # Nothing listens on the reserved discard port; the retry
        # window elapses and the worker reports failure.
        assert main(["worker", "--connect", "127.0.0.1:9",
                     "--retry-seconds", "0.2"]) == 1
        assert "no coordinator" in capsys.readouterr().err


class TestDescribeEveryRegistrant:
    """`repro describe` renders every registered name, not just the
    ones the docs happen to mention."""

    # Families whose bare name needs arguments to build; describe them
    # through a concrete spec string instead.
    SPEC_FOR_FAMILY = {
        "dense": "dense-he",
        "platform": "platform:A6000",
        "pointacc": "pointacc-he",
        "spade": "spade-he",
    }

    def test_every_simulator_family(self, capsys):
        for family in SIMULATORS.names():
            name = self.SPEC_FOR_FAMILY.get(family, family)
            assert main(["describe", name]) == 0, name
            out = capsys.readouterr().out
            assert name in out and out.strip(), name

    def test_every_backend(self, capsys):
        for name in BACKENDS.names():
            assert main(["describe", name]) == 0, name
            out = capsys.readouterr().out
            assert "backend" in out and name in out, name

    def test_every_frame_provider(self, capsys):
        for name in FRAME_PROVIDERS.names():
            assert main(["describe", name]) == 0, name
            out = capsys.readouterr().out
            assert "frame provider" in out and name in out, name


class TestRunManifestSink:
    def test_out_writes_a_manifest_next_to_the_sink(self, capsys,
                                                    tmp_path,
                                                    spec_path):
        out = tmp_path / "r.json"
        assert main(["run", spec_path, "--out", str(out)]) == 0
        err = capsys.readouterr().err
        assert "wrote run manifest" in err
        manifest = RunManifest.load(manifest_path_for(out))
        assert manifest.name == "cli-test"
        assert manifest.spec_hash == spec_hash(manifest.spec)
        assert manifest.backend == "serial"
        assert sum(unit["rows"] for unit in manifest.units) \
            == manifest.table["rows"] \
            == len(ExperimentTable.from_json(str(out)))

    def test_csv_sink_gets_a_json_manifest(self, capsys, tmp_path,
                                           spec_path):
        out = tmp_path / "r.csv"
        assert main(["run", spec_path, "--out", str(out)]) == 0
        path = manifest_path_for(out)
        assert path.name == "r.manifest.json" and path.exists()

    def test_stdout_sink_skips_the_manifest(self, capsys, spec_path):
        assert main(["run", spec_path, "--out", "-"]) == 0
        assert "wrote run manifest" not in capsys.readouterr().err

    def test_unwritable_out_dir_is_actionable(self, capsys,
                                              spec_path):
        assert main(["run", spec_path, "--out",
                     "/nonexistent/r.json"]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err and "--out" in err
