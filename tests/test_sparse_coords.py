"""CPR coordinate handling: property-based and unit tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    cpr_sort,
    dilate,
    downsample_coords,
    flatten,
    is_cpr_sorted,
    kernel_offsets,
    unflatten,
    upsample_coords,
    validate_coords,
)

SHAPE = (24, 31)


@st.composite
def coord_sets(draw, shape=SHAPE, max_count=60):
    total = shape[0] * shape[1]
    count = draw(st.integers(min_value=0, max_value=min(max_count, total)))
    flat = draw(
        st.lists(st.integers(0, total - 1), min_size=count, max_size=count,
                 unique=True)
    )
    return unflatten(np.sort(np.array(flat, dtype=np.int64)), shape)


class TestFlattenRoundtrip:
    @given(coord_sets())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, coords):
        flat = flatten(coords, SHAPE)
        np.testing.assert_array_equal(unflatten(flat, SHAPE), coords)

    @given(coord_sets())
    @settings(max_examples=50, deadline=None)
    def test_sorted_flat_means_cpr(self, coords):
        assert is_cpr_sorted(coords, SHAPE)


class TestCprSort:
    def test_sorts_shuffled(self):
        rng = np.random.default_rng(0)
        flat = rng.choice(SHAPE[0] * SHAPE[1], 40, replace=False)
        coords = unflatten(flat, SHAPE)
        sorted_coords, perm = cpr_sort(coords, SHAPE)
        assert is_cpr_sorted(sorted_coords, SHAPE)
        np.testing.assert_array_equal(coords[perm], sorted_coords)

    def test_empty(self):
        sorted_coords, perm = cpr_sort(np.zeros((0, 2), np.int32), SHAPE)
        assert len(sorted_coords) == 0


class TestValidate:
    def test_accepts_valid(self):
        validate_coords(np.array([[0, 0], [0, 5], [3, 2]], np.int32), SHAPE)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validate_coords(np.array([[1, 1], [1, 1]], np.int32), SHAPE)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            validate_coords(np.array([[2, 0], [1, 0]], np.int32), SHAPE)

    def test_rejects_out_of_bounds(self):
        with pytest.raises(ValueError):
            validate_coords(np.array([[0, SHAPE[1]]], np.int32), SHAPE)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_coords(np.array([[-1, 0]], np.int32), SHAPE)


class TestKernelOffsets:
    def test_3x3_order_matches_weight_indices(self):
        offsets = kernel_offsets(3)
        assert offsets.tolist()[0] == [-1, -1]
        assert offsets.tolist()[4] == [0, 0]
        assert offsets.tolist()[8] == [1, 1]

    def test_count(self):
        assert len(kernel_offsets(5)) == 25


class TestDilate:
    @given(coord_sets())
    @settings(max_examples=30, deadline=None)
    def test_dilation_is_superset(self, coords):
        out = dilate(coords, SHAPE)
        in_flat = set(flatten(coords, SHAPE).tolist())
        out_flat = set(flatten(out, SHAPE).tolist())
        assert in_flat <= out_flat

    @given(coord_sets())
    @settings(max_examples=30, deadline=None)
    def test_dilation_bounded_by_9x(self, coords):
        out = dilate(coords, SHAPE)
        assert len(out) <= 9 * max(len(coords), 1)

    def test_dilation_matches_dense_binary(self):
        coords = np.array([[5, 5], [5, 6], [10, 20]], np.int32)
        dense = np.zeros(SHAPE, bool)
        dense[coords[:, 0], coords[:, 1]] = True
        expected = np.zeros(SHAPE, bool)
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                shifted = np.roll(np.roll(dense, dr, 0), dc, 1)
                if dr == -1:
                    shifted[-1] = False
                if dr == 1:
                    shifted[0] = False
                if dc == -1:
                    shifted[:, -1] = False
                if dc == 1:
                    shifted[:, 0] = False
                expected |= shifted
        out = dilate(coords, SHAPE)
        got = np.zeros(SHAPE, bool)
        got[out[:, 0], out[:, 1]] = True
        np.testing.assert_array_equal(got, expected)

    def test_empty(self):
        assert len(dilate(np.zeros((0, 2), np.int32), SHAPE)) == 0


class TestResample:
    @given(coord_sets())
    @settings(max_examples=30, deadline=None)
    def test_downsample_in_bounds_and_sorted(self, coords):
        out, out_shape = downsample_coords(coords, SHAPE, 2)
        assert out_shape == (12, 16)
        assert is_cpr_sorted(out, out_shape)

    @given(coord_sets())
    @settings(max_examples=30, deadline=None)
    def test_upsample_count_is_exactly_s2(self, coords):
        out, out_shape = upsample_coords(coords, SHAPE, 2)
        assert len(out) == 4 * len(coords)
        assert is_cpr_sorted(out, out_shape)

    def test_downsample_covers_halved_inputs(self):
        coords = np.array([[4, 6], [11, 21]], np.int32)
        out, out_shape = downsample_coords(coords, SHAPE, 2)
        out_set = set(map(tuple, out.tolist()))
        assert (2, 3) in out_set
        assert (5, 10) in out_set
