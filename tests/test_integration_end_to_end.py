"""End-to-end integration: sweep -> pillars -> functional sparse backbone ->
trace -> accelerators -> reports, all consistent with each other."""

import numpy as np
import pytest

from repro.analysis import compute_savings, trace_model
from repro.core import (
    SPADE_HE,
    DenseAccelerator,
    SpadeAccelerator,
    streaming_rulegen,
)
from repro.data import MINI_GRID, SceneConfig, SceneGenerator, voxelize
from repro.models import SparseBackboneRunner, build_model_spec
from repro.sparse import ConvType, SparseTensor, build_rules


@pytest.fixture(scope="module")
def mini_frame():
    config = SceneConfig(grid=MINI_GRID, num_objects=(2, 4),
                         azimuth_resolution=0.5)
    sweep = SceneGenerator(config, seed=5).generate()
    return voxelize(sweep, MINI_GRID)


class TestFunctionalVsGeometricConsistency:
    def test_runner_active_counts_match_trace(self, mini_frame):
        """The functional runner and the geometric trace must agree on
        active-set geometry for non-pruning layers."""
        spec = build_model_spec("SPP1")
        trace = trace_model(spec, mini_frame.coords,
                            grid_shape=MINI_GRID.shape)
        rng = np.random.default_rng(0)
        tensor = SparseTensor(
            mini_frame.coords,
            np.abs(rng.normal(size=(mini_frame.num_active, 64))).astype(
                np.float32
            ),
            MINI_GRID.shape,
        )
        result = SparseBackboneRunner(spec, seed=0).run(tensor)
        for record in result.records:
            layer = trace.layer(record.name)
            assert record.tensor.num_active == layer.out_count_after_prune, (
                record.name
            )

    def test_streaming_rgu_on_real_frame(self, mini_frame):
        reference = build_rules(mini_frame.coords, MINI_GRID.shape,
                                ConvType.SPCONV)
        streamed = streaming_rulegen(mini_frame.coords, MINI_GRID.shape)
        np.testing.assert_array_equal(reference.out_coords,
                                      streamed.out_coords)
        assert reference.total_pairs == streamed.total_pairs


class TestFullPipeline:
    def test_sweep_to_accelerator(self, mini_frame):
        trace, dense_trace, savings = compute_savings(
            "SPP2", mini_frame.coords,
            mini_frame.point_counts.astype(float)
        )
        spade = SpadeAccelerator(SPADE_HE).run_trace(trace)
        dense = DenseAccelerator(SPADE_HE).run_trace(dense_trace)
        assert 0.0 < savings < 1.0
        assert spade.total_cycles < dense.total_cycles
        assert spade.energy_mj < dense.energy_mj

    def test_accelerator_macs_match_trace(self, mini_frame):
        trace, _, _ = compute_savings("SPP1", mini_frame.coords)
        result = SpadeAccelerator(SPADE_HE).run_trace(trace)
        assert result.total_macs == trace.total_macs

    def test_deterministic_end_to_end(self, mini_frame):
        first = SpadeAccelerator(SPADE_HE).run_trace(
            compute_savings("SPP2", mini_frame.coords,
                            mini_frame.point_counts.astype(float))[0]
        )
        second = SpadeAccelerator(SPADE_HE).run_trace(
            compute_savings("SPP2", mini_frame.coords,
                            mini_frame.point_counts.astype(float))[0]
        )
        assert first.total_cycles == second.total_cycles
        assert first.energy_mj == second.energy_mj
