"""NN layer tests: shapes, semantics and numeric gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2D,
    Deconv2D,
    Linear,
    ReLU,
    Sequential,
    conv_bn_relu,
)


def numeric_grad_check(module, x, positions, eps=1e-3, tol=0.08):
    """Compare analytic input gradients with central differences."""
    module.eval()  # freeze BN stats so the loss is a pure function

    def loss_of(value):
        y = module(value.astype(np.float32))
        return float((y.astype(np.float64) ** 2).sum())

    y = module(x)
    grad = module.backward((2 * y).astype(np.float32))
    for index in positions:
        plus, minus = x.copy(), x.copy()
        plus[index] += eps
        minus[index] -= eps
        numeric = (loss_of(plus) - loss_of(minus)) / (2 * eps)
        scale = max(abs(numeric), abs(float(grad[index])), 1e-3)
        assert abs(numeric - grad[index]) / scale < tol, (
            f"grad mismatch at {index}: numeric {numeric}, "
            f"analytic {grad[index]}"
        )


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 7)
        assert layer(np.zeros((3, 4), np.float32)).shape == (3, 7)

    def test_gradient(self):
        rng = np.random.default_rng(0)
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        numeric_grad_check(layer, x, [(0, 1), (3, 4), (2, 0)])

    def test_weight_gradient_accumulates(self):
        layer = Linear(2, 2)
        x = np.ones((1, 2), np.float32)
        layer.backward_input = None
        layer(x)
        layer.backward(np.ones((1, 2), np.float32))
        first = layer.weight.grad.copy()
        layer(x)
        layer.backward(np.ones((1, 2), np.float32))
        np.testing.assert_allclose(layer.weight.grad, 2 * first)


class TestConv2D:
    def test_same_padding_shape(self):
        conv = Conv2D(3, 5, 3)
        assert conv(np.zeros((2, 3, 8, 9), np.float32)).shape == (2, 5, 8, 9)

    def test_stride2_shape(self):
        conv = Conv2D(3, 5, 3, stride=2)
        assert conv(np.zeros((1, 3, 9, 8), np.float32)).shape == (1, 5, 5, 4)

    def test_1x1_is_pointwise(self):
        rng = np.random.default_rng(1)
        conv = Conv2D(4, 2, 1, rng=rng)
        x = rng.normal(size=(1, 4, 3, 3)).astype(np.float32)
        y = conv(x)
        expected = np.einsum("nchw,co->nohw", x, conv.weight.data[0])
        expected += conv.bias.data[None, :, None, None]
        np.testing.assert_allclose(y, expected, atol=1e-5)

    def test_rejects_even_kernel(self):
        with pytest.raises(ValueError):
            Conv2D(3, 3, 2)

    def test_gradient(self):
        rng = np.random.default_rng(2)
        conv = Conv2D(2, 3, 3, stride=2, rng=rng)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float32)
        numeric_grad_check(conv, x, [(0, 0, 0, 0), (0, 1, 3, 4),
                                     (0, 0, 5, 5)])


class TestDeconv2D:
    def test_upsample_shape(self):
        deconv = Deconv2D(4, 2, stride=2)
        assert deconv(np.zeros((1, 4, 5, 6), np.float32)).shape == (1, 2, 10, 12)

    def test_non_overlapping_blocks(self):
        rng = np.random.default_rng(3)
        deconv = Deconv2D(1, 1, stride=2, rng=rng)
        x = np.zeros((1, 1, 2, 2), np.float32)
        x[0, 0, 0, 0] = 1.0
        y = deconv(x)
        # Only the top-left 2x2 block plus bias elsewhere.
        bias = deconv.bias.data[0]
        assert abs(y[0, 0, 3, 3] - bias) < 1e-6

    def test_gradient(self):
        rng = np.random.default_rng(4)
        deconv = Deconv2D(2, 2, stride=2, rng=rng)
        x = rng.normal(size=(1, 2, 3, 3)).astype(np.float32)
        numeric_grad_check(deconv, x, [(0, 0, 0, 0), (0, 1, 2, 2)])


class TestBatchNorm:
    def test_train_normalizes(self):
        bn = BatchNorm2d(3)
        bn.train()
        rng = np.random.default_rng(5)
        x = rng.normal(3.0, 2.0, size=(4, 3, 8, 8)).astype(np.float32)
        y = bn(x)
        assert abs(float(y.mean())) < 1e-5
        assert float(y.std()) == pytest.approx(1.0, abs=0.01)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        bn.train()
        rng = np.random.default_rng(6)
        for _ in range(50):
            bn(rng.normal(1.0, 2.0, size=(2, 2, 4, 4)).astype(np.float32))
        bn.eval()
        x = rng.normal(1.0, 2.0, size=(2, 2, 4, 4)).astype(np.float32)
        y = bn(x)
        assert abs(float(y.mean())) < 0.4

    def test_gradient_eval_mode(self):
        rng = np.random.default_rng(7)
        bn = BatchNorm2d(2)
        bn.train()
        bn(rng.normal(size=(2, 2, 4, 4)).astype(np.float32))
        x = rng.normal(size=(2, 2, 4, 4)).astype(np.float32)
        numeric_grad_check(bn, x, [(0, 0, 1, 1), (1, 1, 2, 3)])

    def test_train_gradient_sums_to_zero_per_channel(self):
        # BN training backward projects out the per-channel mean direction.
        rng = np.random.default_rng(8)
        bn = BatchNorm2d(2)
        bn.train()
        x = rng.normal(size=(2, 2, 4, 4)).astype(np.float32)
        bn(x)
        grad_in = bn.backward(rng.normal(size=x.shape).astype(np.float32))
        per_channel = grad_in.sum(axis=(0, 2, 3))
        np.testing.assert_allclose(per_channel, 0.0, atol=1e-4)


class TestSequentialAndBlocks:
    def test_parameter_discovery(self):
        block = conv_bn_relu(3, 4)
        names = len(block.parameters())
        assert names == 3  # conv weight (no bias) + gamma + beta

    def test_forward_backward_stack(self):
        rng = np.random.default_rng(9)
        net = Sequential(conv_bn_relu(2, 4, stride=2, rng=rng),
                         conv_bn_relu(4, 4, rng=rng))
        x = rng.normal(size=(1, 2, 8, 8)).astype(np.float32)
        y = net(x)
        assert y.shape == (1, 4, 4, 4)
        grad = net.backward(np.ones_like(y))
        assert grad.shape == x.shape

    def test_train_eval_propagates(self):
        net = Sequential(conv_bn_relu(2, 2))
        net.eval()
        bn = net[0][1]
        assert bn.training is False
        net.train()
        assert bn.training is True

    def test_relu_masks_negative(self):
        relu = ReLU()
        y = relu(np.array([[-1.0, 2.0]], np.float32))
        np.testing.assert_array_equal(y, [[0.0, 2.0]])
        grad = relu.backward(np.ones((1, 2), np.float32))
        np.testing.assert_array_equal(grad, [[0.0, 1.0]])
