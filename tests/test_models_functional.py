"""Functional models: mini detector training + sparse backbone runner."""

import numpy as np
import pytest

from repro.data import MINI_GRID, SceneConfig, SceneGenerator, voxelize
from repro.models import (
    MiniPointPillars,
    SparseBackboneRunner,
    build_model_spec,
    build_targets,
    decode_detections,
    detection_loss,
    evaluate_map,
)
from repro.nn import Adam
from repro.sparse import SparseTensor


@pytest.fixture(scope="module")
def training_setup():
    config = SceneConfig(grid=MINI_GRID, num_objects=(2, 4),
                         azimuth_resolution=0.5)
    scenes = SceneGenerator(config, seed=7).generate_batch(8)
    batches = [
        (voxelize(scene, MINI_GRID), build_targets(scene.boxes, MINI_GRID))
        for scene in scenes
    ]
    return scenes, batches


class TestMiniPointPillars:
    def test_forward_shape(self, training_setup):
        _, batches = training_setup
        model = MiniPointPillars(seed=0).eval()
        outputs = model(batches[0][0])
        assert outputs.shape == (1, 5, 16, 16)

    def test_training_reduces_loss(self, training_setup):
        _, batches = training_setup
        model = MiniPointPillars(seed=0).train()
        optimizer = Adam(model.parameters(), lr=2e-3)

        def epoch_loss():
            total = 0.0
            for batch, targets in batches:
                optimizer.zero_grad()
                outputs = model(batch)
                loss, grad = detection_loss(outputs, targets)
                model.backward(grad)
                optimizer.step()
                total += loss
            return total / len(batches)

        first = epoch_loss()
        for _ in range(4):
            last = epoch_loss()
        assert last < first * 0.8

    def test_trained_model_detects(self, training_setup):
        scenes, batches = training_setup
        model = MiniPointPillars(seed=0).train()
        optimizer = Adam(model.parameters(), lr=2e-3)
        for _ in range(8):
            for batch, targets in batches:
                optimizer.zero_grad()
                outputs = model(batch)
                _, grad = detection_loss(outputs, targets)
                model.backward(grad)
                optimizer.step()
        model.eval()
        predictions = [
            decode_detections(model(voxelize(scene, MINI_GRID)), MINI_GRID)
            for scene in scenes
        ]
        ground_truth = [scene.boxes for scene in scenes]
        assert evaluate_map(predictions, ground_truth, 0.3) > 0.2

    def test_targets_rasterize_boxes(self, training_setup):
        scenes, _ = training_setup
        targets = build_targets(scenes[0].boxes, MINI_GRID)
        assert targets.objectness.sum() >= 1
        assert targets.objectness.sum() <= len(scenes[0].boxes)

    def test_pruner_hook_reduces_activity(self, training_setup):
        _, batches = training_setup
        model = MiniPointPillars(seed=0).eval()
        model.pruner.enabled = True
        model.pruner.keep_ratio = 0.5
        model(batches[0][0])
        assert model.pruner.last_kept_fraction == pytest.approx(0.5,
                                                                abs=0.05)


class TestSparseBackboneRunner:
    def _tensor(self, batch, channels):
        rng = np.random.default_rng(0)
        features = np.abs(
            rng.normal(size=(batch.num_active, channels))
        ).astype(np.float32)
        return SparseTensor(batch.coords, features, batch.grid.shape)

    def test_runs_spp3_backbone(self, mini_batch):
        spec = build_model_spec("SPP3")
        runner = SparseBackboneRunner(spec, seed=1)
        tensor = self._tensor(mini_batch, 64)
        tensor.shape = mini_batch.grid.shape
        result = runner.run(tensor)
        assert len(result.records) == 16  # 4 + 6 + 6 backbone layers
        assert result.record("B1C1").tensor.num_active > 0

    def test_spp2_pruning_applied(self, mini_batch):
        spec = build_model_spec("SPP2")
        runner = SparseBackboneRunner(spec, seed=1)
        result = runner.run(self._tensor(mini_batch, 64))
        stage_start = result.record("B1C1")
        assert stage_start.kept_fraction == pytest.approx(0.55, abs=0.02)

    def test_channel_mismatch_raises(self, mini_batch):
        spec = build_model_spec("SPP1")
        runner = SparseBackboneRunner(spec)
        with pytest.raises(ValueError):
            runner.run(self._tensor(mini_batch, 32))

    def test_relu_keeps_features_nonnegative(self, mini_batch):
        spec = build_model_spec("SPP1")
        runner = SparseBackboneRunner(spec, seed=2)
        result = runner.run(self._tensor(mini_batch, 64))
        assert result.records[-1].tensor.features.min() >= 0.0
