"""Synthetic scene generator tests: the structural properties every
architecture experiment relies on."""

import numpy as np

from repro.data import (
    KITTI_GRID,
    KITTI_SCENE,
    NUSCENES_GRID,
    SceneGenerator,
    nuscenes_scene_config,
    voxelize,
)


class TestDeterminism:
    def test_same_seed_same_sweep(self):
        a = SceneGenerator(KITTI_SCENE, seed=5).generate()
        b = SceneGenerator(KITTI_SCENE, seed=5).generate()
        assert len(a) == len(b)
        np.testing.assert_array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = SceneGenerator(KITTI_SCENE, seed=1).generate()
        b = SceneGenerator(KITTI_SCENE, seed=2).generate()
        assert len(a) != len(b) or not np.array_equal(a.points, b.points)


class TestSweepStructure:
    def test_point_count_is_lidar_scale(self, kitti_sweep):
        # A 64-beam front-facing sweep lands tens of thousands of returns.
        assert 10_000 < len(kitti_sweep) < 200_000

    def test_all_points_in_grid_range(self, kitti_sweep):
        x, y = kitti_sweep.points[:, 0], kitti_sweep.points[:, 1]
        assert x.min() >= KITTI_GRID.x_range[0]
        assert x.max() < KITTI_GRID.x_range[1]
        assert y.min() >= KITTI_GRID.y_range[0]

    def test_occupancy_matches_paper_regime(self, kitti_batch):
        # Paper: ~97% of densified pillars are zero (3-10% active).
        assert 0.01 < kitti_batch.occupancy < 0.10

    def test_boxes_present(self, kitti_sweep):
        assert len(kitti_sweep.boxes) >= KITTI_SCENE.num_objects[0]

    def test_density_falls_with_range(self, kitti_sweep):
        ranges = np.linalg.norm(kitti_sweep.points[:, :2], axis=1)
        near = ((ranges > 5) & (ranges < 20)).sum() / 15.0
        far = ((ranges > 40) & (ranges < 55)).sum() / 15.0
        assert near > 2 * far

    def test_objects_create_local_clusters(self, kitti_sweep):
        # Points inside a GT box should be denser than the global average.
        box = max(
            kitti_sweep.boxes,
            key=lambda b: -np.linalg.norm(np.asarray(b.center[:2])),
        )
        inside = box.contains_bev(kitti_sweep.points[:, :2])
        if inside.sum() == 0:
            return  # fully occluded object: acceptable
        box_area = box.size[0] * box.size[1]
        grid_area = 69.12 * 79.36
        global_density = len(kitti_sweep) / grid_area
        assert inside.sum() / box_area > global_density


class TestNuscenesConfig:
    def test_360_fov_covers_rear(self):
        sweep = SceneGenerator(nuscenes_scene_config(), seed=2).generate()
        assert (sweep.points[:, 0] < -5).any()

    def test_occupancy_lower_than_kitti(self, kitti_batch):
        sweep = SceneGenerator(nuscenes_scene_config(), seed=2).generate()
        batch = voxelize(sweep, NUSCENES_GRID)
        assert batch.occupancy < 1.5 * kitti_batch.occupancy
