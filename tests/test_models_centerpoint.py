"""Mini-CenterPoint: heatmap targets, training, center decoding."""

import numpy as np
import pytest

from repro.data import MINI_GRID, SceneConfig, SceneGenerator, voxelize
from repro.models import (
    MiniCenterPoint,
    center_loss,
    decode_centers,
    evaluate_map,
    gaussian_heatmap_targets,
)
from repro.nn import Adam


@pytest.fixture(scope="module")
def cp_setup():
    config = SceneConfig(grid=MINI_GRID, num_objects=(2, 4),
                         azimuth_resolution=0.5, class_mix={"car": 1.0})
    scenes = SceneGenerator(config, seed=21).generate_batch(6)
    batches = [
        (voxelize(scene, MINI_GRID),
         gaussian_heatmap_targets(scene.boxes, MINI_GRID))
        for scene in scenes
    ]
    return scenes, batches


class TestHeatmapTargets:
    def test_peak_at_center_is_one(self, cp_setup):
        scenes, batches = cp_setup
        heatmap = batches[0][1].objectness[0, 0]
        assert heatmap.max() == pytest.approx(1.0)

    def test_gaussian_decays_smoothly(self, cp_setup):
        scenes, batches = cp_setup
        heatmap = batches[0][1].objectness[0, 0]
        row, col = np.unravel_index(heatmap.argmax(), heatmap.shape)
        if 0 < row < heatmap.shape[0] - 1:
            neighbour = heatmap[row + 1, col]
            assert 0.0 < neighbour < 1.0

    def test_values_bounded(self, cp_setup):
        _, batches = cp_setup
        for _, targets in batches:
            assert targets.objectness.min() >= 0.0
            assert targets.objectness.max() <= 1.0


class TestMiniCenterPoint:
    def test_forward_shape(self, cp_setup):
        _, batches = cp_setup
        model = MiniCenterPoint(seed=0).eval()
        outputs = model(batches[0][0])
        assert outputs.shape == (1, 5, 16, 16)

    def test_training_reduces_loss(self, cp_setup):
        _, batches = cp_setup
        model = MiniCenterPoint(seed=0).train()
        optimizer = Adam(model.parameters(), lr=2e-3)

        def epoch():
            total = 0.0
            for batch, targets in batches:
                optimizer.zero_grad()
                outputs = model(batch)
                loss, grad = center_loss(outputs, targets)
                model.backward(grad)
                optimizer.step()
                total += loss
            return total / len(batches)

        first = epoch()
        for _ in range(4):
            last = epoch()
        assert last < first

    def test_decode_finds_local_maxima_only(self):
        outputs = np.full((1, 5, 8, 8), -10.0, dtype=np.float32)
        outputs[0, 1:] = 0.0
        outputs[0, 0, 3, 3] = 4.0   # peak
        outputs[0, 0, 3, 4] = 3.0   # shoulder, suppressed by 3x3 NMS
        detections = decode_centers(outputs, MINI_GRID)
        assert len(detections) == 1

    def test_decode_threshold(self):
        outputs = np.full((1, 5, 8, 8), -10.0, dtype=np.float32)
        assert decode_centers(outputs, MINI_GRID) == []

    def test_pruner_hook_present(self, cp_setup):
        _, batches = cp_setup
        model = MiniCenterPoint(seed=0).eval()
        model.pruner.enabled = True
        model.pruner.keep_ratio = 0.5
        model(batches[0][0])
        assert model.pruner.last_kept_fraction == pytest.approx(0.5,
                                                                abs=0.05)
