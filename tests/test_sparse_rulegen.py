"""Rule generation: every conv variant validated against dense references,
plus the monotonicity invariants the whole accelerator depends on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    ConvType,
    SparseTensor,
    build_rules,
    dense_conv2d_reference,
    dense_deconv2d_reference,
    init_conv_weight,
    sparse_conv,
    unflatten,
)

SHAPE = (26, 34)


def tensor_from_flat(flat, channels=6, seed=0):
    coords = unflatten(np.sort(np.asarray(flat, np.int64)), SHAPE)
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(len(coords), channels)).astype(np.float32)
    return SparseTensor(coords, features, SHAPE)


@st.composite
def sparse_tensors(draw):
    total = SHAPE[0] * SHAPE[1]
    count = draw(st.integers(min_value=1, max_value=80))
    flat = draw(st.lists(st.integers(0, total - 1), min_size=count,
                         max_size=count, unique=True))
    return tensor_from_flat(flat)


def restrict_to_active(dense, coords):
    mask = np.zeros(dense.shape[1:], bool)
    mask[coords[:, 0], coords[:, 1]] = True
    return dense * mask


class TestRuleInvariants:
    @pytest.mark.parametrize("conv_type,stride", [
        (ConvType.SPCONV, 1),
        (ConvType.SUBM, 1),
        (ConvType.SPCONV_P, 1),
        (ConvType.STRIDED, 2),
        (ConvType.STRIDED_SUBM, 2),
        (ConvType.DECONV, 2),
    ])
    def test_indices_monotone_ascending(self, conv_type, stride):
        tensor = tensor_from_flat(np.arange(0, 800, 13))
        rules = build_rules(tensor.coords, SHAPE, conv_type, stride=stride)
        for pair in rules.pairs:
            if len(pair) > 1:
                assert (np.diff(pair.in_idx) > 0).all()
                assert (np.diff(pair.out_idx) > 0).all()

    def test_center_offset_covers_all_inputs_for_subm(self):
        tensor = tensor_from_flat(np.arange(0, 500, 7))
        rules = build_rules(tensor.coords, SHAPE, ConvType.SUBM)
        center = rules.pairs[4]
        assert len(center) == tensor.num_active

    def test_iopr_one_for_subm(self):
        tensor = tensor_from_flat(np.arange(0, 500, 7))
        rules = build_rules(tensor.coords, SHAPE, ConvType.SUBM)
        assert rules.iopr == 1.0

    def test_iopr_at_most_one_for_strided_subm(self):
        tensor = tensor_from_flat(np.arange(0, 500, 7))
        rules = build_rules(tensor.coords, SHAPE, ConvType.STRIDED_SUBM,
                            stride=2)
        assert rules.iopr <= 1.0

    def test_deconv_pairs_cover_every_input_per_offset(self):
        tensor = tensor_from_flat(np.arange(0, 300, 11))
        rules = build_rules(tensor.coords, SHAPE, ConvType.DECONV, stride=2)
        assert len(rules.pairs) == 4
        for pair in rules.pairs:
            assert len(pair) == tensor.num_active

    def test_macs_counts_pairs_times_channels(self):
        tensor = tensor_from_flat(np.arange(0, 300, 11))
        rules = build_rules(tensor.coords, SHAPE, ConvType.SPCONV)
        assert rules.macs(8, 16) == rules.total_pairs * 128

    def test_empty_input(self):
        rules = build_rules(np.zeros((0, 2), np.int32), SHAPE, ConvType.SPCONV)
        assert rules.num_outputs == 0
        assert rules.total_pairs == 0
        assert len(rules.pairs) == 9

    def test_invalid_stride_combinations(self):
        coords = np.array([[1, 1]], np.int32)
        with pytest.raises(ValueError):
            build_rules(coords, SHAPE, ConvType.SPCONV, stride=2)
        with pytest.raises(ValueError):
            build_rules(coords, SHAPE, ConvType.SUBM, stride=2)
        with pytest.raises(ValueError):
            build_rules(coords, SHAPE, ConvType.STRIDED, stride=1)
        with pytest.raises(ValueError):
            build_rules(coords, SHAPE, ConvType.DECONV, stride=1)


class TestAgainstDenseReference:
    @given(sparse_tensors())
    @settings(max_examples=20, deadline=None)
    def test_spconv_matches_dense(self, tensor):
        weight = init_conv_weight(3, tensor.num_channels, 5)
        out, _ = sparse_conv(tensor, weight, ConvType.SPCONV)
        reference = dense_conv2d_reference(tensor.to_dense(), weight)
        np.testing.assert_allclose(out.to_dense(), reference, atol=1e-4)

    @given(sparse_tensors())
    @settings(max_examples=20, deadline=None)
    def test_subm_matches_dense_restricted(self, tensor):
        weight = init_conv_weight(3, tensor.num_channels, 5)
        out, _ = sparse_conv(tensor, weight, ConvType.SUBM)
        reference = restrict_to_active(
            dense_conv2d_reference(tensor.to_dense(), weight), tensor.coords
        )
        np.testing.assert_allclose(out.to_dense(), reference, atol=1e-4)

    @given(sparse_tensors())
    @settings(max_examples=20, deadline=None)
    def test_strided_matches_dense_restricted(self, tensor):
        weight = init_conv_weight(3, tensor.num_channels, 4)
        out, rules = sparse_conv(tensor, weight, ConvType.STRIDED, stride=2)
        reference = restrict_to_active(
            dense_conv2d_reference(tensor.to_dense(), weight, stride=2),
            out.coords,
        )
        np.testing.assert_allclose(out.to_dense(), reference, atol=1e-4)

    @given(sparse_tensors())
    @settings(max_examples=20, deadline=None)
    def test_deconv_matches_dense(self, tensor):
        weight = init_conv_weight(2, tensor.num_channels, 4)
        out, _ = sparse_conv(tensor, weight, ConvType.DECONV, stride=2)
        reference = dense_deconv2d_reference(tensor.to_dense(), weight, 2)
        np.testing.assert_allclose(out.to_dense(), reference, atol=1e-4)

    def test_spconv_p_rules_equal_spconv(self):
        tensor = tensor_from_flat(np.arange(0, 700, 9))
        rules_p = build_rules(tensor.coords, SHAPE, ConvType.SPCONV_P)
        rules_s = build_rules(tensor.coords, SHAPE, ConvType.SPCONV)
        np.testing.assert_array_equal(rules_p.out_coords, rules_s.out_coords)
        assert rules_p.total_pairs == rules_s.total_pairs
