"""`repro report`: figure tables recomputed against the result table,
HTML rendering, and the two-run diff mode."""

import json

import pytest

from repro import cli, report
from repro.engine import (
    ExperimentSpec,
    ExperimentTable,
    RunManifest,
    RunObserver,
    manifest_path_for,
)


def run_spec(**overrides):
    fields = dict(
        name="report-test",
        simulators=["spade-he", "dense-he", "stats"],
        models=["SPP3"],
        scenarios=[{"name": "m", "seed": 0}],
        backend="serial",
    )
    fields.update(overrides)
    spec = ExperimentSpec(**fields)
    runner = spec.build_runner()
    observer = RunObserver()
    table = runner.run(observer=observer)
    return runner, table, observer


@pytest.fixture(scope="module")
def run():
    return run_spec()


@pytest.fixture(scope="module")
def table(run):
    return run[1]


@pytest.fixture(scope="module")
def sink(run, tmp_path_factory):
    """A results.json + manifest pair on disk, as `repro run` leaves."""
    runner, table, observer = run
    root = tmp_path_factory.mktemp("sink")
    results = root / "results.json"
    table.to_json(results)
    manifest = RunManifest.collect(runner, table, observer=observer)
    manifest.write(manifest_path_for(results))
    return results


class TestBaseline:
    def test_prefers_a_dense_simulator(self, table):
        assert report.pick_baseline(table) == "DenseAcc.HE"

    def test_explicit_wins(self, table):
        assert report.pick_baseline(table, "SPADE.HE") == "SPADE.HE"

    def test_unknown_is_an_error(self, table):
        with pytest.raises(ValueError, match="not in this table"):
            report.pick_baseline(table, "dense-he")


class TestFigures:
    def test_speedup_matches_the_table(self, table):
        figure = report.fig_speedup(table)
        assert figure["baseline"] == "DenseAcc.HE"
        base = report._cell_metric(table, "latency_ms", "m", "SPP3",
                                   "DenseAcc.HE")
        by_sim = {row[2]: row for row in figure["rows"]}
        spade = by_sim["SPADE.HE"]
        latency = report._cell_metric(table, "latency_ms", "m", "SPP3",
                                      "SPADE.HE")
        assert spade[3] == pytest.approx(latency)
        assert spade[4] == pytest.approx(base / latency)
        assert spade[4] > 1     # the paper's headline direction

    def test_energy_matches_the_table(self, table):
        figure = report.fig_energy(table)
        for scenario, model, simulator, energy in figure["rows"]:
            assert energy == pytest.approx(report._cell_metric(
                table, "energy_mj", scenario, model, simulator))

    def test_workload_and_overhead_come_from_layer_aggregates(
            self, table):
        layers = {(e["model"], e["layer"]): e["fields"]
                  for e in report.layer_aggregates(table)}
        workload = report.fig_workload(table)
        assert workload is not None
        for row in workload["rows"]:
            assert (row[0], row[1]) in layers
        overhead = report.fig_overhead(table)
        assert overhead is not None
        for model, layer, mean, low, high in overhead["rows"]:
            stat = layers[(model, layer)]["overhead_fraction"]
            assert (mean, low, high) == (stat["mean"], stat["min"],
                                         stat["max"])
            assert low <= mean <= high

    def test_full_paper_figure_set(self, table):
        figures = report.build_figures(table)
        assert [figure["id"] for figure in figures] \
            == ["fig2", "fig5", "fig9", "fig10", "fig11"]

    def test_figures_lacking_data_are_omitted(self):
        # A stats-only table has no latency/energy columns to chart.
        table = run_spec(simulators=["stats"])[1]
        ids = [figure["id"] for figure in report.build_figures(table)]
        assert "fig9" not in ids and "fig10" not in ids


class TestHtml:
    def test_single_file_with_every_section(self, sink):
        html = report.build_report(sink, as_html=True)
        assert html.lstrip().startswith("<!DOCTYPE html>")
        for section_id in ("manifest", "results", "fig2", "fig5",
                           "fig9", "fig10", "fig11"):
            assert f'<table id="{section_id}"' in html
        assert "<script" not in html
        assert 'href="http' not in html     # self-contained

    def test_figure_cells_match_the_result_table(self, sink, table):
        html = report.build_report(sink, as_html=True)
        latency = report._cell_metric(table, "latency_ms", "m", "SPP3",
                                      "SPADE.HE")
        assert report._format_value(latency) in html

    def test_escapes_markup(self):
        rendered = report._html_table(
            ["<h>"], [("<b>&", 1.0)], table_id="x")
        assert "<b>" not in rendered and "&lt;b&gt;&amp;" in rendered

    def test_bar_column_scales_to_max(self):
        rendered = report._html_table(
            ["name", "value"], [("a", 2.0), ("b", 4.0)],
            table_id="fig9", bar_column=1)
        assert '--w:50.0%' in rendered and '--w:100.0%' in rendered


class TestText:
    def test_manifest_summary_and_figures(self, sink):
        text = report.build_report(sink)
        assert "run manifest" in text
        assert "spec hash" in text
        assert "Speedup over DenseAcc.HE" in text

    def test_without_a_manifest_says_so(self, tmp_path, table):
        results = tmp_path / "bare.json"
        table.to_json(results)
        text = report.build_report(results)
        assert "run manifest: none found" in text


class TestDiff:
    def test_identical_runs_have_zero_differences(self, sink):
        diff = report.diff_tables(report.load_table(sink),
                                  report.load_table(sink))
        assert diff["rows"] == []
        assert diff["matched"] == len(report.load_table(sink))

    def test_perturbed_metric_shows_ratio(self, table):
        records = table.to_records()
        target = next(r for r in records
                      if isinstance(r["latency_ms"], (int, float)))
        target["latency_ms"] *= 2
        other = ExperimentTable()
        for record in records:
            other.append_record(record)
        diff = report.diff_tables(table, other)
        changed = [row for row in diff["rows"]
                   if row[1] == "latency_ms"]
        assert len(changed) == 1
        assert changed[0][4] == pytest.approx(2.0)

    def test_missing_rows_are_reported_both_ways(self, table):
        shorter = ExperimentTable()
        for record in table.to_records()[:-1]:
            shorter.append_record(record)
        forward = report.diff_tables(table, shorter)
        assert ("present", "missing") in [
            (row[2], row[3]) for row in forward["rows"]]
        backward = report.diff_tables(shorter, table)
        assert ("missing", "present") in [
            (row[2], row[3]) for row in backward["rows"]]

    def test_manifest_diff_flags_changed_settings(self, run):
        runner, table, observer = run
        left = RunManifest.collect(runner, table, observer=observer)
        right = RunManifest.from_dict(
            json.loads(left.to_json()))
        right.backend = "dist"
        right.settings = dict(right.settings,
                              backend="dist", workers=7)
        diff = report.diff_manifests(left, right)
        fields = [row[0] for row in diff["rows"]]
        assert "backend" in fields
        assert "settings.workers" in fields
        assert "settings.cache_dir" not in fields


class TestCli:
    def test_report_end_to_end(self, sink, capsys):
        assert cli.main(["report", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out and "fig9" not in out

    def test_html_out_dir(self, sink, tmp_path, capsys):
        out_dir = tmp_path / "rendered"
        out_dir.mkdir()
        assert cli.main(["report", str(sink), "--html",
                         "--out", str(out_dir) + "/"]) == 0
        artifact = out_dir / (sink.stem + ".report.html")
        assert artifact.exists()
        assert '<table id="fig9"' in artifact.read_text()
        assert "wrote report to" in capsys.readouterr().err

    def test_diff_mode(self, sink, capsys):
        assert cli.main(["report", str(sink), "--diff",
                         str(sink)]) == 0
        out = capsys.readouterr().out
        assert "0 difference(s)" in out

    def test_unknown_baseline_exits_2(self, sink, capsys):
        assert cli.main(["report", str(sink),
                         "--baseline", "nope"]) == 2
        assert "not in this table" in capsys.readouterr().err

    def test_missing_results_exits_2(self, tmp_path, capsys):
        assert cli.main(["report",
                         str(tmp_path / "absent.json")]) == 2
