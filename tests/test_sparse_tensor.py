"""SparseTensor container tests."""

import numpy as np
import pytest

from repro.sparse import SparseTensor

SHAPE = (10, 12)


def make_tensor():
    coords = np.array([[0, 1], [2, 3], [5, 0], [9, 11]], np.int32)
    features = np.arange(8, dtype=np.float32).reshape(4, 2)
    return SparseTensor(coords, features, SHAPE)


class TestConstruction:
    def test_basic_properties(self):
        tensor = make_tensor()
        assert tensor.num_active == 4
        assert tensor.num_channels == 2
        assert tensor.density == pytest.approx(4 / 120)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SparseTensor(np.zeros((3, 2), np.int32), np.zeros((2, 4)), SHAPE)

    def test_rejects_unsorted_coords(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[5, 0], [0, 1]], np.int32),
                         np.zeros((2, 1)), SHAPE)

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[0, 0]], np.int32), np.zeros(3), SHAPE)


class TestDenseRoundtrip:
    def test_to_dense_places_features(self):
        tensor = make_tensor()
        dense = tensor.to_dense()
        assert dense.shape == (2, 10, 12)
        np.testing.assert_allclose(dense[:, 2, 3], [2.0, 3.0])

    def test_from_dense_roundtrip(self):
        tensor = make_tensor()
        # Feature row [0, 1] at (0,1) has a zero channel but nonzero max.
        recovered = SparseTensor.from_dense(tensor.to_dense())
        assert recovered.num_active == 4
        np.testing.assert_array_equal(recovered.coords, tensor.coords)
        np.testing.assert_allclose(recovered.features, tensor.features)

    def test_from_dense_drops_all_zero_vectors(self):
        dense = np.zeros((3, 4, 4), np.float32)
        dense[:, 1, 1] = [0.5, 0.0, 0.0]
        tensor = SparseTensor.from_dense(dense)
        assert tensor.num_active == 1

    def test_from_dense_threshold(self):
        dense = np.zeros((1, 4, 4), np.float32)
        dense[0, 0, 0] = 0.1
        dense[0, 1, 1] = 0.9
        tensor = SparseTensor.from_dense(dense, threshold=0.5)
        assert tensor.num_active == 1


class TestLookupSelect:
    def test_lookup_found_and_missing(self):
        tensor = make_tensor()
        result = tensor.lookup(np.array([[2, 3], [7, 7]], np.int32))
        assert result.tolist() == [1, -1]

    def test_select_preserves_order(self):
        tensor = make_tensor()
        sub = tensor.select(np.array([0, 2]))
        assert sub.num_active == 2
        np.testing.assert_array_equal(sub.coords,
                                      np.array([[0, 1], [5, 0]], np.int32))

    def test_zeros_like_coords(self):
        tensor = SparseTensor.zeros_like_coords(
            np.array([[1, 1]], np.int32), 5, SHAPE
        )
        assert tensor.features.shape == (1, 5)
        assert tensor.features.sum() == 0
