"""Analysis layer: traces, savings, IOPR, reports, trade-off studies."""

import numpy as np
import pytest

from repro.analysis import (
    compute_savings,
    dense_counterpart,
    feature_map_study,
    format_series,
    format_table,
    iopr_series,
    paper_vs_measured,
    trace_model,
)
from repro.models import build_model_spec
from repro.sparse import ConvType


@pytest.fixture(scope="module")
def spp_traces(kitti_batch):
    importance = kitti_batch.point_counts.astype(float)
    return {
        name: compute_savings(name, kitti_batch.coords, importance)
        for name in ("SPP1", "SPP2", "SPP3")
    }


class TestTraceModel:
    def test_one_trace_per_layer(self, kitti_batch):
        spec = build_model_spec("SPP1")
        trace = trace_model(spec, kitti_batch.coords)
        assert len(trace.layers) == spec.num_layers

    def test_savings_ordering_matches_paper(self, spp_traces):
        # Table I: SpConv < SpConv-P < SpConv-S savings.
        savings = {name: s for name, (_, _, s) in spp_traces.items()}
        assert savings["SPP1"] < savings["SPP2"] < savings["SPP3"]

    def test_savings_magnitudes_in_paper_band(self, spp_traces):
        # Paper range across all models: 36.3-89.2% savings.
        assert 0.25 < spp_traces["SPP1"][2] < 0.70
        assert 0.60 < spp_traces["SPP2"][2] < 0.88
        assert 0.80 < spp_traces["SPP3"][2] < 0.95

    def test_dense_trace_has_zero_savings(self, kitti_batch):
        _, dense_trace, _ = compute_savings("PP", kitti_batch.coords)
        assert dense_trace.savings_vs(dense_trace) == 0.0

    def test_gops_scale_sane(self, kitti_batch):
        model, dense, _ = compute_savings("SPP1", kitti_batch.coords)
        # Dense PP is tens of GOPs (paper: 46.43 on their config).
        assert 20 < dense.total_ops / 1e9 < 150
        assert model.total_ops < dense.total_ops

    def test_pruning_reduces_active_set(self, kitti_batch):
        spec = build_model_spec("SPP2")
        trace = trace_model(spec, kitti_batch.coords,
                            kitti_batch.point_counts.astype(float))
        stage_start = trace.layer("B1C1")
        assert stage_start.out_count_after_prune < stage_start.out_count

    def test_layer_lookup_raises_for_unknown(self, kitti_batch):
        trace = trace_model(build_model_spec("SPP1"), kitti_batch.coords)
        with pytest.raises(KeyError):
            trace.layer("nonexistent")


class TestIOPR:
    def test_spconv_iopr_starts_high_converges_to_one(self, spp_traces):
        # Paper Fig. 2(d): standard SpConv dilation IOPR starts well above
        # 1 and converges toward 1 as the active set densifies (checked on
        # the stride-1 layers; strided layers downsample, IOPR < 1).
        series = iopr_series(spp_traces["SPP1"][0])
        dilating = [(name, iopr) for name, iopr, _ in series
                    if name.startswith("B") and not name.endswith("C1")]
        first_iopr = dilating[0][1]
        last_iopr = dilating[-1][1]
        assert first_iopr > 1.1
        assert last_iopr < first_iopr
        assert last_iopr < 1.3

    def test_subm_iopr_is_one(self, spp_traces):
        # Paper Fig. 2(f): SpConv-S never dilates.
        series = iopr_series(spp_traces["SPP3"][0])
        for name, iopr, _ in series:
            if name.startswith("B") and "C1" not in name:
                assert iopr == pytest.approx(1.0)

    def test_spconv_p_iopr_rebounds_at_stage_starts(self, spp_traces):
        # Paper Fig. 2(e): pruning at stage starts makes room to dilate.
        series = {name: iopr for name, iopr, _ in
                  iopr_series(spp_traces["SPP2"][0])}
        assert series["B2C2"] > 1.0
        assert series["B3C2"] > 1.0


class TestCounterparts:
    def test_dense_counterpart_mapping(self):
        assert dense_counterpart("SPP2") == "PP"
        assert dense_counterpart("SCP3") == "CP"
        assert dense_counterpart("SPN") == "PN-Dense"


class TestReportFormatting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 0.125)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]

    def test_format_series(self):
        text = format_series("fig", [(1, 2.0)], "x", "y")
        assert "fig" in text

    def test_paper_vs_measured_ratio(self):
        text = paper_vs_measured("exp", [("row", 2.0, 1.0)])
        assert "0.5" in text


class TestFeatureMapStudy:
    def test_paper_shape_holds(self):
        # Fig. 13(b): SpConv-S under-fills the box; SpConv-P fills nearly
        # as much as SpConv with fewer active pillars.
        results = {r.variant: r for r in feature_map_study(seed=3)}
        assert results["SpConv-S"].box_fill_fraction < (
            results["SpConv"].box_fill_fraction
        )
        assert results["SpConv-P"].active_pillars < (
            results["SpConv"].active_pillars
        )
        assert results["SpConv-P"].box_fill_fraction > 0.8 * (
            results["SpConv-S"].box_fill_fraction
        )
