"""Registry layer: named factories, plugin registration, error shape."""

import pytest

from repro.engine import (
    BACKENDS,
    FRAME_PROVIDERS,
    SIMULATORS,
    ExperimentRunner,
    ExperimentSpec,
    Registry,
    Simulator,
    SimResult,
    TraceCache,
    UnknownNameError,
    build_simulator,
    register_backend,
    register_simulator,
    resolve_backend,
)


class TestRegistry:
    def test_register_get_create(self):
        registry = Registry("widget")
        registry.register("alpha", lambda: "made-alpha")
        assert "alpha" in registry
        assert "ALPHA" in registry            # case-insensitive
        assert registry.names() == ["alpha"]
        assert registry.create("Alpha") == "made-alpha"

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.register("beta")
        def make_beta():
            """Builds a beta widget."""
            return "beta!"

        assert registry.create("beta") == "beta!"
        assert registry.describe("beta") == "Builds a beta widget."

    def test_duplicate_rejected_unless_overwrite(self):
        registry = Registry("widget")
        registry.register("dup", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("dup", lambda: 2)
        registry.register("dup", lambda: 2, overwrite=True)
        assert registry.create("dup") == 2

    def test_unknown_name_lists_registered(self):
        registry = Registry("widget")
        registry.register("only", lambda: None)
        with pytest.raises(UnknownNameError) as err:
            registry.get("nope")
        message = str(err.value)
        assert "unknown widget 'nope'" in message
        assert "only" in message

    def test_unknown_is_both_value_and_key_error(self):
        registry = Registry("widget")
        with pytest.raises(ValueError):
            registry.get("x")
        with pytest.raises(KeyError):
            registry.get("x")

    def test_builtin_registries_populated(self):
        assert {"spade", "dense", "pointacc", "spconv2d", "platform",
                "stats"} <= set(SIMULATORS.names())
        assert {"serial", "thread", "process"} <= set(BACKENDS.names())
        assert "synthetic" in FRAME_PROVIDERS


class TestBuildSimulatorErrors:
    """Unknown/malformed spec strings raise ValueError listing names."""

    def test_unknown_family_lists_registered(self):
        with pytest.raises(ValueError) as err:
            build_simulator("warp-he")
        message = str(err.value)
        assert "unknown simulator 'warp'" in message
        for name in ("spade", "dense", "pointacc", "platform"):
            assert name in message

    def test_known_family_bad_config_lists_choices(self):
        with pytest.raises(ValueError, match=r"he.*le|le.*he"):
            build_simulator("spade-xl")
        with pytest.raises(ValueError, match="config token"):
            build_simulator("spade")

    def test_unknown_platform_lists_platforms(self):
        with pytest.raises(ValueError, match="a6000"):
            build_simulator("platform:TPU")
        with pytest.raises(ValueError, match="platform name"):
            build_simulator("platform:")

    def test_extra_args_on_zero_arg_family_is_value_error(self):
        # Regression: a factory signature mismatch must keep the spec
        # contract (ValueError), never leak a bare TypeError.
        with pytest.raises(ValueError, match="does not accept"):
            build_simulator("spconv2d-he")
        with pytest.raises(ValueError, match="stats"):
            build_simulator("stats-he")

    def test_non_string_and_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            build_simulator("")
        with pytest.raises(ValueError, match="non-empty string"):
            build_simulator(None)

    def test_errors_remain_key_errors_for_compat(self):
        with pytest.raises(KeyError):
            build_simulator("warp-he")
        with pytest.raises(KeyError):
            build_simulator("platform:TPU")
        with pytest.raises(KeyError):
            build_simulator("spade-xl")


class _EchoSim(Simulator):
    """Test double returning a constant row."""

    def __init__(self, name="Echo"):
        self.name = name

    def run(self, trace):
        return SimResult(simulator=self.name, model=trace.spec.name,
                         cycles=7)


class TestThirdPartyPlugins:
    """The point of the registry: plugins slot in without engine edits."""

    @pytest.fixture(autouse=True)
    def _cleanup(self):
        yield
        SIMULATORS.unregister("echo")
        BACKENDS.unregister("inline")

    def test_registered_simulator_works_everywhere(self):
        register_simulator("echo", lambda: _EchoSim())
        # ... in build_simulator,
        assert build_simulator("echo").name == "Echo"
        # ... in a declarative spec (validation accepts it),
        spec = ExperimentSpec(simulators=["echo"], models=["SPP3"])
        assert spec.to_dict()["simulators"] == ["echo"]
        # ... and in a live runner grid.
        runner = ExperimentRunner(simulators=["echo"], models=["SPP3"],
                                  cache=TraceCache())
        table = runner.run(parallel=False)
        assert table.get(simulator="Echo").cycles == 7

    def test_registered_backend_resolves(self):
        from repro.engine.backends import SerialBackend

        @register_backend("inline")
        class InlineBackend(SerialBackend):
            name = "inline"

        backend = resolve_backend("inline")
        assert backend.name == "inline"

    def test_unknown_backend_error_shape(self):
        with pytest.raises(KeyError, match="unknown backend"):
            resolve_backend("quantum")
        with pytest.raises(ValueError, match="serial"):
            resolve_backend("quantum")
