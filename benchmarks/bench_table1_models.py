"""Table I: model GOPs and computation savings, paper vs measured.

Regenerates the sparsity/computation columns of Table I on the synthetic
frames: average GOPs per frame and computation savings relative to the
dense counterpart, for all seven sparse models plus the dense baselines.
(The mAP columns are covered by bench_fig13a_accuracy_sparsity.py, which
runs the scaled-down accuracy pipeline.)

The sweep runs as a declarative engine grid — the registered ``"stats"``
workload simulator over every Table I model (the shape a
``repro run`` spec file carries, see ``examples/specs/table1_kitti.json``)
— so the GOPs/savings columns come out of an
:class:`~repro.engine.ExperimentTable` instead of hand-walked traces.
"""

from __future__ import annotations

from repro.analysis import dense_counterpart, format_table
from repro.models import TABLE1_MODELS, TABLE1_PAPER


def _table1_rows(make_runner):
    # Table I already lists every dense counterpart (PP, CP, PN-Dense).
    table = make_runner(["stats"], list(TABLE1_MODELS)).run()

    def gops(name):
        result = table.get(model=name, simulator="TraceStats")
        return result.extras["total_ops"] / 1e9

    rows = []
    for name in TABLE1_MODELS:
        measured = gops(name)
        dense = gops(dense_counterpart(name))
        savings = 1.0 - measured / dense if dense else 0.0
        paper = TABLE1_PAPER[name]
        rows.append(
            (
                name,
                paper.avg_gops,
                measured,
                paper.sparsity_pct,
                100.0 * savings,
            )
        )
    return rows


def test_table1_gops_and_sparsity(benchmark, make_runner):
    rows = benchmark.pedantic(_table1_rows, args=(make_runner,), rounds=1,
                              iterations=1)
    print()
    print(format_table(
        ["model", "paper GOPs", "measured GOPs", "paper savings %",
         "measured savings %"],
        rows,
        title="Table I - computation and sparsity (paper vs measured)",
    ))
    # Shape assertions: savings ordering within each family.
    savings = {row[0]: row[4] for row in rows}
    assert savings["SPP1"] < savings["SPP2"] < savings["SPP3"]
    assert savings["SCP1"] < savings["SCP2"] < savings["SCP3"]
    assert savings["PN"] < savings["SPN"]
