"""Fig. 9: SPADE speedup and energy savings vs server/edge platforms.

HE vs A6000 / 2080Ti / Jetson-NX on all seven sparse models; LE vs
Xeon / Jetson Nano.  Paper averages (HE): 3.5x / 4.1x / 28.8x speedup and
349.8x / 349.3x / 84.6x energy savings; overall ranges 1.1-77.6x speedup,
48.8-1117.8x energy savings.

The sweep is *declared*, not assembled: one
:class:`~repro.engine.ExperimentSpec` of registry spec strings
(``"spade-he"``, ``"platform:A6000"`` ...) — the exact grid shape a
``repro run`` spec file carries (see ``examples/specs/fig9_kitti.json``)
— materialized onto the session trace cache.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.baselines import HIGH_END_PLATFORMS, LOW_END_PLATFORMS
from repro.core import SPADE_HE, SPADE_LE
from repro.engine import ExperimentSpec
from repro.models import SPARSE_MODELS


def _compare(traces, config, platforms):
    spec = ExperimentSpec(
        name=f"fig9-{config.name.lower()}",
        simulators=[f"spade-{config.name.lower()}"]
        + [f"platform:{platform.name}" for platform in platforms],
        models=list(SPARSE_MODELS),
    )
    runner = spec.build_runner(
        trace_provider=lambda scenario, name: traces(name),
    )
    table = runner.run()
    spade_name = f"SPADE.{config.name}"
    rows = []
    for name in SPARSE_MODELS:
        spade = table.get(model=name, simulator=spade_name)
        row = [name, spade.latency_ms, spade.fps]
        for platform in platforms:
            result = table.get(model=name, simulator=platform.name)
            row.append(result.latency_ms / spade.latency_ms)
            row.append(result.energy_mj / spade.energy_mj)
        rows.append(tuple(row))
    return rows


def _headers(platforms):
    headers = ["model", "SPADE ms", "SPADE fps"]
    for platform in platforms:
        headers.append(f"spd vs {platform.name}")
        headers.append(f"E vs {platform.name}")
    return headers


def test_fig9_high_end(benchmark, traces):
    rows = benchmark.pedantic(_compare, args=(traces, SPADE_HE,
                                              HIGH_END_PLATFORMS),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        _headers(HIGH_END_PLATFORMS), rows,
        title="Fig 9 (left) - SPADE.HE vs high-end platforms (paper avg:"
              " 3.5x/4.1x/28.8x speedup, 349.8x/349.3x/84.6x energy)",
    ))
    speedups_a6000 = [row[3] for row in rows]
    energies_a6000 = [row[4] for row in rows]
    assert 1.5 < np.mean(speedups_a6000) < 12.0
    assert 80.0 < np.mean(energies_a6000) < 1200.0


def test_fig9_low_end(benchmark, traces):
    rows = benchmark.pedantic(_compare, args=(traces, SPADE_LE,
                                              LOW_END_PLATFORMS),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        _headers(LOW_END_PLATFORMS), rows,
        title="Fig 9 (right) - SPADE.LE vs low-end platforms",
    ))
    speedups = [row[3] for row in rows]
    assert all(speedup > 0.5 for speedup in speedups)
