"""Fig. 11: sources of SPADE's performance gain.

(a,b) latency breakdown of PP + SPP1-3 across platforms and SPADE (HE and
      LE) — paper shape: platforms drown in mapping, SPADE does not;
(c)   OPs savings vs achieved speedup per sparse-convolution type —
      paper: speedup aligns with OPs savings;
(d)   MXU utilization with / without dataflow optimization per conv type —
      paper: SpConv >90%; SpStConv/SpDeconv <70% without, ~90% with.

All three panels are engine grids; (d) reads the per-layer schedule
detail (overhead fraction) off the optimized / unoptimized SPADE rows.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import dense_counterpart, format_table
from repro.baselines import HIGH_END_PLATFORMS
from repro.core import SPADE_HE, SPADE_LE
from repro.engine import (
    DenseAccSimulator,
    ExperimentRunner,
    PlatformSim,
    SpadeSimulator,
)
from repro.models import SPARSE_MODELS

MODELS = ("PP", "SPP1", "SPP2", "SPP3")


def test_fig11ab_latency_breakdown(benchmark, traces):
    def run():
        runner = ExperimentRunner(
            simulators=[PlatformSim(platform)
                        for platform in HIGH_END_PLATFORMS]
            + [SpadeSimulator(SPADE_HE)],
            models=list(MODELS),
            trace_provider=lambda scenario, name: traces(name),
        )
        table = runner.run()
        rows = []
        for name in MODELS:
            for platform in HIGH_END_PLATFORMS:
                result = table.get(model=name, simulator=platform.name)
                phases = result.extras["phases"]
                rows.append((name, platform.name, phases["conv"],
                             phases["mapping"], phases["gather_scatter"],
                             result.latency_ms))
            spade = table.get(model=name, simulator="SPADE.HE")
            breakdown = spade.extras["breakdown"]
            to_ms = 1.0 / (SPADE_HE.clock_ghz * 1e6)
            rows.append((
                name, "SPADE.HE",
                (breakdown["mxu"] + breakdown["load_wgt"]) * to_ms,
                breakdown["rulegen"] * to_ms,
                (breakdown["gather_inp"] + breakdown["scatter_out"]
                 + breakdown["copy_psum"] + breakdown["gather_wgt"]) * to_ms,
                spade.latency_ms,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["model", "platform", "conv ms", "mapping ms", "data-move ms",
         "total ms"],
        rows,
        title="Fig 11(a) - latency breakdown, high-end (paper: SPADE"
              " spends minimal time on mapping)",
    ))
    spade_rows = [row for row in rows if row[1] == "SPADE.HE"]
    for row in spade_rows:
        assert row[3] < 0.25 * row[5]  # mapping is a small fraction


def test_fig11c_ops_savings_vs_speedup(benchmark, traces):
    def run():
        models = list(SPARSE_MODELS)
        models += sorted({dense_counterpart(name) for name in SPARSE_MODELS})
        runner = ExperimentRunner(
            simulators=[SpadeSimulator(SPADE_HE), SpadeSimulator(SPADE_LE),
                        DenseAccSimulator(SPADE_HE),
                        DenseAccSimulator(SPADE_LE)],
            models=models,
            trace_provider=lambda scenario, name: traces(name),
            # Only the cells the figure reads: SPADE on sparse models,
            # DenseAcc on their dense counterparts.
            cell_filter=lambda scenario, model, simulator: (
                (model in SPARSE_MODELS)
                == simulator.name.startswith("SPADE")
            ),
        )
        table = runner.run()
        rows = []
        for name in SPARSE_MODELS:
            savings = traces(name).savings_vs(traces(dense_counterpart(name)))
            for config in (SPADE_HE, SPADE_LE):
                spade = table.get(model=name,
                                  simulator=f"SPADE.{config.name}")
                dense = table.get(model=dense_counterpart(name),
                                  simulator=f"DenseAcc.{config.name}")
                speedup = dense.cycles / spade.cycles
                ops_ratio = 1.0 / (1.0 - savings)
                rows.append((config.name, name, ops_ratio, speedup,
                             speedup / ops_ratio))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["config", "model", "OPs-savings x", "speedup x", "alignment"],
        rows,
        title="Fig 11(c) - OPs savings vs speedup (paper: aligned)",
    ))
    alignments = [row[4] for row in rows]
    assert 0.5 < np.mean(alignments) < 1.3


def test_fig11d_mxu_utilization(benchmark, make_runner):
    def run():
        runner = make_runner(
            [SpadeSimulator(SPADE_HE, optimize=False, name="base"),
             SpadeSimulator(SPADE_HE, optimize=True, name="optimized")],
            ["SPP2"],
        )
        table = runner.run()
        layer_rows = {
            name: {
                row["name"]: row
                for row in table.get(simulator=name).per_layer
            }
            for name in ("base", "optimized")
        }
        conv_type_of = {
            "SpConv": "B2C2",
            "SpStConv": "B2C1",
            "SpDeconv": "D3",
        }
        rows = []
        for label, layer_name in conv_type_of.items():
            rows.append((
                label,
                100 * (1 - layer_rows["base"][layer_name]
                       ["overhead_fraction"]),
                100 * (1 - layer_rows["optimized"][layer_name]
                       ["overhead_fraction"]),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["conv type", "MXU busy % (no opt)", "MXU busy % (optimized)"],
        rows,
        title="Fig 11(d) - utilization from dataflow optimization (paper:"
              " SpConv >90%; strided/deconv <70% -> ~90%)",
    ))
    by_type = {row[0]: row for row in rows}
    assert by_type["SpConv"][1] > 75.0
    assert by_type["SpStConv"][2] > by_type["SpStConv"][1]
    assert by_type["SpDeconv"][2] > by_type["SpDeconv"][1]
