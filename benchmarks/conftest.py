"""Shared engine fixtures for the benchmark harness.

Every experiment runs on the same deterministic synthetic frames so
numbers are comparable across benches and across runs.  All frames and
traces are served by the unified engine — a
:class:`~repro.engine.FrameProvider` seeds and caches the scenes, a
session :class:`~repro.engine.TraceCache` dedupes rulegen by content,
and :func:`make_runner` wires benchmark grids straight onto the session
traces so no benchmark calls a simulator directly.

``--smoke`` (the CI bench job) thins the synthetic sweeps — coarser
azimuth sampling, fewer objects — so every benchmark still executes its
full grid in seconds; shape assertions that need full-density frames
are gated on the flag.
"""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.data.grids import GridSpec
from repro.engine import (
    ExperimentRunner,
    ExperimentSpec,
    FrameProvider,
    Scenario,
    TraceCache,
)
from repro.models import build_model_spec, grid_for
from repro.models.specs import LayerOp, LayerSpec, ModelSpec
from repro.sparse import ConvType
from repro.sparse.coords import unflatten


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="tiny frames and single repeats so the whole benchmark "
             "suite exercises in CI time",
    )


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


class BenchFrames(FrameProvider):
    """Session frame source; ``--smoke`` thins the synthetic sweeps."""

    def __init__(self, smoke: bool):
        super().__init__()
        self._smoke = smoke

    def _grid_and_config(self, model):
        grid, config = FrameProvider._grid_and_config(model)
        if self._smoke:
            config = replace(
                config,
                azimuth_resolution=5.0 * config.azimuth_resolution,
                num_objects=(2, 6),
            )
        return grid, config


#: Benchmark frame seeds, matching the pre-engine fixtures: one KITTI
#: frame (seed 0) for the SPP family, one nuScenes frame (seed 1) for
#: the SCP/PN family.
_KITTI_SCENARIO = Scenario("bench", seed=0)
_NUSCENES_SCENARIO = Scenario("bench", seed=1)


@pytest.fixture(scope="session")
def frame_provider(smoke) -> FrameProvider:
    return BenchFrames(smoke)


@pytest.fixture(scope="session")
def frame_for(frame_provider):
    def lookup(model_name):
        scenario = (
            _KITTI_SCENARIO
            if grid_for(model_name).name == "kitti"
            else _NUSCENES_SCENARIO
        )
        return frame_provider.frame_for(scenario, model_name)

    return lookup


@pytest.fixture(scope="session")
def trace_cache():
    """One content-keyed trace cache shared by the whole bench session."""
    return TraceCache()


@pytest.fixture(scope="session")
def traces(frame_for, trace_cache):
    """Geometric traces of every Table I model on its benchmark frame.

    Rulegen runs once per (model, frame) across every benchmark file in
    the session — the engine's :class:`TraceCache` dedupes by content.
    """

    def lookup(model_name):
        frame = frame_for(model_name)
        return trace_cache.get_trace(
            build_model_spec(model_name),
            frame.coords,
            frame.point_counts.astype(float),
        )

    return lookup


@pytest.fixture(scope="session")
def make_runner(traces):
    """Factory for engine grids fed by the session's cached traces.

    Grids are declared through :class:`ExperimentSpec` — the same
    declarative layer ``repro run`` executes — with the session trace
    provider injected as the runtime override a spec file cannot carry;
    remaining keyword arguments pass through to
    :meth:`ExperimentSpec.build_runner` (knob overrides, cell filters).
    """

    def build(simulators, models, **kwargs) -> ExperimentRunner:
        spec = ExperimentSpec(
            name="bench",
            simulators=list(simulators),
            models=list(models),
            scenarios=kwargs.pop("scenarios", None),
        )
        return spec.build_runner(
            trace_provider=lambda scenario, name: traces(name),
            **kwargs,
        )

    return build


# ---------------------------------------------------------------------------
# Micro-sweep plumbing (Figs. 2(b), 5(b), 6(c)): random uniform active
# masks at a swept pillar count, run through the engine like any frame.
# ---------------------------------------------------------------------------


def micro_model_spec(shape: tuple, channels: int = 64,
                     name: str = "micro-spconv") -> ModelSpec:
    """Single 3x3 SpConv layer on an abstract ``shape`` grid.

    The micro studies sweep substrate behaviour on one layer's rule
    stream; this spec is the minimal workload carrying it through the
    engine.
    """
    grid = GridSpec(
        name=f"{name}-{shape[0]}x{shape[1]}",
        x_range=(0.0, float(shape[1])),
        y_range=(0.0, float(shape[0])),
        z_range=(-3.0, 1.0),
        pillar_size=1.0,
    )
    assert grid.shape == tuple(shape)
    return ModelSpec(
        name=name,
        base="micro",
        grid=grid,
        pillar_channels=channels,
        layers=[
            LayerSpec("L1", LayerOp.SPARSE, channels, channels,
                      conv_type=ConvType.SPCONV),
        ],
    )


class UniformMaskFrames(FrameProvider):
    """Random uniform active masks, one count per scenario name.

    The scenario axis of a micro sweep is the active pillar count; each
    scenario's frame is a seeded uniform draw of that many cells.
    """

    def __init__(self, counts: dict, shape: tuple):
        super().__init__()
        self._counts = dict(counts)
        self._shape = tuple(shape)

    def frame_for(self, scenario, model, frame: int = 0):
        count = self._counts[scenario.name]
        rng = np.random.default_rng(scenario.seed + frame)
        total = self._shape[0] * self._shape[1]
        flat = np.sort(rng.choice(total, count, replace=False))
        coords = unflatten(flat, self._shape)
        return SimpleNamespace(
            coords=coords,
            point_counts=np.ones(len(coords)),
            num_active=len(coords),
        )


def micro_runner(simulators, shape: tuple, counts, channels: int = 64,
                 seed: int = 0) -> ExperimentRunner:
    """Engine grid sweeping active pillar counts on one micro layer."""
    labels = {f"p{count}": count for count in counts}
    spec = ExperimentSpec(
        name="micro",
        simulators=list(simulators),
        models=[micro_model_spec(shape, channels)],
        scenarios=[Scenario(label, seed=seed) for label in labels],
    )
    return spec.build_runner(
        frame_provider=UniformMaskFrames(labels, shape),
        cache=TraceCache(),
    )
