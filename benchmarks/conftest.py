"""Shared frame/trace fixtures for the benchmark harness.

Every experiment runs on the same deterministic synthetic frames so
numbers are comparable across benches and across runs.
"""

from __future__ import annotations

import pytest

from repro.data import (
    KITTI_GRID,
    KITTI_SCENE,
    NUSCENES_FINE_GRID,
    NUSCENES_GRID,
    SceneGenerator,
    nuscenes_scene_config,
    voxelize,
)
from repro.engine import TraceCache
from repro.models import TABLE1_MODELS, build_model_spec, grid_for


@pytest.fixture(scope="session")
def kitti_frame():
    sweep = SceneGenerator(KITTI_SCENE, seed=0).generate()
    return voxelize(sweep, KITTI_GRID)


@pytest.fixture(scope="session")
def nuscenes_frames():
    sweep = SceneGenerator(nuscenes_scene_config(), seed=1).generate()
    return {
        "coarse": voxelize(sweep, NUSCENES_GRID),
        "fine": voxelize(sweep, NUSCENES_FINE_GRID),
    }


@pytest.fixture(scope="session")
def frame_for(kitti_frame, nuscenes_frames):
    def lookup(model_name):
        grid = grid_for(model_name)
        if grid.name == "kitti":
            return kitti_frame
        if grid.name == "nuscenes-fine":
            return nuscenes_frames["fine"]
        return nuscenes_frames["coarse"]

    return lookup


@pytest.fixture(scope="session")
def trace_cache():
    """One content-keyed trace cache shared by the whole bench session."""
    return TraceCache()


@pytest.fixture(scope="session")
def traces(frame_for, trace_cache):
    """Geometric traces of every Table I model on its benchmark frame.

    Rulegen runs once per (model, frame) across every benchmark file in
    the session — the engine's :class:`TraceCache` dedupes by content.
    """

    def lookup(model_name):
        frame = frame_for(model_name)
        return trace_cache.get_trace(
            build_model_spec(model_name),
            frame.coords,
            frame.point_counts.astype(float),
        )

    return lookup
