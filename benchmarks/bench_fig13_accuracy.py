"""Fig. 13: dynamic-pruning ablation.

(a) accuracy vs sparsity with and without regularization + fine-tuning on
    the scaled-down detection task (paper shape: the regularized model
    holds accuracy flat much deeper into sparsity);
(b) stage-1 feature-map occupancy of a single car for SpConv / SpConv-S /
    SpConv-P (paper: SpConv-S fails to fill the GT box, SpConv
    over-dilates, SpConv-P balances).
"""

from __future__ import annotations

from repro.analysis import (
    accuracy_sparsity_sweep,
    feature_map_study,
    format_table,
)


def test_fig13a_accuracy_sparsity_tradeoff(benchmark, smoke):
    keep_ratios = (1.0, 0.25) if smoke else (1.0, 0.6, 0.4, 0.25, 0.15)
    num_scenes = 4 if smoke else 10
    epochs = 2 if smoke else 4
    curves = benchmark.pedantic(
        lambda: accuracy_sparsity_sweep(
            keep_ratios=keep_ratios, num_scenes=num_scenes, epochs=epochs,
        ),
        rounds=1, iterations=1,
    )
    rows = []
    for curve in curves:
        for point in curve.points:
            rows.append((curve.label, f"{point.sparsity:.0%}", point.ap))
    print()
    print(format_table(
        ["training recipe", "pillar sparsity", "AP(BEV@0.3)"],
        rows,
        title="Fig 13(a) - accuracy vs sparsity (paper: regularized"
              " fine-tuning holds accuracy until deep sparsity)",
    ))
    if smoke:
        # The 2-epoch smoke budget only checks the pipeline executes.
        return
    regularized = {p.keep_ratio: p.ap for p in curves[0].points}
    plain = {p.keep_ratio: p.ap for p in curves[1].points}
    # Both recipes reach non-trivial accuracy unpruned (short training
    # budget; the paper's absolute mAP needs full KITTI training).
    assert regularized[1.0] > 0.08
    # At deep sparsity the regularized/fine-tuned model retains a larger
    # fraction of its unpruned accuracy than the plain model.
    reg_retention = regularized[0.25] / max(regularized[1.0], 1e-6)
    plain_retention = plain[0.25] / max(plain[1.0], 1e-6)
    assert reg_retention >= plain_retention - 0.05


def test_fig13b_feature_map_occupancy(benchmark):
    results = benchmark.pedantic(feature_map_study, rounds=1, iterations=1)
    rows = [
        (r.variant, r.active_pillars, r.box_fill_fraction,
         r.background_fraction)
        for r in results
    ]
    print()
    print(format_table(
        ["conv type", "active pillars", "GT-box fill", "background share"],
        rows,
        title="Fig 13(b) - single-object feature maps (paper: SpConv-S"
              " under-fills; SpConv-P fills the box without excess)",
    ))
    by_variant = {r.variant: r for r in results}
    assert (by_variant["SpConv-S"].box_fill_fraction
            < by_variant["SpConv"].box_fill_fraction)
    assert (by_variant["SpConv-P"].active_pillars
            < by_variant["SpConv"].active_pillars)
