"""Fig. 12: per-component energy savings of SPADE vs DenseAcc.

Paper shape: compute and SRAM savings track ops savings; DRAM savings lag
slightly (outputs still move for SpConv-S models); overall savings remain
strongly correlated with ops savings.

One engine grid produces every (model, accelerator, config) cell; the
per-component energies come from the unified result's
``extras["energy_breakdown"]``.
"""

from __future__ import annotations

from repro.analysis import dense_counterpart, format_table
from repro.core import SPADE_HE, SPADE_LE
from repro.engine import DenseAccSimulator, ExperimentRunner, SpadeSimulator
from repro.models import SPARSE_MODELS


def _rows(traces, table, config):
    rows = []
    for name in SPARSE_MODELS:
        ops_ratio = 1.0 / (
            1.0 - traces(name).savings_vs(traces(dense_counterpart(name)))
        )
        spade_energy = table.get(
            model=name, simulator=f"SPADE.{config.name}"
        ).extras["energy_breakdown"]
        dense_energy = table.get(
            model=dense_counterpart(name),
            simulator=f"DenseAcc.{config.name}",
        ).extras["energy_breakdown"]
        rows.append((
            config.name,
            name,
            ops_ratio,
            dense_energy.compute_pj / max(spade_energy.compute_pj, 1),
            dense_energy.sram_pj / max(spade_energy.sram_pj, 1),
            dense_energy.dram_pj / max(spade_energy.dram_pj, 1),
            dense_energy.total_pj / max(spade_energy.total_pj, 1),
        ))
    return rows


def test_fig12_energy_breakdown(benchmark, traces):
    def run():
        models = list(SPARSE_MODELS)
        models += sorted({dense_counterpart(name) for name in SPARSE_MODELS})
        runner = ExperimentRunner(
            simulators=[SpadeSimulator(SPADE_HE), SpadeSimulator(SPADE_LE),
                        DenseAccSimulator(SPADE_HE),
                        DenseAccSimulator(SPADE_LE)],
            models=models,
            trace_provider=lambda scenario, name: traces(name),
            # Only the cells the figure reads: SPADE on sparse models,
            # DenseAcc on their dense counterparts.
            cell_filter=lambda scenario, model, simulator: (
                (model in SPARSE_MODELS)
                == simulator.name.startswith("SPADE")
            ),
        )
        table = runner.run()
        return _rows(traces, table, SPADE_HE) + _rows(traces, table, SPADE_LE)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["config", "model", "ops x", "compute x", "SRAM x", "DRAM x",
         "total x"],
        rows,
        title="Fig 12 - energy savings breakdown (paper: compute/SRAM"
              " track ops; DRAM lags slightly)",
    ))
    for row in rows:
        ops_ratio, compute_ratio, dram_ratio = row[2], row[3], row[5]
        # Compute savings track ops savings tightly.
        assert 0.8 * ops_ratio < compute_ratio < 1.2 * ops_ratio
        # DRAM savings lag behind ops savings.
        assert dram_ratio < 1.15 * ops_ratio
