"""Fig. 12: per-component energy savings of SPADE vs DenseAcc.

Paper shape: compute and SRAM savings track ops savings; DRAM savings lag
slightly (outputs still move for SpConv-S models); overall savings remain
strongly correlated with ops savings.
"""

from __future__ import annotations

from repro.analysis import dense_counterpart, format_table
from repro.core import SPADE_HE, SPADE_LE, DenseAccelerator, SpadeAccelerator
from repro.models import SPARSE_MODELS


def _rows(traces, config):
    spade = SpadeAccelerator(config)
    dense = DenseAccelerator(config)
    rows = []
    for name in SPARSE_MODELS:
        trace = traces(name)
        dense_trace = traces(dense_counterpart(name))
        ops_ratio = 1.0 / (1.0 - trace.savings_vs(dense_trace))
        spade_energy = spade.run_trace(trace).energy
        dense_energy = dense.run_trace(dense_trace).energy
        rows.append((
            config.name,
            name,
            ops_ratio,
            dense_energy.compute_pj / max(spade_energy.compute_pj, 1),
            dense_energy.sram_pj / max(spade_energy.sram_pj, 1),
            dense_energy.dram_pj / max(spade_energy.dram_pj, 1),
            dense_energy.total_pj / max(spade_energy.total_pj, 1),
        ))
    return rows


def test_fig12_energy_breakdown(benchmark, traces):
    rows = benchmark.pedantic(
        lambda: _rows(traces, SPADE_HE) + _rows(traces, SPADE_LE),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["config", "model", "ops x", "compute x", "SRAM x", "DRAM x",
         "total x"],
        rows,
        title="Fig 12 - energy savings breakdown (paper: compute/SRAM"
              " track ops; DRAM lags slightly)",
    ))
    for row in rows:
        ops_ratio, compute_ratio, dram_ratio = row[2], row[3], row[5]
        # Compute savings track ops savings tightly.
        assert 0.8 * ops_ratio < compute_ratio < 1.2 * ops_ratio
        # DRAM savings lag behind ops savings.
        assert dram_ratio < 1.15 * ops_ratio
