"""Fig. 2(c): PP vs SPP latency breakdown on a GPU platform.

Paper shape: dense PP time is dominated by Conv2D matrix multiplication;
the SPP variants do not get faster despite the reduced convolution work,
because sparse-library mapping overhead takes over.

The sweep is one engine grid — the 2080Ti platform model over the four
models — fed by the session's cached traces.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import RTX_2080TI
from repro.engine import PlatformSim

MODELS = ("PP", "SPP1", "SPP2", "SPP3")


def _breakdowns(make_runner):
    runner = make_runner([PlatformSim(RTX_2080TI)], MODELS)
    table = runner.run()
    return {name: table.get(model=name) for name in MODELS}


def test_fig2c_gpu_latency_breakdown(benchmark, make_runner):
    results = benchmark.pedantic(_breakdowns, args=(make_runner,),
                                 rounds=1, iterations=1)
    rows = [
        (
            name,
            result.extras["phases"]["conv"],
            result.extras["phases"]["mapping"],
            result.extras["phases"]["gather_scatter"],
            result.extras["phases"]["overhead"],
            result.latency_ms,
        )
        for name, result in results.items()
    ]
    print()
    print(format_table(
        ["model", "conv ms", "mapping ms", "gather/scatter ms",
         "launch ms", "total ms"],
        rows,
        title="Fig 2(c) - latency breakdown on 2080Ti (paper: SPP does not"
              " beat PP)",
    ))
    dense_total = results["PP"].latency_ms
    # Sparse variants gain little to nothing on the GPU (paper's point).
    for name in ("SPP1", "SPP2"):
        assert results[name].latency_ms > 0.6 * dense_total
    assert (results["PP"].extras["phases"]["conv"]
            > results["PP"].extras["phases"]["mapping"])
