"""Figs. 14 and 15: SPADE vs the PointAcc performance simulator.

Fig. 14: normalized DRAM access volume on SPP2 (paper: PointAcc needs
~20% more accesses from cache misses).  Fig. 15: latency breakdown on
SPP1-3 with no dataflow overlap applied to either side (paper: SPADE
1.88-1.95x faster via reduced mapping and gather-scatter).

Both figures read one engine grid: the PointAcc adapter and the
no-overlap SPADE adapter over the SPP family, sharing the session's
cached traces.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import SPADE_HE
from repro.engine import PointAccSim, SpadeNoOverlapSim

MODELS = ("SPP1", "SPP2", "SPP3")

POINTACC = "PointAcc.HE"
SPADE = "SPADE.HE (no overlap)"


def _sweep(make_runner):
    runner = make_runner(
        [PointAccSim(SPADE_HE), SpadeNoOverlapSim(SPADE_HE)], MODELS,
    )
    return runner.run()


def test_fig14_dram_access_volume(benchmark, make_runner, traces, smoke):
    def run():
        table = _sweep(make_runner)
        pointacc = table.get(model="SPP2", simulator=POINTACC)
        spade = table.get(model="SPP2", simulator=SPADE)
        trace = traces("SPP2")
        layer_rows = []
        for pa_layer, trace_layer in zip(pointacc.per_layer, trace.layers):
            if trace_layer.rules is None:
                continue
            spec = trace_layer.spec
            spade_bytes = (
                trace_layer.rules.num_inputs * spec.in_channels
                + trace_layer.rules.num_outputs * spec.out_channels
            )
            layer_rows.append((pa_layer["name"], pa_layer["dram_bytes"],
                               spade_bytes,
                               pa_layer["dram_bytes"] / max(spade_bytes, 1)))
        return layer_rows, pointacc, spade

    layer_rows, pointacc, spade = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    print()
    print(format_table(
        ["layer", "PointAcc bytes", "SPADE bytes", "ratio"],
        layer_rows,
        title="Fig 14 - DRAM access volume on SPP2 (paper: PointAcc ~20%"
              " more on average)",
    ))
    total_ratio = pointacc.dram_bytes / spade.dram_bytes
    print(f"total DRAM ratio (PointAcc / SPADE): {total_ratio:.2f}")
    assert total_ratio >= 0.95
    if not smoke:
        sparse_ratios = [row[3] for row in layer_rows]
        assert max(sparse_ratios) > 1.0


def test_fig15_latency_vs_pointacc(benchmark, make_runner, smoke):
    def run():
        table = _sweep(make_runner)
        rows = []
        for name in MODELS:
            pointacc = table.get(model=name, simulator=POINTACC)
            spade = table.get(model=name, simulator=SPADE)
            pa_phases = pointacc.extras["phases"]
            spade_phases = spade.extras["phases"]
            rows.append((
                name,
                pa_phases["mapping"] / 1e6,
                pa_phases["gather_scatter"] / 1e6,
                pa_phases["mxu"] / 1e6,
                spade_phases["mapping"] / 1e6,
                spade_phases["gather_scatter"] / 1e6,
                spade_phases["mxu"] / 1e6,
                pointacc.cycles / spade.cycles,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["model", "PA map Mcyc", "PA g/s Mcyc", "PA mxu Mcyc",
         "SPADE map Mcyc", "SPADE g/s Mcyc", "SPADE mxu Mcyc", "speedup"],
        rows,
        title="Fig 15 - latency vs PointAcc (paper: 1.88-1.95x)",
    ))
    if not smoke:
        for row in rows:
            assert 1.3 < row[7] < 3.5
