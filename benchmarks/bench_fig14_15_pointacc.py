"""Figs. 14 and 15: SPADE vs the PointAcc performance simulator.

Fig. 14: normalized DRAM access volume on SPP2 (paper: PointAcc needs
~20% more accesses from cache misses).  Fig. 15: latency breakdown on
SPP1-3 with no dataflow overlap applied to either side (paper: SPADE
1.88-1.95x faster via reduced mapping and gather-scatter).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import PointAccSimulator, spade_no_overlap
from repro.core import SPADE_HE

MODELS = ("SPP1", "SPP2", "SPP3")


def test_fig14_dram_access_volume(benchmark, traces):
    def run():
        trace = traces("SPP2")
        pointacc = PointAccSimulator(SPADE_HE).run_trace(trace)
        spade = spade_no_overlap(trace, SPADE_HE)
        layer_rows = []
        for pa_layer, trace_layer in zip(pointacc.layers, trace.layers):
            if trace_layer.rules is None:
                continue
            spec = trace_layer.spec
            spade_bytes = (
                trace_layer.rules.num_inputs * spec.in_channels
                + trace_layer.rules.num_outputs * spec.out_channels
            )
            layer_rows.append((pa_layer.name, pa_layer.dram_bytes,
                               spade_bytes,
                               pa_layer.dram_bytes / max(spade_bytes, 1)))
        return layer_rows, pointacc, spade

    layer_rows, pointacc, spade = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    print()
    print(format_table(
        ["layer", "PointAcc bytes", "SPADE bytes", "ratio"],
        layer_rows,
        title="Fig 14 - DRAM access volume on SPP2 (paper: PointAcc ~20%"
              " more on average)",
    ))
    total_ratio = pointacc.total_dram_bytes / spade.dram_bytes
    print(f"total DRAM ratio (PointAcc / SPADE): {total_ratio:.2f}")
    assert total_ratio >= 0.95
    sparse_ratios = [row[3] for row in layer_rows]
    assert max(sparse_ratios) > 1.0


def test_fig15_latency_vs_pointacc(benchmark, traces):
    def run():
        rows = []
        for name in MODELS:
            trace = traces(name)
            pointacc = PointAccSimulator(SPADE_HE).run_trace(trace)
            spade = spade_no_overlap(trace, SPADE_HE)
            pa_phases = pointacc.phase_totals()
            spade_phases = spade.phase_totals()
            rows.append((
                name,
                pa_phases["mapping"] / 1e6,
                pa_phases["gather_scatter"] / 1e6,
                pa_phases["mxu"] / 1e6,
                spade_phases["mapping"] / 1e6,
                spade_phases["gather_scatter"] / 1e6,
                spade_phases["mxu"] / 1e6,
                pointacc.total_cycles / spade.total_cycles,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["model", "PA map Mcyc", "PA g/s Mcyc", "PA mxu Mcyc",
         "SPADE map Mcyc", "SPADE g/s Mcyc", "SPADE mxu Mcyc", "speedup"],
        rows,
        title="Fig 15 - latency vs PointAcc (paper: 1.88-1.95x)",
    ))
    for row in rows:
        assert 1.3 < row[7] < 3.5
