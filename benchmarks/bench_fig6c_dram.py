"""Fig. 6(c): DRAM latency — cache-based dataflow vs RGU+GSU vs ideal.

The cache-based baseline (hash mapping + 32 KB direct-mapped cache, 64 B
lines) fetches input pillar vectors in output-stationary rule order; the
GSU streams each active tile exactly once.  Paper result: RGU+GSU matches
the ideal all-reuse DRAM latency while the cache-based method falls
behind as the active pillar count grows.

The sweep runs through the unified engine: each pillar count is a
scenario, the three gather dataflows are the simulators, and every
dataflow consumes the same cached rule stream per count.
"""

from __future__ import annotations

from conftest import micro_runner

from repro.analysis import format_table
from repro.engine import GatherDramSim

PILLAR_COUNTS = (2_000, 5_000, 10_000, 20_000, 40_000)
SHAPE = (512, 512)
CHANNELS = 64

DATAFLOWS = ("cache", "stream", "ideal")


def _sweep(smoke):
    counts = PILLAR_COUNTS[:3] if smoke else PILLAR_COUNTS
    runner = micro_runner(
        [GatherDramSim(dataflow) for dataflow in DATAFLOWS],
        SHAPE, counts, channels=CHANNELS,
    )
    table = runner.run()
    rows = []
    for count in counts:
        scenario = f"p{count}"
        cache_cycles = table.get(scenario=scenario,
                                 simulator="Hash+Cache").cycles
        gsu_cycles = table.get(scenario=scenario,
                               simulator="RGU+GSU").cycles
        ideal_cycles = table.get(scenario=scenario,
                                 simulator="Ideal").cycles
        rows.append((count, cache_cycles, gsu_cycles, ideal_cycles,
                     cache_cycles / max(gsu_cycles, 1)))
    return rows


def test_fig6c_dram_latency(benchmark, smoke):
    rows = benchmark.pedantic(_sweep, args=(smoke,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["pillars", "hash+cache cycles", "RGU+GSU cycles", "ideal cycles",
         "cache/GSU"],
        rows,
        title="Fig 6(c) - DRAM latency (paper: GSU matches ideal; gap to"
              " cache widens with pillar count)",
    ))
    # GSU equals the ideal all-reuse latency by construction.
    for row in rows:
        assert row[2] == row[3]
    # Cache-based is strictly worse and the gap does not shrink.
    ratios = [row[4] for row in rows]
    assert all(ratio > 1.0 for ratio in ratios)
    assert ratios[-1] >= 0.8 * ratios[0]
