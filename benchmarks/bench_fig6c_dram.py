"""Fig. 6(c): DRAM latency — cache-based dataflow vs RGU+GSU vs ideal.

The cache-based baseline (hash mapping + 32 KB direct-mapped cache, 64 B
lines) fetches input pillar vectors in output-stationary rule order; the
GSU streams each active tile exactly once.  Paper result: RGU+GSU matches
the ideal all-reuse DRAM latency while the cache-based method falls
behind as the active pillar count grows.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.hw import DirectMappedCache, DRAMModel, streaming_trace
from repro.sparse import ConvType, build_rules, unflatten

PILLAR_COUNTS = (2_000, 5_000, 10_000, 20_000, 40_000)
SHAPE = (512, 512)
CHANNELS = 64
CACHE_BYTES = 32 * 1024
LINE = 64


def _cache_based_cycles(rules) -> int:
    """Input fetch DRAM cycles of the cache-based dataflow."""
    cache = DirectMappedCache(CACHE_BYTES, LINE)
    dram = DRAMModel()
    for pair in rules.pairs:
        if not len(pair):
            continue
        # Output-stationary visit order: inputs re-requested per offset.
        addresses = pair.in_idx * CHANNELS
        misses = cache.miss_addresses(addresses)
        dram.process_trace(misses)
    return dram.stats.cycles


def _streamed_cycles(num_inputs: int) -> int:
    """GSU gather: one sequential pass over the active inputs."""
    dram = DRAMModel()
    dram.process_trace(streaming_trace(num_inputs * CHANNELS))
    return dram.stats.cycles


def _sweep():
    rng = np.random.default_rng(0)
    rows = []
    for count in PILLAR_COUNTS:
        flat = np.sort(rng.choice(SHAPE[0] * SHAPE[1], count, replace=False))
        coords = unflatten(flat, SHAPE)
        rules = build_rules(coords, SHAPE, ConvType.SPCONV)
        cache_cycles = _cache_based_cycles(rules)
        gsu_cycles = _streamed_cycles(count)
        ideal_cycles = _streamed_cycles(count)
        rows.append((count, cache_cycles, gsu_cycles, ideal_cycles,
                     cache_cycles / max(gsu_cycles, 1)))
    return rows


def test_fig6c_dram_latency(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["pillars", "hash+cache cycles", "RGU+GSU cycles", "ideal cycles",
         "cache/GSU"],
        rows,
        title="Fig 6(c) - DRAM latency (paper: GSU matches ideal; gap to"
              " cache widens with pillar count)",
    ))
    # GSU equals the ideal all-reuse latency by construction.
    for row in rows:
        assert row[2] == row[3]
    # Cache-based is strictly worse and the gap does not shrink.
    ratios = [row[4] for row in rows]
    assert all(ratio > 1.0 for ratio in ratios)
    assert ratios[-1] >= 0.8 * ratios[0]
