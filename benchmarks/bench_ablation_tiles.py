"""Ablation: adaptive active-tile size T_a vs fixed small tiles.

DESIGN.md calls out the GSU's adaptive tile sizing as a design decision to
ablate: the GSU grows T_a to the largest tile whose output window fits
BUFout, amortizing weight loads.  This bench compares against fixed-T_a
variants (the kind of static tiling prior accelerators use) on the SPP2
backbone, plus a buffer-size sweep showing where the adaptivity stops
mattering.

The sweep is one engine grid: four SPADE configurations (shrinking
BUFin) as four named simulators over the cached SPP2 trace.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.core import SPADE_HE
from repro.engine import SpadeSimulator

VARIANTS = (
    ("adaptive Ta, 32KB BUFin (paper)", 32 * 1024),
    ("Ta capped by 8KB BUFin", 8 * 1024),
    ("Ta capped by 2KB BUFin", 2 * 1024),
    ("Ta capped by 512B BUFin", 512),
)


def _run(make_runner):
    runner = make_runner(
        [
            SpadeSimulator(replace(SPADE_HE, buf_in_bytes=buf_in),
                           name=label)
            for label, buf_in in VARIANTS
        ],
        ["SPP2"],
    )
    table = runner.run()
    rows = []
    for label, buf_in in VARIANTS:
        result = table.get(simulator=label)
        breakdown = result.extras["breakdown"]
        rows.append((
            label,
            result.latency_ms,
            100 * result.utilization,
            breakdown["load_wgt"] / 1e3,
            breakdown["copy_psum"] / 1e3,
        ))
    return rows


def test_ablation_active_tile_size(benchmark, make_runner):
    rows = benchmark.pedantic(_run, args=(make_runner,), rounds=1,
                              iterations=1)
    print()
    print(format_table(
        ["tiling", "latency ms", "utilization %", "load_wgt kcyc",
         "copy_psum kcyc"],
        rows,
        title="Ablation - adaptive T_a vs constrained tiles on SPP2"
              " (smaller tiles => more weight reloads and psum copies)",
    ))
    latencies = [row[1] for row in rows]
    load_cycles = [row[3] for row in rows]
    # Shrinking T_a monotonically hurts: more weight-load stalls, slower.
    assert latencies[0] <= latencies[1] <= latencies[3]
    assert load_cycles[0] < load_cycles[3]
