"""Fig. 10: hardware evaluation — accelerator comparison, area breakdown,
energy savings vs the ideal dense accelerator.

(a) SPADE vs DenseAcc vs PointAcc form-factor table (area, SRAM, peak and
    effective efficiency; paper: effective GOPS/W rises 4.6x/4.7x on SPP2);
(b) area breakdown (paper: sparse-support blocks are ~4.3% of SPADE.HE);
(c) energy savings vs DenseAcc across the sparse models (paper range
    1.5-12.6x, near-proportional to ops savings).

Simulator sweeps run through the unified engine grid; the area studies
(pure analytic, no trace) stay direct.
"""

from __future__ import annotations

from repro.analysis import dense_counterpart, format_table
from repro.core import (
    SPADE_HE,
    SPADE_LE,
    accelerator_area,
    pointacc_like_area,
    sram_kilobytes,
)
from repro.engine import DenseAccSimulator, ExperimentRunner, SpadeSimulator
from repro.models import SPARSE_MODELS

CONFIGS = (SPADE_HE, SPADE_LE)


def _spade_sparse_dense_dense(scenario, model, simulator):
    """Grid filter: SPADE simulates the sparse models, DenseAcc their
    dense counterparts — the only cells the figures read."""
    if simulator.name.startswith("SPADE"):
        return model in SPARSE_MODELS
    return model not in SPARSE_MODELS


def _sweep(traces, models):
    """One engine grid covering every (model, SPADE/DenseAcc x HE/LE)."""
    runner = ExperimentRunner(
        simulators=[SpadeSimulator(config) for config in CONFIGS]
        + [DenseAccSimulator(config) for config in CONFIGS],
        models=models,
        trace_provider=lambda scenario, name: traces(name),
        cell_filter=_spade_sparse_dense_dense,
    )
    return runner.run()


def _fig10a_rows(traces):
    table = _sweep(traces, ["SPP2", dense_counterpart("SPP2")])
    rows = []
    for config in CONFIGS:
        spade_area = accelerator_area(config, sparse_support=True)
        dense_area = accelerator_area(config, sparse_support=False)
        pointacc_area = pointacc_like_area(config)
        spade = table.get(model="SPP2", simulator=f"SPADE.{config.name}")
        dense = table.get(model=dense_counterpart("SPP2"),
                          simulator=f"DenseAcc.{config.name}")
        peak_gops = config.peak_tops * 1000
        # Effective GOPS/W counts *dense-equivalent* work delivered: both
        # accelerators produce the same detection output; SPADE just
        # skips the zero pillars (the paper's effective-efficiency
        # metric, +4.6x/+4.7x on SPP2).
        dense_equivalent_gops = 2 * dense.extras["total_macs"] / 1e9
        spade_eff = dense_equivalent_gops / (spade.energy_mj / 1e3)
        dense_eff = dense_equivalent_gops / (dense.energy_mj / 1e3)
        rows.append((
            f"SPADE.{config.name}", spade_area.total_mm2,
            sram_kilobytes(config), peak_gops / spade_area.total_mm2,
            spade_eff / dense_eff,
        ))
        rows.append((
            f"DenseAcc.{config.name}", dense_area.total_mm2,
            sram_kilobytes(config, sparse_support=False),
            peak_gops / dense_area.total_mm2, 1.0,
        ))
        rows.append((
            f"PointAcc-like.{config.name}", pointacc_area.total_mm2,
            (768 + config.buf_wgt_bytes // 1024 + 128),
            peak_gops / pointacc_area.total_mm2, float("nan"),
        ))
    return rows


def test_fig10a_accelerator_comparison(benchmark, traces):
    rows = benchmark.pedantic(_fig10a_rows, args=(traces,), rounds=1,
                              iterations=1)
    print()
    print(format_table(
        ["accelerator", "area mm2", "SRAM KB", "peak GOPS/mm2",
         "eff GOPS/W vs dense (SPP2)"],
        rows,
        title="Fig 10(a) - accelerator comparison (paper: SPADE smaller"
              " than PointAcc; effective GOPS/W x4.6 on SPP2)",
    ))
    by_name = {row[0]: row for row in rows}
    assert by_name["SPADE.HE"][1] < by_name["PointAcc-like.HE"][1]
    assert by_name["SPADE.HE"][4] > 2.0


def test_fig10b_area_breakdown(benchmark):
    def run():
        rows = []
        for config in CONFIGS:
            area = accelerator_area(config, sparse_support=True)
            sparse_fraction = area.fraction("rgu", "gsu", "sfu",
                                            "rule_buffer")
            for component, value in area.components.items():
                rows.append((config.name, component, value,
                             100 * value / sum(area.components.values())))
            rows.append((config.name, "TOTAL (+ctrl)", area.total_mm2,
                         100.0))
            rows.append((config.name, "sparse-support share", float("nan"),
                         100 * sparse_fraction))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["config", "component", "mm2", "% of total"],
        rows,
        title="Fig 10(b) - area breakdown (paper: extra hardware 4.3% of"
              " SPADE.HE, larger share on LE)",
    ))
    he_fraction = accelerator_area(SPADE_HE).fraction(
        "rgu", "gsu", "sfu", "rule_buffer"
    )
    le_fraction = accelerator_area(SPADE_LE).fraction(
        "rgu", "gsu", "sfu", "rule_buffer"
    )
    assert he_fraction < 0.12
    assert le_fraction > he_fraction


def test_fig10c_energy_savings_vs_dense(benchmark, traces):
    def run():
        models = list(SPARSE_MODELS)
        models += sorted({dense_counterpart(name) for name in SPARSE_MODELS})
        table = _sweep(traces, models)
        rows = []
        for config in CONFIGS:
            for name in SPARSE_MODELS:
                trace = traces(name)
                dense_trace = traces(dense_counterpart(name))
                savings = trace.savings_vs(dense_trace)
                spade_mj = table.get(
                    model=name, simulator=f"SPADE.{config.name}"
                ).energy_mj
                dense_mj = table.get(
                    model=dense_counterpart(name),
                    simulator=f"DenseAcc.{config.name}",
                ).energy_mj
                rows.append((
                    config.name, name, 100 * savings,
                    dense_mj / spade_mj, 1.0 / (1.0 - savings),
                ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["config", "model", "ops savings %", "energy savings x",
         "proportional x"],
        rows,
        title="Fig 10(c) - energy savings vs DenseAcc (paper: 1.5-12.6x,"
              " near-proportional scaling)",
    ))
    for row in rows:
        assert 0.4 * row[4] < row[3] < 1.6 * row[4]
