"""Fig. 2(d-f): per-layer IOPR and sparsity of SPP1 / SPP2 / SPP3.

Paper shape: SpConv (SPP1) dilation IOPR decays toward 1 as density
saturates; SpConv-P (SPP2) rebounds after every stage-start pruning;
SpConv-S (SPP3) holds IOPR = 1 on all submanifold layers.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, iopr_series

MODELS = ("SPP1", "SPP2", "SPP3")


def _series(traces):
    return {name: iopr_series(traces(name)) for name in MODELS}


def test_fig2def_iopr_series(benchmark, traces):
    series = benchmark.pedantic(_series, args=(traces,), rounds=1,
                                iterations=1)
    for name in MODELS:
        rows = [
            (layer, iopr, 1.0 - density)
            for layer, iopr, density in series[name]
            if layer.startswith("B")
        ]
        print()
        print(format_table(
            ["layer", "IOPR", "sparsity"],
            rows,
            title=f"Fig 2({'def'[MODELS.index(name)]}) - {name}",
        ))

    spp1 = {layer: iopr for layer, iopr, _ in series["SPP1"]}
    spp2 = {layer: iopr for layer, iopr, _ in series["SPP2"]}
    spp3 = {layer: iopr for layer, iopr, _ in series["SPP3"]}
    # SPP1: dilation decays across each stage.
    assert spp1["B2C2"] >= spp1["B2C6"]
    # SPP2: pruning at stage starts restores room to dilate.
    assert spp2["B2C2"] > spp1["B2C6"] * 0.9
    # SPP3: submanifold layers never dilate.
    assert spp3["B2C2"] == pytest.approx(1.0)
    assert spp3["B3C4"] == pytest.approx(1.0)
