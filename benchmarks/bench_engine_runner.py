"""Engine performance: naive vs cached sweeps, backends, batching, tracing.

Times the same scenarios x models x simulators grid several ways —

* **naive**: the pre-engine world — every (scenario, model, simulator)
  cell re-traces the model (rulegen included) before simulating, the
  way the benchmark files looped before the engine existed;
* **cold / cached / parallel**: fresh-cache serial run, warm-cache
  serial re-run, warm-cache thread fan-out (the PR-1 trajectory);
* **trace split**: the cold sweep separated into its trace stage
  (rulegen, the hot path) and its simulate stage;
* **backends**: a cold multi-scenario sweep through each execution
  backend — serial, thread, process — each from its own fresh cache;
* **batching**: one batched scenario carrying N seeded frames vs N
  single-frame scenarios — identical numbers, one rulegen pass.
  Variants alternate over two cold rounds and each run releases its
  heavyweight state (trace cache, legacy ``raw`` results) before the
  next is timed, so neither variant is measured under memory pressure
  the other escaped — the asymmetry behind the old 2.72 s vs 2.24 s
  "batching regression";
* **rulegen scaling**: legacy per-offset vs fused vs row-sharded rule
  generation on a nuScenes-scale frame (the trace-layer speedup at the
  heart of this engine's perf trajectory);
* **delta trace**: the same batched scenario traced with full rulegen
  per frame vs delta-patched sequential chains — bit-identical rules
  (asserted pairwise), cold rounds alternating like the batching
  sweep, ``speedup_delta_vs_full`` gated by ``check_regression.py``;
* **columnar export**: ``to_csv`` straight off the table's struct
  arrays vs the legacy per-row object walk on a sweep-sized synthetic
  table (identical bytes asserted);
* **telemetry overhead**: the cold sweep with span tracing on vs off
  (alternating cold rounds, min per variant) — the full price of
  ``--trace-out``, capped at 5% by ``check_regression.py``;
* **disk cache**: only when ``REPRO_TRACE_CACHE_DIR`` is set — a cold
  run populating the persistent tier, then a second fresh-cache run
  that must serve every trace from disk (the CI bench-smoke job asserts
  this round trip);
* **dist**: the same grid through the distributed backend with two
  loopback workers — parity is asserted against the serial table and
  the coordinator/protocol overhead is recorded (on a 1-CPU runner
  dist ≈ serial + round trips; real wins need real machines).

and writes the timings as JSON so the perf trajectory of the engine is
tracked across PRs (``check_regression.py`` gates CI on it).

Run directly:  PYTHONPATH=src python benchmarks/bench_engine_runner.py
               (add --smoke for the tiny CI grid)
or via pytest: PYTHONPATH=src python -m pytest benchmarks/bench_engine_runner.py
"""

from __future__ import annotations

import csv
import gc
import io
import json
import os
import socket
import sys
import threading
import time
from pathlib import Path

# The naive sweep deliberately bypasses the engine: it reproduces the
# pre-engine re-trace-per-cell loop as the measured baseline.
from repro.analysis import trace_model
from repro.engine import (
    CACHE_DIR_ENV_VAR,
    RESULT_COLUMNS,
    DistBackend,
    ExperimentRunner,
    ExperimentSpec,
    ExperimentTable,
    FrameProvider,
    Scenario,
    TraceCache,
    Worker,
)
from repro.models import build_model_spec, grid_for
from repro.sparse import (
    ConvType,
    build_rules,
    build_rules_reference,
    build_rules_sharded,
)

SIMULATORS = ("spade-he", "spade-le", "dense-he", "pointacc-he")
MODELS = ("SPP1", "SPP2", "SPP3")
SCENARIOS = (Scenario("drive-0", seed=0), Scenario("drive-1", seed=1))

SMOKE_SIMULATORS = ("spade-he", "dense-he")
SMOKE_MODELS = ("SPP2", "SPP3")

BACKENDS = ("serial", "thread", "process")
DIST_WORKERS = 2
BATCH_FRAMES = 4
BATCH_ROUNDS = 2
SCALING_MODEL = "SCP1"          # nuScenes 512x512 grid
SCALING_SHARDS = 4
SCALING_REPEATS = 3
EXPORT_ROWS = 4000
EXPORT_ROUNDS = 3
DELTA_ROUNDS = 3
DELTA_FRAMES = 8
TELEMETRY_ROUNDS = 3

RESULTS_PATH = Path(__file__).parent / "results" / "engine_runner_timings.json"


def _grid(smoke: bool) -> dict:
    return {
        "simulators": list(SMOKE_SIMULATORS if smoke else SIMULATORS),
        "models": list(SMOKE_MODELS if smoke else MODELS),
        "scenarios": list(SCENARIOS),
    }


def _build_runner(grid: dict, **kwargs) -> ExperimentRunner:
    # The trajectory sweeps are measured memory-only: a populated
    # REPRO_TRACE_CACHE_DIR must not turn "cold" runs into disk-warm
    # ones (the dedicated disk sweep measures that tier explicitly).
    kwargs.setdefault("cache", TraceCache(disk_dir=None))
    return ExperimentRunner(
        simulators=list(grid["simulators"]),
        models=list(grid["models"]),
        scenarios=list(grid["scenarios"]),
        **kwargs,
    )


def _naive_sweep(runner: ExperimentRunner) -> float:
    """Time the pre-engine loop: re-trace per cell, no cache, no pool.

    Frames are reused (frame generation was session-scoped before the
    engine too); the per-simulator re-tracing — rulegen, the hot path —
    is what the engine eliminates.
    """
    start = time.perf_counter()
    for scenario in runner.scenarios:
        for name in runner.models:
            frame = runner.frame_provider.frame_for(scenario, name)
            for simulator in runner.simulators:
                trace = trace_model(
                    build_model_spec(name),
                    frame.coords,
                    frame.point_counts.astype(float),
                )
                simulator.run(trace)
    return time.perf_counter() - start


def _timed_run(runner: ExperimentRunner, **kwargs) -> tuple:
    start = time.perf_counter()
    table = runner.run(**kwargs)
    return table, time.perf_counter() - start


def _release_run_state(runner: ExperimentRunner, table) -> None:
    """Drop a finished run's heavyweight state before the next timing.

    The trace cache retains every per-layer rule array and each row's
    ``raw`` legacy object retains whole simulator results; keeping them
    alive puts the *next* timed run under allocator pressure the
    previous one escaped.
    """
    runner.cache.clear()
    for row in table:
        row.raw = None
    gc.collect()


def _trace_split(grid: dict) -> dict:
    """One cold sweep separated into trace and simulate stages."""
    runner = _build_runner(grid)
    jobs = [
        (group.scenario, group.model, frame)
        for group in runner.plan()
        for frame in range(group.scenario.frames)
    ]
    start = time.perf_counter()
    for job in jobs:
        runner.trace_for(*job)
    trace_s = time.perf_counter() - start
    table, simulate_s = _timed_run(runner, parallel=False)
    split = {
        "trace_s": trace_s,
        "simulate_s": simulate_s,
        "trace_fraction": trace_s / (trace_s + simulate_s),
    }
    _release_run_state(runner, table)
    return split


def _backend_sweeps(grid: dict) -> tuple:
    """Cold sweep per backend, each from a fresh cache; returns
    (timings dict, reference table) after asserting result parity."""
    timings = {}
    reference = None
    for backend in BACKENDS:
        runner = _build_runner(grid)
        table, elapsed = _timed_run(runner, backend=backend)
        timings[f"cold_{backend}_s"] = elapsed
        if reference is None:
            reference = table
        else:
            assert len(table) == len(reference)
            for left, right in zip(reference, table):
                assert left == right, f"{backend} backend changed the numbers"
        # SimResult equality excludes ``raw``, so the parity reference
        # can be kept light too.
        _release_run_state(runner, table)
    return timings, reference


def _batching_sweep(grid: dict) -> dict:
    """One batched scenario vs the same frames as single scenarios.

    The variants do identical work (same frames, same rulegen passes,
    same simulations), so they are measured fairly: cold each round,
    alternating order, heavyweight state released between timings, and
    the per-variant minimum over the rounds reported.
    """
    simulators = grid["simulators"]
    models = grid["models"]

    def build_single() -> ExperimentRunner:
        return ExperimentRunner(
            simulators=list(simulators), models=list(models),
            scenarios=[Scenario(f"frame-{index}", seed=index)
                       for index in range(BATCH_FRAMES)],
            cache=TraceCache(disk_dir=None),
        )

    def build_batched() -> ExperimentRunner:
        return ExperimentRunner(
            simulators=list(simulators), models=list(models),
            scenarios=[Scenario("batch", seed=0, frames=BATCH_FRAMES)],
            cache=TraceCache(disk_dir=None),
        )

    times = {"single": [], "batched": []}
    tables = {}
    for _ in range(BATCH_ROUNDS):
        for label, build in (("single", build_single),
                             ("batched", build_batched)):
            runner = build()
            table, elapsed = _timed_run(runner, parallel=False)
            times[label].append(elapsed)
            _release_run_state(runner, table)
            tables[label] = table

    single_table, batched_table = tables["single"], tables["batched"]
    for model in models:
        for index in range(BATCH_FRAMES):
            for simulator_name in single_table.simulators:
                left = single_table.get(scenario=f"frame-{index}",
                                        model=model,
                                        simulator=simulator_name)
                right = batched_table.get(scenario="batch", model=model,
                                          simulator=simulator_name,
                                          frame=index)
                assert left.cycles == right.cycles, (
                    "batched frames diverged from single-frame runs"
                )
    single_s = min(times["single"])
    batched_s = min(times["batched"])
    return {
        "frames": BATCH_FRAMES,
        "rounds": BATCH_ROUNDS,
        "unbatched_serial_s": single_s,
        "batched_serial_s": batched_s,
        "batched_vs_unbatched": batched_s / single_s,
    }


def _delta_trace_sweep(grid: dict) -> dict:
    """Full per-frame rulegen vs delta-patched sequential chains.

    Same measurement protocol as the batching sweep: both variants
    trace the identical batched scenario cold, alternate over the
    rounds, and report their per-variant minimum.  The chains from the
    last round are compared pair by pair — the delta path's contract is
    bit-identical rules, so any divergence fails the benchmark, not
    just the gate.
    """
    models = grid["models"]
    # Longer than the batching sweep's scenario: frame 0 is a full build
    # for both variants, so the steady-state patch rate only shows once
    # the sequence amortises it (real LiDAR sequences run hundreds of
    # frames; eight is enough to separate the variants).
    scenario = Scenario("delta", seed=0, frames=DELTA_FRAMES)
    # Frames are pre-built outside the timed region: scene synthesis is
    # byte-identical for both variants and would only dilute the traced
    # rulegen ratio under measurement noise.
    provider = FrameProvider()
    for model in models:
        for frame in range(DELTA_FRAMES):
            provider.frame_for(scenario, model, frame)

    def traced_chains(delta: bool) -> tuple:
        runner = ExperimentRunner(
            simulators=list(grid["simulators"]), models=list(models),
            scenarios=[scenario], cache=TraceCache(disk_dir=None),
            frame_provider=provider, delta_trace=delta,
        )
        start = time.perf_counter()
        chains = [runner.trace_chain(scenario, model)
                  for model in models]
        elapsed = time.perf_counter() - start
        runner.cache.clear()
        gc.collect()
        return chains, elapsed

    times = {"full": [], "delta": []}
    kept = {}
    for _ in range(DELTA_ROUNDS):
        for label, delta in (("full", False), ("delta", True)):
            kept[label], elapsed = traced_chains(delta)
            times[label].append(elapsed)
    for full_chain, delta_chain in zip(kept["full"], kept["delta"]):
        for full_trace, patched in zip(full_chain, delta_chain):
            for left, right in zip(full_trace.layers, patched.layers):
                if left.rules is None:
                    assert right.rules is None
                    continue
                for lp, rp in zip(left.rules.pairs, right.rules.pairs):
                    assert (lp.in_idx == rp.in_idx).all(), (
                        "delta trace diverged from full rulegen"
                    )
                    assert (lp.out_idx == rp.out_idx).all(), (
                        "delta trace diverged from full rulegen"
                    )
    full_s = min(times["full"])
    delta_s = min(times["delta"])
    return {
        "frames": DELTA_FRAMES,
        "rounds": DELTA_ROUNDS,
        "full_trace_s": full_s,
        "delta_trace_s": delta_s,
        "speedup_delta_vs_full": full_s / delta_s,
    }


def _columnar_export_sweep() -> dict:
    """``to_csv`` off the struct arrays vs the legacy per-row walk.

    The legacy variant is the pre-columnar export: materialize one
    ``SimResult`` per row and pull each column through ``getattr`` —
    exactly what ``to_csv`` used to do.  Identical bytes are asserted.
    """
    records = [
        {
            "scenario": f"scenario-{index % 8}",
            "model": f"SPP{index % 3 + 1}",
            "simulator": "spade-he",
            "frame": index % BATCH_FRAMES,
            "cycles": 1000 + index,
            "latency_ms": 0.25 * index,
            "fps": 30.0,
            "energy_mj": 1.5,
            "dram_bytes": 1 << 20,
            "utilization": 0.5,
        }
        for index in range(EXPORT_ROWS)
    ]

    def fresh_table() -> ExperimentTable:
        table = ExperimentTable()
        for record in records:
            table.append_record(record)
        return table

    def legacy_csv(table: ExperimentTable) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(RESULT_COLUMNS)
        for row in table.results:
            writer.writerow(
                "" if value is None else value
                for value in (getattr(row, column)
                              for column in RESULT_COLUMNS)
            )
        return buffer.getvalue()

    columnar_s = legacy_s = float("inf")
    for _ in range(EXPORT_ROUNDS):
        table = fresh_table()
        start = time.perf_counter()
        columnar = table.to_csv()
        columnar_s = min(columnar_s, time.perf_counter() - start)
        start = time.perf_counter()
        legacy = legacy_csv(table)
        legacy_s = min(legacy_s, time.perf_counter() - start)
        assert columnar == legacy, "columnar to_csv changed the bytes"
    return {
        "rows": EXPORT_ROWS,
        "rounds": EXPORT_ROUNDS,
        "columnar_to_csv_s": columnar_s,
        "list_to_csv_s": legacy_s,
        "speedup_columnar_vs_list": legacy_s / columnar_s,
    }


def _rulegen_scaling() -> dict:
    """Legacy vs fused vs sharded rulegen on a nuScenes-scale frame."""
    provider = FrameProvider()
    frame = provider.frame_for(Scenario("scaling", seed=0), SCALING_MODEL)
    shape = grid_for(SCALING_MODEL).shape
    coords = frame.coords

    variants = {
        "legacy": lambda conv: build_rules_reference(coords, shape, conv),
        "fused": lambda conv: build_rules(coords, shape, conv),
        "sharded": lambda conv: build_rules_sharded(
            coords, shape, conv, shards=SCALING_SHARDS
        ),
    }
    conv_types = (ConvType.SUBM, ConvType.SPCONV)
    timings = {}
    for name, builder in variants.items():
        best = float("inf")
        for _ in range(SCALING_REPEATS):
            start = time.perf_counter()
            for conv in conv_types:
                builder(conv)
            best = min(best, time.perf_counter() - start)
        timings[f"{name}_s"] = best
    return {
        "model": SCALING_MODEL,
        "grid": list(shape),
        "pillars": int(len(coords)),
        "conv_types": [conv.value for conv in conv_types],
        "shards": SCALING_SHARDS,
        **timings,
        "speedup_fused_vs_legacy": timings["legacy_s"] / timings["fused_s"],
        "speedup_sharded_vs_legacy": (
            timings["legacy_s"] / timings["sharded_s"]
        ),
    }


def _disk_cache_sweep(grid: dict) -> dict:
    """Persistent-tier round trip (only when the cache dir is set).

    A cold run populates the on-disk tier; a second run with a fresh
    in-memory cache must then serve every unique trace from disk.
    """
    if not os.environ.get(CACHE_DIR_ENV_VAR):
        return None
    cold = _build_runner(grid, cache=TraceCache())
    cold_table, cold_s = _timed_run(cold, parallel=False)
    cold_stats = cold.cache.stats()
    _release_run_state(cold, cold_table)

    warm = _build_runner(grid, cache=TraceCache())
    warm_table, warm_s = _timed_run(warm, parallel=False)
    warm_stats = warm.cache.stats()
    _release_run_state(warm, warm_table)
    return {
        "dir": os.environ[CACHE_DIR_ENV_VAR],
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_misses": cold_stats["misses"],
        "cold_disk_hits": cold_stats["disk_hits"],
        "warm_misses": warm_stats["misses"],
        "warm_disk_hits": warm_stats["disk_hits"],
    }


def _telemetry_overhead_sweep(grid: dict) -> dict:
    """The cold serial sweep with span tracing on vs off.

    Same measurement protocol as the batching sweep: variants alternate
    over the cold rounds, heavyweight state is released between
    timings, and each variant's minimum is reported.  The traced
    variant runs under an active :class:`SpanTracer` — every span
    site in trace/simulate/serialize/cache is live — so
    ``overhead_fraction`` is the full price of ``--trace-out``;
    ``check_regression.py`` caps it at 5%.
    """
    from repro.engine import telemetry

    times = {"off": [], "on": []}
    spans = 0
    for _ in range(TELEMETRY_ROUNDS):
        for label in ("off", "on"):
            runner = _build_runner(grid)
            tracer = (telemetry.SpanTracer(process="bench")
                      if label == "on" else None)
            with telemetry.tracing(tracer):
                table, elapsed = _timed_run(runner, parallel=False)
                table.to_csv()
            times[label].append(elapsed)
            if tracer is not None:
                spans = sum(tracer.counts().values())
            _release_run_state(runner, table)
    off_s = min(times["off"])
    on_s = min(times["on"])
    return {
        "rounds": TELEMETRY_ROUNDS,
        "spans_per_run": spans,
        "untraced_s": off_s,
        "traced_s": on_s,
        "overhead_fraction": on_s / off_s - 1.0,
    }


def _dist_sweep(grid: dict) -> dict:
    """The grid through the dist backend: 2 loopback workers, parity
    asserted against the serial table (in its JSON wire projection)."""
    spec = ExperimentSpec(
        name="bench-dist",
        simulators=list(grid["simulators"]),
        models=list(grid["models"]),
        scenarios=list(grid["scenarios"]),
    )
    serial_runner = spec.build_runner(cache=TraceCache(disk_dir=None))
    serial_table, serial_s = _timed_run(serial_runner, backend="serial")

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    for index in range(DIST_WORKERS):
        threading.Thread(
            target=Worker(("127.0.0.1", port),
                          worker_id=f"bench-{index}",
                          retry_seconds=60).run,
            daemon=True,
        ).start()
    dist_runner = spec.build_runner(cache=TraceCache(disk_dir=None))
    backend = DistBackend(port=port, start_timeout=60)
    dist_table, dist_s = _timed_run(dist_runner, backend=backend)

    expected = ExperimentTable.from_json(serial_table.to_json())
    assert len(dist_table) == len(expected)
    for left, right in zip(expected, dist_table):
        assert left == right, "dist backend changed the numbers"
    units = backend.last_coordinator.stats["units"]
    _release_run_state(serial_runner, serial_table)
    _release_run_state(dist_runner, dist_table)
    return {
        "workers": DIST_WORKERS,
        "units": units,
        "serial_s": serial_s,
        "dist_s": dist_s,
        "dist_vs_serial": dist_s / serial_s,
    }


def run_sweeps(smoke: bool = False) -> dict:
    """Execute every sweep and return the timing record."""
    grid = _grid(smoke)
    runner = _build_runner(grid)
    naive_s = _naive_sweep(runner)

    cold, cold_s = _timed_run(runner, parallel=False)
    cached, cached_s = _timed_run(runner, parallel=False)
    parallel, parallel_s = _timed_run(runner, parallel=True)

    assert len(cold) == len(cached) == len(parallel)
    for left, right in zip(cold, cached):
        assert left == right, "cached sweep changed the numbers"
    for left, right in zip(cold, parallel):
        assert left == right, "parallel sweep changed the numbers"
    trace_cache_stats = runner.cache.stats()
    # (scenario, model) label keys -> "scenario/model" for the JSON file.
    trace_cache_stats["by_label"] = {
        f"{scenario}/{model}": count
        for (scenario, model), count
        in sorted(trace_cache_stats["by_label"].items())
    }
    max_workers = runner.max_workers
    _release_run_state(runner, cached)
    for table in (cold, parallel):
        for row in table:
            row.raw = None

    trace_split = _trace_split(grid)
    backend_timings, _ = _backend_sweeps(grid)
    batch_timings = _batching_sweep(grid)
    delta_timings = _delta_trace_sweep(grid)
    columnar_export = _columnar_export_sweep()
    scaling = _rulegen_scaling()
    telemetry_overhead = _telemetry_overhead_sweep(grid)
    disk_cache = _disk_cache_sweep(grid)
    dist = _dist_sweep(grid)

    record = {
        "grid": {
            "scenarios": [scenario.name for scenario in grid["scenarios"]],
            "models": grid["models"],
            "simulators": grid["simulators"],
            "cells": len(cold),
            "smoke": smoke,
        },
        "naive_serial_s": naive_s,
        "cold_serial_s": cold_s,
        "cached_serial_s": cached_s,
        "cached_parallel_s": parallel_s,
        "speedup_cold_vs_naive": naive_s / cold_s,
        "speedup_cached_vs_naive": naive_s / cached_s,
        "speedup_parallel_vs_naive": naive_s / parallel_s,
        "speedup_batched_vs_unbatched": (
            batch_timings["unbatched_serial_s"]
            / batch_timings["batched_serial_s"]
        ),
        "speedup_fused_vs_legacy": scaling["speedup_fused_vs_legacy"],
        "speedup_delta_vs_full": delta_timings["speedup_delta_vs_full"],
        "trace_split": trace_split,
        "backends": backend_timings,
        "batching": batch_timings,
        "delta_trace": delta_timings,
        "columnar_export": columnar_export,
        "rulegen_scaling": scaling,
        "telemetry_overhead": telemetry_overhead,
        "dist": dist,
        "trace_cache": trace_cache_stats,
        "max_workers": max_workers,
        "cpus": os.cpu_count(),
    }
    if disk_cache is not None:
        record["disk_cache"] = disk_cache
    return record


def write_timings(timings: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(timings, indent=2) + "\n")
    return path


def check_sweeps(timings: dict) -> None:
    """The acceptance properties of the engine's perf trajectory."""
    # The cached (and cached+parallel) sweep must be measurably faster
    # than the naive pre-engine loop that re-runs rulegen per simulator.
    assert timings["cached_serial_s"] < timings["naive_serial_s"]
    assert timings["cached_parallel_s"] < timings["naive_serial_s"]
    assert timings["cold_serial_s"] < timings["naive_serial_s"]
    # Rulegen ran once per (scenario, model), not once per simulator.
    grid = timings["grid"]
    assert timings["trace_cache"]["misses"] == (
        len(grid["scenarios"]) * len(grid["models"])
    )
    # The split stages must both have been measured; their *ratios* are
    # protected by check_regression.py's 30%-threshold gate rather than
    # a zero-slack hard assert that would fail on runner noise (or on a
    # legitimate further rulegen speedup flipping the trace fraction).
    split = timings["trace_split"]
    assert split["trace_s"] > 0 and split["simulate_s"] > 0
    # Batched frames do identical work to the same frames as scenarios:
    # a large gap means the batched path itself regressed (the precise
    # ratio is gated against the baseline by check_regression.py).
    batching = timings["batching"]
    assert (batching["batched_serial_s"]
            < 1.25 * batching["unbatched_serial_s"])
    # Fused rulegen must beat the legacy per-offset loop at scale.
    assert timings["speedup_fused_vs_legacy"] > 1.0
    # Delta-patched chains must not lose to full per-frame rulegen
    # (their bit-identical parity is asserted inside the sweep itself).
    # The margin on paper-scale grids is real but small, so the hard
    # assert carries a noise floor; the strict >1 contract lives in the
    # committed baseline via check_regression.py's ratio gate.
    assert timings["speedup_delta_vs_full"] > 0.9
    # The columnar export must produce the legacy bytes (asserted in
    # the sweep) without being slower than the per-row object walk.
    export = timings["columnar_export"]
    assert export["columnar_to_csv_s"] < export["list_to_csv_s"]
    # The process pool must beat the serial backend on the cold sweep
    # whenever there is real parallel hardware to use.
    if (timings["cpus"] or 1) > 1:
        backends = timings["backends"]
        assert backends["cold_process_s"] < backends["cold_serial_s"]
    # Tracing must have been measured with live spans; the <5% overhead
    # cap itself is enforced by check_regression.py against the fresh
    # measurement (a hard cap, not a baseline ratio).
    overhead = timings["telemetry_overhead"]
    assert overhead["spans_per_run"] > 0
    assert overhead["untraced_s"] > 0 and overhead["traced_s"] > 0
    # The distributed backend covered the whole plan (parity with the
    # serial table is asserted inside the sweep itself).
    dist = timings["dist"]
    assert dist["units"] == len(grid["scenarios"]) * len(grid["models"])
    # With a persistent tier configured, the second run must serve every
    # unique trace from disk — the round trip the CI bench job asserts.
    disk = timings.get("disk_cache")
    if disk is not None:
        expected = len(grid["scenarios"]) * len(grid["models"])
        assert disk["warm_misses"] == 0, "second run re-traced"
        assert disk["warm_disk_hits"] == expected
        assert disk["cold_misses"] + disk["cold_disk_hits"] == expected


def test_engine_runner_perf(benchmark, smoke):
    timings = benchmark.pedantic(run_sweeps, args=(smoke,), rounds=1,
                                 iterations=1)
    write_timings(timings)
    print()
    print(json.dumps(timings, indent=2))
    check_sweeps(timings)


def main():
    smoke = "--smoke" in sys.argv[1:]
    timings = run_sweeps(smoke)
    path = write_timings(timings)
    print(json.dumps(timings, indent=2))
    check_sweeps(timings)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
