"""Engine performance: naive vs cold vs cached vs parallel sweeps.

Times the same scenarios x models x simulators grid four ways —

* **naive**: the pre-engine world — every (scenario, model, simulator)
  cell re-traces the model (rulegen included) before simulating, the
  way the benchmark files looped before the engine existed;
* **cold**: fresh trace cache, serial runner (tracing already deduped
  to once per (scenario, model) within the run);
* **cached serial**: same runner re-run, traces served from the cache;
* **cached parallel**: warm cache plus thread-pool fan-out;

and writes the timings as JSON so the perf trajectory of the engine is
tracked across PRs.

Run directly:  PYTHONPATH=src python benchmarks/bench_engine_runner.py
or via pytest: PYTHONPATH=src python -m pytest benchmarks/bench_engine_runner.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import trace_model
from repro.engine import ExperimentRunner, Scenario, TraceCache
from repro.models import build_model_spec

SIMULATORS = ("spade-he", "spade-le", "dense-he", "pointacc-he")
MODELS = ("SPP1", "SPP2", "SPP3")
SCENARIOS = (Scenario("drive-0", seed=0), Scenario("drive-1", seed=1))

RESULTS_PATH = Path(__file__).parent / "results" / "engine_runner_timings.json"


def _build_runner() -> ExperimentRunner:
    return ExperimentRunner(
        simulators=list(SIMULATORS),
        models=list(MODELS),
        scenarios=list(SCENARIOS),
        cache=TraceCache(),
    )


def _naive_sweep(runner: ExperimentRunner) -> float:
    """Time the pre-engine loop: re-trace per cell, no cache, no pool.

    Frames are reused (frame generation was session-scoped before the
    engine too); the per-simulator re-tracing — rulegen, the hot path —
    is what the engine eliminates.
    """
    start = time.perf_counter()
    for scenario in runner.scenarios:
        for name in runner.models:
            frame = runner.frame_provider.frame_for(scenario, name)
            for simulator in runner.simulators:
                trace = trace_model(
                    build_model_spec(name),
                    frame.coords,
                    frame.point_counts.astype(float),
                )
                simulator.run(trace)
    return time.perf_counter() - start


def run_sweeps() -> dict:
    """Execute the four sweeps and return the timing record."""
    runner = _build_runner()
    naive_s = _naive_sweep(runner)

    start = time.perf_counter()
    cold = runner.run(parallel=False)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    cached = runner.run(parallel=False)
    cached_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = runner.run(parallel=True)
    parallel_s = time.perf_counter() - start

    assert len(cold) == len(cached) == len(parallel)
    for left, right in zip(cold, cached):
        assert left == right, "cached sweep changed the numbers"
    for left, right in zip(cold, parallel):
        assert left == right, "parallel sweep changed the numbers"

    return {
        "grid": {
            "scenarios": [scenario.name for scenario in SCENARIOS],
            "models": list(MODELS),
            "simulators": list(SIMULATORS),
            "cells": len(cold),
        },
        "naive_serial_s": naive_s,
        "cold_serial_s": cold_s,
        "cached_serial_s": cached_s,
        "cached_parallel_s": parallel_s,
        "speedup_cold_vs_naive": naive_s / cold_s,
        "speedup_cached_vs_naive": naive_s / cached_s,
        "speedup_parallel_vs_naive": naive_s / parallel_s,
        "trace_cache": runner.cache.stats(),
        "max_workers": runner.max_workers,
    }


def write_timings(timings: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(timings, indent=2) + "\n")
    return path


def test_engine_runner_perf(benchmark):
    timings = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    write_timings(timings)
    print()
    print(json.dumps(timings, indent=2))
    # The acceptance property: the cached (and cached+parallel) sweep
    # must be measurably faster than the naive pre-engine loop that
    # re-runs rulegen per simulator (it is the hot path).
    assert timings["cached_serial_s"] < timings["naive_serial_s"]
    assert timings["cached_parallel_s"] < timings["naive_serial_s"]
    assert timings["cold_serial_s"] < timings["naive_serial_s"]
    # Rulegen ran once per (scenario, model), not once per simulator.
    assert timings["trace_cache"]["misses"] == len(SCENARIOS) * len(MODELS)


def main():
    timings = run_sweeps()
    path = write_timings(timings)
    print(json.dumps(timings, indent=2))
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
