"""Engine performance: naive vs cached sweeps, backends, frame batching.

Times the same scenarios x models x simulators grid several ways —

* **naive**: the pre-engine world — every (scenario, model, simulator)
  cell re-traces the model (rulegen included) before simulating, the
  way the benchmark files looped before the engine existed;
* **cold / cached / parallel**: fresh-cache serial run, warm-cache
  serial re-run, warm-cache thread fan-out (the PR-1 trajectory);
* **backends**: a cold multi-scenario sweep through each execution
  backend — serial, thread, process — each from its own fresh cache
  (process workers trace in their own address spaces);
* **batching**: one batched scenario carrying N seeded frames vs N
  single-frame scenarios — identical numbers, one rulegen pass.

and writes the timings as JSON so the perf trajectory of the engine is
tracked across PRs (``check_regression.py`` gates CI on it).

Run directly:  PYTHONPATH=src python benchmarks/bench_engine_runner.py
               (add --smoke for the tiny CI grid)
or via pytest: PYTHONPATH=src python -m pytest benchmarks/bench_engine_runner.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

# The naive sweep deliberately bypasses the engine: it reproduces the
# pre-engine re-trace-per-cell loop as the measured baseline.
from repro.analysis import trace_model
from repro.engine import ExperimentRunner, Scenario, TraceCache
from repro.models import build_model_spec

SIMULATORS = ("spade-he", "spade-le", "dense-he", "pointacc-he")
MODELS = ("SPP1", "SPP2", "SPP3")
SCENARIOS = (Scenario("drive-0", seed=0), Scenario("drive-1", seed=1))

SMOKE_SIMULATORS = ("spade-he", "dense-he")
SMOKE_MODELS = ("SPP2", "SPP3")

BACKENDS = ("serial", "thread", "process")
BATCH_FRAMES = 4

RESULTS_PATH = Path(__file__).parent / "results" / "engine_runner_timings.json"


def _grid(smoke: bool) -> dict:
    return {
        "simulators": list(SMOKE_SIMULATORS if smoke else SIMULATORS),
        "models": list(SMOKE_MODELS if smoke else MODELS),
        "scenarios": list(SCENARIOS),
    }


def _build_runner(grid: dict, **kwargs) -> ExperimentRunner:
    kwargs.setdefault("cache", TraceCache())
    return ExperimentRunner(
        simulators=list(grid["simulators"]),
        models=list(grid["models"]),
        scenarios=list(grid["scenarios"]),
        **kwargs,
    )


def _naive_sweep(runner: ExperimentRunner) -> float:
    """Time the pre-engine loop: re-trace per cell, no cache, no pool.

    Frames are reused (frame generation was session-scoped before the
    engine too); the per-simulator re-tracing — rulegen, the hot path —
    is what the engine eliminates.
    """
    start = time.perf_counter()
    for scenario in runner.scenarios:
        for name in runner.models:
            frame = runner.frame_provider.frame_for(scenario, name)
            for simulator in runner.simulators:
                trace = trace_model(
                    build_model_spec(name),
                    frame.coords,
                    frame.point_counts.astype(float),
                )
                simulator.run(trace)
    return time.perf_counter() - start


def _timed_run(runner: ExperimentRunner, **kwargs) -> tuple:
    start = time.perf_counter()
    table = runner.run(**kwargs)
    return table, time.perf_counter() - start


def _backend_sweeps(grid: dict) -> tuple:
    """Cold sweep per backend, each from a fresh cache; returns
    (timings dict, reference table) after asserting result parity."""
    timings = {}
    reference = None
    for backend in BACKENDS:
        runner = _build_runner(grid)
        table, elapsed = _timed_run(runner, backend=backend)
        timings[f"cold_{backend}_s"] = elapsed
        if reference is None:
            reference = table
        else:
            assert len(table) == len(reference)
            for left, right in zip(reference, table):
                assert left == right, f"{backend} backend changed the numbers"
    return timings, reference


def _batching_sweep(grid: dict) -> dict:
    """One batched scenario vs the same frames as single scenarios."""
    simulators = grid["simulators"]
    models = grid["models"]
    single = ExperimentRunner(
        simulators=list(simulators), models=list(models),
        scenarios=[Scenario(f"frame-{index}", seed=index)
                   for index in range(BATCH_FRAMES)],
        cache=TraceCache(),
    )
    single_table, single_s = _timed_run(single, parallel=False)

    batched = ExperimentRunner(
        simulators=list(simulators), models=list(models),
        scenarios=[Scenario("batch", seed=0, frames=BATCH_FRAMES)],
        cache=TraceCache(),
    )
    batched_table, batched_s = _timed_run(batched, parallel=False)
    for model in models:
        for index in range(BATCH_FRAMES):
            for simulator_name in single_table.simulators:
                left = single_table.get(scenario=f"frame-{index}",
                                        model=model,
                                        simulator=simulator_name)
                right = batched_table.get(scenario="batch", model=model,
                                          simulator=simulator_name,
                                          frame=index)
                assert left.cycles == right.cycles, (
                    "batched frames diverged from single-frame runs"
                )
    return {
        "frames": BATCH_FRAMES,
        "unbatched_serial_s": single_s,
        "batched_serial_s": batched_s,
    }


def run_sweeps(smoke: bool = False) -> dict:
    """Execute every sweep and return the timing record."""
    grid = _grid(smoke)
    runner = _build_runner(grid)
    naive_s = _naive_sweep(runner)

    cold, cold_s = _timed_run(runner, parallel=False)
    cached, cached_s = _timed_run(runner, parallel=False)
    parallel, parallel_s = _timed_run(runner, parallel=True)

    assert len(cold) == len(cached) == len(parallel)
    for left, right in zip(cold, cached):
        assert left == right, "cached sweep changed the numbers"
    for left, right in zip(cold, parallel):
        assert left == right, "parallel sweep changed the numbers"

    backend_timings, _ = _backend_sweeps(grid)
    batch_timings = _batching_sweep(grid)

    return {
        "grid": {
            "scenarios": [scenario.name for scenario in grid["scenarios"]],
            "models": grid["models"],
            "simulators": grid["simulators"],
            "cells": len(cold),
            "smoke": smoke,
        },
        "naive_serial_s": naive_s,
        "cold_serial_s": cold_s,
        "cached_serial_s": cached_s,
        "cached_parallel_s": parallel_s,
        "speedup_cold_vs_naive": naive_s / cold_s,
        "speedup_cached_vs_naive": naive_s / cached_s,
        "speedup_parallel_vs_naive": naive_s / parallel_s,
        "backends": backend_timings,
        "batching": batch_timings,
        "trace_cache": runner.cache.stats(),
        "max_workers": runner.max_workers,
        "cpus": os.cpu_count(),
    }


def write_timings(timings: dict, path: Path = RESULTS_PATH) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(timings, indent=2) + "\n")
    return path


def check_sweeps(timings: dict) -> None:
    """The acceptance properties of the engine's perf trajectory."""
    # The cached (and cached+parallel) sweep must be measurably faster
    # than the naive pre-engine loop that re-runs rulegen per simulator.
    assert timings["cached_serial_s"] < timings["naive_serial_s"]
    assert timings["cached_parallel_s"] < timings["naive_serial_s"]
    assert timings["cold_serial_s"] < timings["naive_serial_s"]
    # Rulegen ran once per (scenario, model), not once per simulator.
    grid = timings["grid"]
    assert timings["trace_cache"]["misses"] == (
        len(grid["scenarios"]) * len(grid["models"])
    )
    # Batched frames cost no more than the same frames as scenarios
    # (identical work, less planning), with generous timer slack.
    batching = timings["batching"]
    assert (batching["batched_serial_s"]
            < 1.5 * batching["unbatched_serial_s"])
    # The process pool must beat the serial backend on the cold sweep
    # whenever there is real parallel hardware to use.
    if (timings["cpus"] or 1) > 1:
        backends = timings["backends"]
        assert backends["cold_process_s"] < backends["cold_serial_s"]


def test_engine_runner_perf(benchmark, smoke):
    timings = benchmark.pedantic(run_sweeps, args=(smoke,), rounds=1,
                                 iterations=1)
    write_timings(timings)
    print()
    print(json.dumps(timings, indent=2))
    check_sweeps(timings)


def main():
    smoke = "--smoke" in sys.argv[1:]
    timings = run_sweeps(smoke)
    path = write_timings(timings)
    print(json.dumps(timings, indent=2))
    check_sweeps(timings)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
