"""Fig. 8(c): dataflow-optimization overhead reduction.

Left: weight grouping on the first SpStConv of SPP2 (paper: overhead
12.7% -> 6.3%).  Right: ganged scatter on the stride-4 SpDeconv of SPP2
(paper: 37.5% -> 14.1%, via 16x weight reuse).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import SPADE_HE, schedule_sparse_layer


def _spp2_layers(traces):
    trace = traces("SPP2")
    strided = trace.layer("B1C1")
    deconv = trace.layer("D3")
    return strided, deconv


def _run(traces):
    strided, deconv = _spp2_layers(traces)
    rows = []
    for label, layer, paper_before, paper_after in (
        ("weight grouping (B1C1 SpStConv)", strided, 12.7, 6.3),
        ("ganged scatter (D3 SpDeconv)", deconv, 37.5, 14.1),
    ):
        base = schedule_sparse_layer(
            layer.rules, layer.spec.in_channels, layer.spec.out_channels,
            SPADE_HE, optimize=False,
        )
        opt = schedule_sparse_layer(
            layer.rules, layer.spec.in_channels, layer.spec.out_channels,
            SPADE_HE, optimize=True,
        )
        rows.append(
            (label, paper_before, 100 * base.overhead_fraction,
             paper_after, 100 * opt.overhead_fraction,
             opt.effective_ta / max(base.effective_ta, 1))
        )
    return rows


def test_fig8c_dataflow_optimizations(benchmark, traces):
    rows = benchmark.pedantic(_run, args=(traces,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["optimization", "paper before %", "measured before %",
         "paper after %", "measured after %", "Ta gain"],
        rows,
        title="Fig 8(c) - overhead reduction from dataflow optimization",
    ))
    for row in rows:
        measured_before, measured_after = row[2], row[4]
        assert measured_after < measured_before
