"""Fig. 8(c): dataflow-optimization overhead reduction.

Left: weight grouping on the first SpStConv of SPP2 (paper: overhead
12.7% -> 6.3%).  Right: ganged scatter on the stride-4 SpDeconv of SPP2
(paper: 37.5% -> 14.1%, via 16x weight reuse).

One engine grid runs SPP2 through SPADE with and without dataflow
optimization; the per-layer schedule detail (overhead fraction,
effective T_a) comes straight off the unified result rows.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import SPADE_HE
from repro.engine import SpadeSimulator

LAYERS = (
    ("weight grouping (B1C1 SpStConv)", "B1C1", 12.7, 6.3),
    ("ganged scatter (D3 SpDeconv)", "D3", 37.5, 14.1),
)


def _layer_row(result, layer_name) -> dict:
    for row in result.per_layer:
        if row["name"] == layer_name:
            return row
    raise KeyError(layer_name)


def _run(make_runner):
    runner = make_runner(
        [SpadeSimulator(SPADE_HE, optimize=False, name="base"),
         SpadeSimulator(SPADE_HE, optimize=True, name="optimized")],
        ["SPP2"],
    )
    table = runner.run()
    base = table.get(simulator="base")
    opt = table.get(simulator="optimized")
    rows = []
    for label, layer_name, paper_before, paper_after in LAYERS:
        base_layer = _layer_row(base, layer_name)
        opt_layer = _layer_row(opt, layer_name)
        rows.append(
            (label, paper_before,
             100 * base_layer["overhead_fraction"],
             paper_after, 100 * opt_layer["overhead_fraction"],
             opt_layer["effective_ta"] / max(base_layer["effective_ta"], 1))
        )
    return rows


def test_fig8c_dataflow_optimizations(benchmark, make_runner):
    rows = benchmark.pedantic(_run, args=(make_runner,), rounds=1,
                              iterations=1)
    print()
    print(format_table(
        ["optimization", "paper before %", "measured before %",
         "paper after %", "measured after %", "Ta gain"],
        rows,
        title="Fig 8(c) - overhead reduction from dataflow optimization",
    ))
    for row in rows:
        measured_before, measured_after = row[2], row[4]
        assert measured_after < measured_before
