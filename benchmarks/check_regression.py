"""CI perf-regression gate for the engine's timing trajectory.

Compares a freshly-measured ``engine_runner_timings.json`` against the
committed baseline and fails (exit 1) when any gated speedup regresses
by more than the threshold: the cached/parallel sweep speedups, the
batched-vs-unbatched serial ratio (frame batching must never again be
slower than the equivalent single-frame scenarios), the fused-vs-
legacy rulegen speedup (the trace-layer hot path), and the delta-vs-
full trace speedup (sequential frames must keep patching cheaper than
rebuilding).  The ``telemetry_overhead`` section is additionally held
to a hard cap: enabled span tracing must cost under 5% vs the untraced
sweep measured in the same run.

The gate compares *speedup ratios* (each measured against its own
counterpart in the same run), not absolute seconds: ratios share the
machine's noise between numerator and denominator, so the gate holds on
shared CI runners where raw wall-clock does not.

Usage:
    python benchmarks/check_regression.py [--fresh PATH]
        [--baseline PATH] [--threshold 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_FRESH = RESULTS_DIR / "engine_runner_timings.json"
DEFAULT_BASELINE = RESULTS_DIR / "baseline_engine_runner_timings.json"

#: Higher-is-better metrics the gate protects.
GATED_METRICS = (
    "speedup_cached_vs_naive",
    "speedup_parallel_vs_naive",
    "speedup_batched_vs_unbatched",
    "speedup_fused_vs_legacy",
    "speedup_delta_vs_full",
)

#: Hard cap on enabled-tracing overhead (``telemetry_overhead``
#: section): traced vs untraced cold sweeps in the *same* run, so the
#: fraction shares the machine's noise and needs no baseline ratio.
TELEMETRY_OVERHEAD_CAP = 0.05


def compare(fresh: dict, baseline: dict, threshold: float) -> list:
    """Return a report row per gated metric; ``row[-1]`` is pass/fail."""
    rows = []
    for metric in GATED_METRICS:
        fresh_value = fresh.get(metric)
        base_value = baseline.get(metric)
        if fresh_value is None or base_value is None:
            rows.append((metric, base_value, fresh_value, None, False))
            continue
        floor = base_value * (1.0 - threshold)
        if base_value:
            ratio = fresh_value / base_value
        else:
            ratio = float("inf")
        ok = fresh_value >= floor
        rows.append((metric, base_value, fresh_value, ratio, ok))
    return rows


def _load(path: Path, label: str) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read {label} timings: {error}", file=sys.stderr)
        return None


def _format_speedup(value) -> str:
    if value is None:
        return "missing"
    return f"{value:.2f}x"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh",
        type=Path,
        default=DEFAULT_FRESH,
        help="freshly measured timings JSON",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline timings JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression",
    )
    args = parser.parse_args(argv)

    fresh = _load(args.fresh, "fresh")
    baseline = _load(args.baseline, "baseline")
    if fresh is None or baseline is None:
        return 2

    # Speedup ratios are only comparable on the same grid: a smoke-grid
    # measurement against the full-grid baseline would be meaningless.
    if fresh.get("grid") != baseline.get("grid"):
        print(
            "grid mismatch between fresh and baseline timings:\n"
            f"  fresh:    {fresh.get('grid')}\n"
            f"  baseline: {baseline.get('grid')}\n"
            "re-measure with benchmarks/bench_engine_runner.py on the "
            "baseline's grid (no --smoke) before gating.",
            file=sys.stderr,
        )
        return 2

    rows = compare(fresh, baseline, args.threshold)
    failed = [row for row in rows if not row[-1]]
    print(f"perf-regression gate (threshold {args.threshold:.0%}):")
    for metric, base_value, fresh_value, ratio, ok in rows:
        status = "ok" if ok else "REGRESSED"
        base_text = _format_speedup(base_value)
        fresh_text = _format_speedup(fresh_value)
        ratio_text = "-" if ratio is None else f"{ratio:.2f}"
        print(
            f"  {metric:30s} baseline {base_text:>9s}  "
            f"fresh {fresh_text:>9s}  ratio {ratio_text:>5s}  {status}"
        )

    section = fresh.get("telemetry_overhead") or {}
    overhead = section.get("overhead_fraction")
    overhead_ok = overhead is not None and overhead <= TELEMETRY_OVERHEAD_CAP
    overhead_text = "missing" if overhead is None else f"{overhead:+.2%}"
    status = "ok" if overhead_ok else "REGRESSED"
    print(
        f"  {'telemetry_overhead':30s} cap "
        f"{TELEMETRY_OVERHEAD_CAP:>8.0%}  "
        f"fresh {overhead_text:>9s}  ratio     -  {status}"
    )
    if not overhead_ok:
        failed.append(("telemetry_overhead",))

    if failed:
        print(
            f"\n{len(failed)} gated metric(s) regressed more than "
            f"{args.threshold:.0%} vs the committed baseline.",
            file=sys.stderr,
        )
        return 1
    print("\nall gated metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
