"""Fig. 2(b): conventional SpConv2D-Acc inefficiency under vector sparsity.

Sweeps computation sparsity and reports PE utilization and bank-conflict
rate of the outer-product element-sparse baseline.  Paper shape: both
problems amplify as sparsity increases.

The sweep runs through the unified engine: each sparsity level is a
scenario whose frame is a seeded uniform mask, the SpConv2D-Acc adapter
is the (single) simulator, and rulegen runs once per level in the grid's
trace cache.
"""

from __future__ import annotations

from conftest import micro_runner

from repro.analysis import format_table
from repro.engine import SpConv2DSim

SPARSITY_LEVELS = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99)
SHAPE = (128, 128)


def _sweep(smoke):
    shape = (64, 64) if smoke else SHAPE
    levels = SPARSITY_LEVELS[::2] if smoke else SPARSITY_LEVELS
    total = shape[0] * shape[1]
    counts = {
        sparsity: max(4, int(round(total * (1.0 - sparsity))))
        for sparsity in levels
    }
    runner = micro_runner(
        [SpConv2DSim(pe_rows=16, pe_cols=16, num_banks=16)],
        shape, counts.values(),
    )
    table = runner.run()
    return [
        (sparsity, table.get(scenario=f"p{count}"))
        for sparsity, count in counts.items()
    ]


def test_fig2b_utilization_and_conflicts(benchmark, smoke):
    results = benchmark.pedantic(_sweep, args=(smoke,), rounds=1,
                                 iterations=1)
    rows = [
        (f"{sparsity:.0%}", result.utilization,
         result.per_layer[0]["bank_conflict_rate"])
        for sparsity, result in results
    ]
    print()
    print(format_table(
        ["computation sparsity", "PE utilization", "bank conflicts/group"],
        rows,
        title="Fig 2(b) - SpConv2D-Acc under vector sparsity",
    ))
    utils = [result.utilization for _, result in results]
    conflicts = [
        result.per_layer[0]["bank_conflict_rate"] for _, result in results
    ]
    assert utils[0] > utils[-1]
    assert conflicts[-1] > conflicts[0]
