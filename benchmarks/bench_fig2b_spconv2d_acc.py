"""Fig. 2(b): conventional SpConv2D-Acc inefficiency under vector sparsity.

Sweeps computation sparsity and reports PE utilization and bank-conflict
rate of the outer-product element-sparse baseline.  Paper shape: both
problems amplify as sparsity increases.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import SpConv2DAccModel

SPARSITY_LEVELS = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99)


def _sweep():
    model = SpConv2DAccModel(pe_rows=16, pe_cols=16, num_banks=16)
    return model.sweep_sparsity((128, 128), SPARSITY_LEVELS, seed=0)


def test_fig2b_utilization_and_conflicts(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        (f"{sparsity:.0%}", report.utilization,
         report.bank_conflict_rate)
        for sparsity, report in results
    ]
    print()
    print(format_table(
        ["computation sparsity", "PE utilization", "bank conflicts/group"],
        rows,
        title="Fig 2(b) - SpConv2D-Acc under vector sparsity",
    ))
    utils = [report.utilization for _, report in results]
    conflicts = [report.bank_conflict_rate for _, report in results]
    assert utils[0] > utils[-1]
    assert conflicts[-1] > conflicts[0]
