"""Fig. 5(b): mapping cycles of hash table vs merge sorter vs RGU.

Sweeps active pillar count up to 100k (the paper's range) and reports
normalized mapping cycles.  Paper result: RGU is on average 5.9x faster
than the hash table and 3.7x faster than the merge sorter.

The sweep runs through the unified engine: each pillar count is a
scenario, the three mapping substrates are the simulators, and every
substrate consumes the same cached rule stream per count.
"""

from __future__ import annotations

import numpy as np
from conftest import micro_runner

from repro.analysis import format_table
from repro.engine import MappingSim

PILLAR_COUNTS = (1_000, 5_000, 10_000, 25_000, 50_000, 100_000)
SHAPE = (1024, 1024)

SUBSTRATES = ("hash", "sorter", "rgu")


def _sweep(smoke):
    counts = PILLAR_COUNTS[:3] if smoke else PILLAR_COUNTS
    runner = micro_runner(
        [MappingSim(substrate) for substrate in SUBSTRATES], SHAPE, counts,
    )
    table = runner.run()
    rows = []
    for count in counts:
        scenario = f"p{count}"
        hash_cycles = table.get(scenario=scenario,
                                simulator="HashTable").cycles
        sort_cycles = table.get(scenario=scenario,
                                simulator="MergeSorter").cycles
        rgu_cycles = table.get(scenario=scenario, simulator="RGU").cycles
        rows.append((count, hash_cycles, sort_cycles, rgu_cycles,
                     hash_cycles / rgu_cycles, sort_cycles / rgu_cycles))
    return rows


def test_fig5b_rulegen_comparison(benchmark, smoke):
    rows = benchmark.pedantic(_sweep, args=(smoke,), rounds=1, iterations=1)
    print()
    print(format_table(
        ["pillars", "hash cycles", "sorter cycles", "RGU cycles",
         "hash/RGU", "sorter/RGU"],
        rows,
        title="Fig 5(b) - mapping cycles (paper: hash 5.9x, sorter 3.7x"
              " slower than RGU on average)",
    ))
    hash_ratios = [row[4] for row in rows]
    sort_ratios = [row[5] for row in rows]
    assert 3.0 < np.mean(hash_ratios) < 10.0
    assert 2.0 < np.mean(sort_ratios) < 6.0
