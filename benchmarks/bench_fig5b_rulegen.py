"""Fig. 5(b): mapping cycles of hash table vs merge sorter vs RGU.

Sweeps active pillar count up to 100k (the paper's range) and reports
normalized mapping cycles.  Paper result: RGU is on average 5.9x faster
than the hash table and 3.7x faster than the merge sorter.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import RGUModel, SPADE_HE
from repro.hw import BitonicMergeRuleGen, HashTableRuleGen
from repro.sparse import unflatten

PILLAR_COUNTS = (1_000, 5_000, 10_000, 25_000, 50_000, 100_000)
SHAPE = (1024, 1024)


def _sweep():
    rng = np.random.default_rng(0)
    hash_gen = HashTableRuleGen()
    sort_gen = BitonicMergeRuleGen()
    rgu = RGUModel(SPADE_HE)
    rows = []
    for count in PILLAR_COUNTS:
        flat = np.sort(rng.choice(SHAPE[0] * SHAPE[1], count, replace=False))
        coords = unflatten(flat, SHAPE)
        hash_cycles = hash_gen.run(coords, SHAPE).cycles
        sort_cycles = sort_gen.run(count).cycles
        rgu_cycles = rgu.cycles_for_count(count)
        rows.append((count, hash_cycles, sort_cycles, rgu_cycles,
                     hash_cycles / rgu_cycles, sort_cycles / rgu_cycles))
    return rows


def test_fig5b_rulegen_comparison(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["pillars", "hash cycles", "sorter cycles", "RGU cycles",
         "hash/RGU", "sorter/RGU"],
        rows,
        title="Fig 5(b) - mapping cycles (paper: hash 5.9x, sorter 3.7x"
              " slower than RGU on average)",
    ))
    hash_ratios = [row[4] for row in rows]
    sort_ratios = [row[5] for row in rows]
    assert 3.0 < np.mean(hash_ratios) < 10.0
    assert 2.0 < np.mean(sort_ratios) < 6.0
