"""Sparsity analysis, trade-off studies and experiment reporting."""

from .report import (
    format_results,
    format_series,
    format_table,
    paper_vs_measured,
)
from .sparsity import (
    LayerTrace,
    ModelTrace,
    StreamState,
    compute_savings,
    dense_counterpart,
    iopr_series,
    trace_model,
    trace_model_delta,
)
from .tradeoff import (
    AccuracySparsityCurve,
    AccuracySparsityPoint,
    FeatureMapStudy,
    accuracy_sparsity_sweep,
    feature_map_study,
    single_object_scene,
)

__all__ = [
    "AccuracySparsityCurve",
    "AccuracySparsityPoint",
    "FeatureMapStudy",
    "LayerTrace",
    "ModelTrace",
    "StreamState",
    "accuracy_sparsity_sweep",
    "compute_savings",
    "dense_counterpart",
    "feature_map_study",
    "format_results",
    "format_series",
    "format_table",
    "iopr_series",
    "paper_vs_measured",
    "single_object_scene",
    "trace_model",
    "trace_model_delta",
]
