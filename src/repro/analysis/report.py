"""Report formatting shared by all benchmarks.

Every bench prints the same kind of artifact the paper shows — a table of
rows or a series of (x, y) points — through these helpers, so output
formatting lives in exactly one place.
"""

from __future__ import annotations


def format_table(headers: list, rows: list, title: str = "") -> str:
    """Fixed-width text table."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows = []
    for row in rows:
        cells = [_format_cell(cell) for cell in row]
        while len(cells) < columns:
            cells.append("")
        for index in range(columns):
            widths[index] = max(widths[index], len(cells[index]))
        text_rows.append(cells)
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for cells in text_rows:
        lines.append(
            "  ".join(cells[i].ljust(widths[i]) for i in range(columns))
        )
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_series(name: str, points: list, x_label: str = "x",
                  y_label: str = "y") -> str:
    """A figure series as an aligned two-column listing."""
    rows = [(x, y) for x, y in points]
    return format_table([x_label, y_label], rows, title=name)


def format_results(results, columns=None, title: str = "") -> str:
    """Render an engine result table (or list of SimResults) as text.

    This is the tidy-table consumer for
    :class:`repro.engine.result.ExperimentTable`: pick the columns you
    care about and get the same fixed-width artifact every benchmark
    prints.  ``None`` metrics (a simulator that doesn't model the
    quantity) render as ``"-"``.
    """
    if columns is None:
        from ..engine.result import RESULT_COLUMNS

        columns = RESULT_COLUMNS
    rows = [
        tuple(
            "-" if value is None else value
            for value in result.as_row(columns)
        )
        for result in results
    ]
    return format_table(list(columns), rows, title=title)


def paper_vs_measured(experiment: str, rows: list) -> str:
    """Standard paper-vs-measured table: (label, paper, measured) rows."""
    return format_table(
        ["label", "paper", "measured", "ratio"],
        [
            (
                label,
                paper,
                measured,
                (measured / paper) if isinstance(paper, (int, float))
                and isinstance(measured, (int, float)) and paper else "-",
            )
            for label, paper, measured in rows
        ],
        title=experiment,
    )
