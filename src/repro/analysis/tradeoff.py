"""Accuracy-sparsity trade-off experiments (paper Fig. 13).

Wires the mini detector, the dynamic-pruning training recipe and the
metrics into the two studies the paper reports:

* Fig. 13(a): detection accuracy as inference-time pillar sparsity rises,
  with and without vector-sparsity regularization + pruning-aware
  fine-tuning;
* Fig. 13(b): feature-map occupancy around a single object for SpConv /
  SpConv-S / SpConv-P (how much of the ground-truth box each variant's
  stage-1 output fills, and how much background it wastes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.grids import MINI_GRID
from ..data.pillars import voxelize
from ..data.pointcloud import BoundingBox3D, PointCloud
from ..data.synthetic import SceneConfig, SceneGenerator
from ..models.metrics import evaluate_map
from ..models.pointpillars import (
    MiniPointPillars,
    build_targets,
    decode_detections,
    detection_loss,
)
from ..nn.finetune import dynamic_pruning_finetune
from ..sparse.functional import init_conv_weight, sparse_conv_apply
from ..sparse.pruning import sparsity_prune
from ..sparse.rulegen import ConvType, build_rules
from ..sparse.tensor import SparseTensor


@dataclass
class AccuracySparsityPoint:
    """One sweep point of the Fig. 13(a) study."""

    keep_ratio: float
    sparsity: float
    ap: float


@dataclass
class AccuracySparsityCurve:
    """A labelled accuracy-vs-sparsity curve."""

    label: str
    points: list = field(default_factory=list)


def _training_data(num_scenes: int, seed: int) -> tuple:
    config = SceneConfig(grid=MINI_GRID, num_objects=(2, 5),
                         azimuth_resolution=0.5)
    scenes = SceneGenerator(config, seed=seed).generate_batch(num_scenes)
    batches = [
        (voxelize(scene, MINI_GRID), build_targets(scene.boxes, MINI_GRID))
        for scene in scenes
    ]
    return scenes, batches


def _evaluate(model: MiniPointPillars, scenes, keep_ratio: float,
              iou_threshold: float = 0.3) -> float:
    model.eval()
    model.pruner.enabled = keep_ratio < 1.0
    model.pruner.keep_ratio = keep_ratio
    predictions, ground_truth = [], []
    for scene in scenes:
        outputs = model(voxelize(scene, MINI_GRID))
        predictions.append(decode_detections(outputs, MINI_GRID))
        ground_truth.append(scene.boxes)
    return evaluate_map(predictions, ground_truth, iou_threshold)


def accuracy_sparsity_sweep(
    keep_ratios=(1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.1),
    num_scenes: int = 12,
    seed: int = 7,
    regularization: float = 2e-4,
    epochs: int = 5,
) -> list:
    """Fig. 13(a): two curves, with and without the pruning recipe.

    The "with" curve trains with Group-Lasso regularization and Top-K
    fine-tuning at a representative keep ratio; the "without" curve is a
    plain model pruned post-hoc.  The paper's observation to reproduce:
    regularized fine-tuning holds accuracy flat far deeper into sparsity.
    """
    scenes, batches = _training_data(num_scenes, seed)

    def loss_fn(outputs, targets):
        return detection_loss(outputs, targets)

    curves = []
    for label, strength, finetune in (
        ("regularized+finetuned", regularization, True),
        ("unregularized", 0.0, False),
    ):
        model = MiniPointPillars(seed=0)
        model.regularizer.strength = strength
        representative = 0.4 if finetune else 1.0
        dynamic_pruning_finetune(
            model,
            batches,
            loss_fn,
            target_keep_ratio=representative if finetune else 1.0,
            pretrain_epochs=epochs,
            finetune_epochs=epochs if finetune else 0,
            regularization_strength=strength,
        )
        curve = AccuracySparsityCurve(label=label)
        for keep in keep_ratios:
            ap = _evaluate(model, scenes, keep)
            curve.points.append(
                AccuracySparsityPoint(
                    keep_ratio=keep, sparsity=1.0 - keep, ap=ap
                )
            )
        curves.append(curve)
    return curves


@dataclass
class FeatureMapStudy:
    """Fig. 13(b): stage-1 occupancy of one object per conv variant."""

    variant: str
    active_pillars: int
    box_fill_fraction: float      # active pillars inside GT / box cells
    background_fraction: float    # active pillars outside GT / all active


def single_object_scene(seed: int = 3) -> PointCloud:
    """A scene with exactly one centered car (the Fig. 13(b) setup)."""
    config = SceneConfig(grid=MINI_GRID, num_objects=(1, 1),
                         azimuth_resolution=0.5,
                         class_mix={"car": 1.0})
    return SceneGenerator(config, seed=seed).generate()


def feature_map_study(seed: int = 3) -> list:
    """Occupancy of SpConv / SpConv-S / SpConv-P stage-1 outputs.

    Expected shape (paper): SpConv-S fails to fill the box, SpConv dilates
    far beyond it, SpConv-P fills most of the box with little excess.
    """
    scene = single_object_scene(seed)
    box = scene.boxes[0]
    batch = voxelize(scene, MINI_GRID)
    channels = 16
    rng = np.random.default_rng(0)
    features = np.abs(rng.normal(size=(batch.num_active, channels))).astype(
        np.float32
    )
    # Object pillars get larger magnitudes, as trained encoders produce.
    centers_x = MINI_GRID.x_range[0] + (batch.coords[:, 1] + 0.5) * MINI_GRID.pillar_size
    centers_y = MINI_GRID.y_range[0] + (batch.coords[:, 0] + 0.5) * MINI_GRID.pillar_size
    inside = box.contains_bev(np.stack([centers_x, centers_y], axis=1))
    features[inside] *= 4.0
    tensor = SparseTensor(batch.coords, features, MINI_GRID.shape)
    weight = init_conv_weight(3, channels, channels, rng)

    results = []
    for variant, conv_type, keep in (
        ("SpConv", ConvType.SPCONV, None),
        ("SpConv-S", ConvType.SUBM, None),
        ("SpConv-P", ConvType.SPCONV_P, 0.5),
    ):
        rules = build_rules(tensor.coords, tensor.shape, conv_type)
        out = sparse_conv_apply(tensor, weight, rules)
        if keep is not None:
            out, _ = sparsity_prune(out, keep)
        results.append(_occupancy(out, box))
        results[-1].variant = variant
    return results


def _occupancy(tensor: SparseTensor, box: BoundingBox3D) -> FeatureMapStudy:
    grid = MINI_GRID
    centers_x = grid.x_range[0] + (tensor.coords[:, 1] + 0.5) * grid.pillar_size
    centers_y = grid.y_range[0] + (tensor.coords[:, 0] + 0.5) * grid.pillar_size
    inside = box.contains_bev(np.stack([centers_x, centers_y], axis=1))
    box_cells = max(
        1,
        int(round(box.size[0] / grid.pillar_size))
        * int(round(box.size[1] / grid.pillar_size)),
    )
    active = tensor.num_active
    return FeatureMapStudy(
        variant="",
        active_pillars=active,
        box_fill_fraction=min(1.0, float(inside.sum()) / box_cells),
        background_fraction=(
            float((~inside).sum()) / active if active else 0.0
        ),
    )
