"""Sparsity analysis: propagate active sets through a model workload.

Given a :class:`~repro.models.specs.ModelSpec` and the active pillar
coordinates of one frame, :func:`trace_model` walks the layer graph
(backbone chain, deconvolution branches, head fan-out), generating rules
for every sparse layer and counting MACs for every layer.  The resulting
:class:`ModelTrace` carries everything downstream consumers need:

* Table I: total GOPs and computation savings vs. the dense counterpart;
* Fig. 2(d-f): per-layer IOPR and sparsity;
* the SPADE / DenseAcc / PointAcc simulators: per-layer rules and counts.

Dynamic pruning (SpConv-P) is applied geometrically using an *importance*
value per pillar, defaulting to the pillar's point count propagated by
max through the network — a stand-in for the trained magnitude ranking
that keeps dense clusters (foreground objects) and drops isolated
background pillars, matching the behaviour shown in paper Fig. 13(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.specs import LayerOp, LayerSpec, ModelSpec, build_model_spec
from ..sparse.coords import flatten, unflatten
from ..sparse.rulegen import (
    ConvType,
    Rules,
    build_rules_delta,
    build_rules_sharded,
    resolve_rulegen_shards,
)


@dataclass
class StreamState:
    """Active-set state flowing between layers."""

    shape: tuple
    coords: np.ndarray = None          # None means the stream is dense
    importance: np.ndarray = None

    @property
    def is_dense(self) -> bool:
        return self.coords is None

    @property
    def num_active(self) -> int:
        if self.is_dense:
            return self.shape[0] * self.shape[1]
        return len(self.coords)

    @property
    def density(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.num_active / total if total else 0.0


@dataclass
class LayerTrace:
    """Everything recorded about one executed layer."""

    spec: LayerSpec
    in_shape: tuple
    out_shape: tuple
    in_count: int
    out_count: int
    out_count_after_prune: int
    sparse_macs: int
    rules: Rules = None
    #: Active input coordinates of a sparse layer (a reference to the
    #: stream state, not a copy); None for dense layers.  Substrate
    #: micro-simulators (hash-table mapping, cache-based gather) need
    #: the raw input set, which rules alone do not retain.
    in_coords: np.ndarray = None
    #: Whether this layer's rules were produced by patching the
    #: previous sequential frame's rules (delta tracing) instead of a
    #: full rebuild.  Purely observability — delta rules are
    #: bit-identical — and read with ``getattr(..., False)`` everywhere
    #: so traces pickled before the field existed stay loadable.
    via_delta: bool = False

    @property
    def iopr(self) -> float:
        """Input-output pillar ratio before pruning (Fig. 2(d-f))."""
        return self.out_count / self.in_count if self.in_count else 0.0

    @property
    def out_density(self) -> float:
        total = self.out_shape[0] * self.out_shape[1]
        return self.out_count_after_prune / total if total else 0.0


@dataclass
class ModelTrace:
    """Per-layer traces plus model-level aggregates for one frame."""

    spec: ModelSpec
    layers: list = field(default_factory=list)
    input_active: int = 0

    @property
    def total_macs(self) -> int:
        return sum(layer.sparse_macs for layer in self.layers)

    @property
    def total_ops(self) -> int:
        """Operations = 2 x MACs (multiply + accumulate), the GOPs unit."""
        return 2 * self.total_macs

    def layer(self, name: str) -> LayerTrace:
        for layer in self.layers:
            if layer.spec.name == name:
                return layer
        raise KeyError(f"no layer named {name!r} in trace of {self.spec.name}")

    def savings_vs(self, dense_trace: "ModelTrace") -> float:
        """Computation savings fraction vs. a dense counterpart trace."""
        dense = dense_trace.total_macs
        if dense == 0:
            return 0.0
        return 1.0 - self.total_macs / dense


def _dense_out_shape(spec: LayerSpec, in_shape: tuple) -> tuple:
    if spec.upsample:
        return (in_shape[0] * spec.stride, in_shape[1] * spec.stride)
    if spec.stride > 1:
        return (
            (in_shape[0] + spec.stride - 1) // spec.stride,
            (in_shape[1] + spec.stride - 1) // spec.stride,
        )
    return in_shape


def _propagate_importance(rules: Rules, importance: np.ndarray) -> np.ndarray:
    """Max-propagate pillar importance from inputs to outputs through rules."""
    out_importance = np.zeros(rules.num_outputs, dtype=np.float64)
    for pair in rules.pairs:
        if len(pair):
            np.maximum.at(out_importance, pair.out_idx, importance[pair.in_idx])
    return out_importance


def _prune_state(
    coords: np.ndarray, importance: np.ndarray, keep_ratio: float
) -> tuple:
    """Keep the top ``keep_ratio`` fraction of pillars by importance."""
    keep = int(round(len(coords) * keep_ratio))
    if keep >= len(coords):
        return coords, importance
    if keep <= 0:
        return coords[:0], importance[:0]
    kept = np.argpartition(importance, -keep)[-keep:]
    kept = np.sort(kept)
    return coords[kept], importance[kept]


#: Below this much full-rebuild work (active inputs x window offsets)
#: the patch's fixed bookkeeping costs more than simply rebuilding, so
#: small layers skip the delta path entirely.  Measured crossover on
#: the paper-scale SPP/SCP layer zoo: a 3x3 layer needs roughly 5k
#: active inputs before patching pays for itself.
_DELTA_MIN_WORK = 45_000


def _delta_window(spec: LayerSpec) -> int:
    """Offsets resolved per input by a full rebuild of this layer."""
    if spec.conv_type is ConvType.STRIDED:
        return 9  # downsample_coords fixes the kernel-3/pad-1 window
    if spec.conv_type is ConvType.STRIDED_SUBM:
        return spec.stride * spec.stride
    return spec.kernel_size * spec.kernel_size


def _delta_applicable(prev_rules: Rules, spec: LayerSpec,
                      state: StreamState) -> bool:
    """Whether a previous frame's rules can seed a delta rebuild here.

    The delta patch requires identical layer geometry; a grid or conv
    mismatch (e.g. a prev trace from a different spec) silently falls
    back to the full build rather than producing wrong rules.  Layers
    whose full rebuild is below :data:`_DELTA_MIN_WORK` also decline —
    not for correctness but because the rebuild is cheaper than any
    patch at that size.  (DECONV is exempt from the work floor: its
    delta path already rebuilds internally and still shares identical-
    frame rules for free.)
    """
    if (
        prev_rules is None
        or prev_rules.conv_type is not spec.conv_type
        or tuple(prev_rules.in_shape) != tuple(state.shape)
        or prev_rules.stride != spec.stride
    ):
        return False
    effective_ks = (
        spec.stride if spec.conv_type is ConvType.DECONV
        else spec.kernel_size
    )
    if prev_rules.kernel_size != effective_ks:
        return False
    return (
        spec.conv_type is ConvType.DECONV
        or len(state.coords) * _delta_window(spec) >= _DELTA_MIN_WORK
    )


def _execute_sparse_layer(spec: LayerSpec, state: StreamState,
                          rulegen_shards: int = 1,
                          prev_rules: Rules = None,
                          delta_threshold: float = None) -> tuple:
    """Run one sparse layer geometrically; returns (LayerTrace, new state)."""
    via_delta = _delta_applicable(prev_rules, spec, state)
    if via_delta:
        rules = build_rules_delta(
            prev_rules,
            state.coords,
            threshold=delta_threshold,
            shards=rulegen_shards,
        )
    else:
        # build_rules_sharded degrades to the fused unsharded path at
        # shards <= 1, so the dispatch lives in one place.
        rules = build_rules_sharded(
            state.coords,
            state.shape,
            spec.conv_type,
            kernel_size=spec.kernel_size,
            stride=spec.stride,
            shards=rulegen_shards,
        )
    out_importance = _propagate_importance(rules, state.importance)
    out_coords = rules.out_coords
    out_after = len(out_coords)
    if spec.prune_keep is not None:
        out_coords, out_importance = _prune_state(
            out_coords, out_importance, spec.prune_keep
        )
        out_after = len(out_coords)
    trace = LayerTrace(
        spec=spec,
        in_shape=state.shape,
        out_shape=rules.out_shape,
        in_count=rules.num_inputs,
        out_count=rules.num_outputs,
        out_count_after_prune=out_after,
        sparse_macs=rules.macs(spec.in_channels, spec.out_channels),
        rules=rules,
        in_coords=state.coords,
        via_delta=via_delta,
    )
    new_state = StreamState(
        shape=rules.out_shape, coords=out_coords, importance=out_importance
    )
    return trace, new_state


def _execute_dense_layer(spec: LayerSpec, state: StreamState) -> tuple:
    out_shape = _dense_out_shape(spec, state.shape)
    macs = spec.dense_macs(out_shape[0], out_shape[1])
    trace = LayerTrace(
        spec=spec,
        in_shape=state.shape,
        out_shape=out_shape,
        in_count=state.shape[0] * state.shape[1],
        out_count=out_shape[0] * out_shape[1],
        out_count_after_prune=out_shape[0] * out_shape[1],
        sparse_macs=macs,
        rules=None,
    )
    return trace, StreamState(shape=out_shape, coords=None)


def _union_states(states: list) -> StreamState:
    """Merge branch outputs (channel concat): union of active sets."""
    shape = states[0].shape
    if any(state.is_dense for state in states):
        return StreamState(shape=shape, coords=None)
    flats = [flatten(state.coords, shape) for state in states]
    merged, inverse_start = np.unique(np.concatenate(flats)), 0
    importance = np.zeros(len(merged), dtype=np.float64)
    for state, flat in zip(states, flats):
        index = np.searchsorted(merged, flat)
        np.maximum.at(importance, index, state.importance)
    return StreamState(
        shape=shape, coords=unflatten(merged, shape), importance=importance
    )


def trace_model(
    spec: ModelSpec,
    coords: np.ndarray,
    importance: np.ndarray = None,
    grid_shape: tuple = None,
    rulegen_shards: int = None,
    prev_trace: "ModelTrace" = None,
    delta_threshold: float = None,
) -> ModelTrace:
    """Execute a model spec geometrically on one frame's active pillars.

    Args:
        spec: The workload layer graph.
        coords: (P, 2) CPR-sorted active pillar coordinates on ``spec.grid``
            (or on ``grid_shape`` when given).
        importance: Optional per-pillar importance for dynamic pruning
            (defaults to all-ones; pass pillar point counts for
            foreground-preserving pruning).
        grid_shape: Override the input grid shape, e.g. to run a
            full-scale layer graph on a reduced grid in tests.
        rulegen_shards: Row-band count for
            :func:`~repro.sparse.rulegen.build_rules_sharded`; ``None``
            reads ``REPRO_ENGINE_RULEGEN_SHARDS`` (default 1, the fused
            unsharded path).  Sharded rules are bit-identical, so this
            only changes speed, never the trace.
        prev_trace: Optional trace of the *previous sequential frame* of
            the same model: each sparse layer then patches its
            predecessor's rules via
            :func:`~repro.sparse.rulegen.build_rules_delta` instead of
            rebuilding.  Delta rules are bit-identical to a full build,
            so this too only changes speed, never the trace.
        delta_threshold: Fallback fraction for the delta path; ``None``
            reads ``REPRO_ENGINE_DELTA_THRESHOLD`` (default 0.5).

    Returns:
        A :class:`ModelTrace` with one :class:`LayerTrace` per layer.
    """
    rulegen_shards = resolve_rulegen_shards(rulegen_shards)
    coords = np.asarray(coords, dtype=np.int32)
    if importance is None:
        importance = np.ones(len(coords), dtype=np.float64)
    importance = np.asarray(importance, dtype=np.float64)

    trace = ModelTrace(spec=spec, input_active=len(coords))
    state = StreamState(
        shape=grid_shape or spec.grid.shape,
        coords=coords,
        importance=importance,
    )
    if prev_trace is not None and (
        prev_trace.spec.name != spec.name
        or len(prev_trace.layers) != len(spec.layers)
    ):
        prev_trace = None  # foreign trace: never seed deltas from it

    def prev_rules_for(index: int) -> Rules:
        # Every layer (dense included) appends one LayerTrace in
        # spec.layers order, so the predecessor frame's rules for the
        # layer about to run sit at the same position.
        if prev_trace is None:
            return None
        return prev_trace.layers[index].rules

    def run_sparse(layer: LayerSpec, source: StreamState) -> tuple:
        return _execute_sparse_layer(
            layer, source, rulegen_shards,
            prev_rules=prev_rules_for(len(trace.layers)),
            delta_threshold=delta_threshold,
        )

    stage_snapshots = {}
    deconv_outputs = []
    head_input = None
    head_shared_output = None
    current_stage = None

    for layer in spec.layers:
        is_deconv = layer.name.startswith("D")
        is_head = layer.name.startswith("H")

        if not is_deconv and not is_head:
            # Backbone / encoder chain layer.
            if layer.op is LayerOp.SPARSE:
                layer_trace, state = run_sparse(layer, state)
            else:
                layer_trace, state = _execute_dense_layer(layer, state)
            stage_snapshots[layer.stage] = state
            current_stage = layer.stage
            trace.layers.append(layer_trace)
            continue

        if is_deconv:
            source = stage_snapshots.get(layer.stage)
            if source is None:
                raise ValueError(
                    f"deconv {layer.name} references unknown stage {layer.stage}"
                )
            if layer.op is LayerOp.SPARSE:
                layer_trace, out_state = run_sparse(layer, source)
            else:
                layer_trace, out_state = _execute_dense_layer(layer, source)
            deconv_outputs.append(out_state)
            trace.layers.append(layer_trace)
            continue

        # Head layer: first head consumes the concat of deconv branches
        # (or, for PillarNet-style specs without deconv fan-in recorded,
        # the current stream).
        if head_input is None:
            head_input = (
                _union_states(deconv_outputs) if deconv_outputs else state
            )
        source = head_shared_output if head_shared_output is not None else head_input
        if layer.op is LayerOp.SPARSE:
            layer_trace, out_state = run_sparse(layer, source)
        else:
            layer_trace, out_state = _execute_dense_layer(layer, source)
        if layer.name == "Hshared":
            head_shared_output = out_state
        trace.layers.append(layer_trace)

    return trace


def trace_model_delta(
    spec: ModelSpec,
    prev_trace: ModelTrace,
    coords: np.ndarray,
    importance: np.ndarray = None,
    grid_shape: tuple = None,
    rulegen_shards: int = None,
    delta_threshold: float = None,
) -> ModelTrace:
    """Trace one frame by patching the previous sequential frame's trace.

    Thin named wrapper over :func:`trace_model` with ``prev_trace``
    required — the entry point the engine's delta-chain trace stage
    uses.  Bit-identical to a full :func:`trace_model` of the same
    frame.
    """
    return trace_model(
        spec, coords, importance=importance, grid_shape=grid_shape,
        rulegen_shards=rulegen_shards, prev_trace=prev_trace,
        delta_threshold=delta_threshold,
    )


def dense_counterpart(name: str) -> str:
    """Table I dense baseline for each model."""
    if name.startswith("SPP") or name == "PP":
        return "PP"
    if name.startswith("SCP") or name == "CP":
        return "CP"
    return "PN-Dense"


def compute_savings(
    model_name: str, coords: np.ndarray, importance: np.ndarray = None
) -> tuple:
    """Convenience: (model trace, dense trace, savings fraction)."""
    spec = build_model_spec(model_name)
    dense_spec = build_model_spec(dense_counterpart(model_name))
    model_trace = trace_model(spec, coords, importance)
    dense_trace = trace_model(dense_spec, coords, importance)
    return model_trace, dense_trace, model_trace.savings_vs(dense_trace)


class SparsityAnalyzer:
    """Streaming per-layer sparsity/overhead aggregator.

    The incremental-analyzer idiom: the analyzer is attached once,
    ingests layer observations *as results complete* (rows streaming out
    of a backend, traces coming off the trace stage), and keeps only
    constant-size running aggregates — count / mean / min / max per
    (model, layer, field) — never the rows or traces themselves.  That
    is what lets a :class:`~repro.engine.manifest.RunObserver` surface
    per-layer analytics in the run manifest of an arbitrarily long sweep
    without retaining its tables or rule arrays.

    Two ingestion surfaces:

    * :meth:`ingest_result` — one engine row
      (:class:`~repro.engine.result.SimResult` or its JSON record);
      every numeric field of its ``per_layer`` dicts is tracked, so
      simulator-specific detail (``overhead_fraction``,
      ``effective_ta``, ``energy_pj``, ...) aggregates without the
      analyzer knowing any simulator's schema;
    * :meth:`ingest_trace` — one geometric :class:`ModelTrace`; derives
      the Fig. 2-style series (inputs, outputs, IOPR, output density,
      MACs) plus the delta-tracing utilization flag per layer.

    ``enable()`` / ``disable()`` gate ingestion so a long-lived analyzer
    can bracket exactly the phase it should observe.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        self._layers = {}          # (model, layer) -> {field: stats}
        self._order = []           # first-seen (model, layer) keys
        self.rows_ingested = 0
        self.traces_ingested = 0

    @property
    def enabled(self) -> bool:
        """Whether ingestion is currently accumulating."""
        return self._enabled

    def enable(self) -> None:
        """Resume accumulating observations."""
        self._enabled = True

    def disable(self) -> None:
        """Stop accumulating (ingest calls become no-ops)."""
        self._enabled = False

    def _track(self, model: str, layer: str, fields: dict) -> None:
        key = (str(model), str(layer))
        stats = self._layers.get(key)
        if stats is None:
            stats = self._layers[key] = {}
            self._order.append(key)
        for name, value in fields.items():
            if isinstance(value, bool):
                value = float(value)
            elif not isinstance(value, (int, float)):
                continue
            value = float(value)
            if value != value:     # NaN never aggregates
                continue
            entry = stats.get(name)
            if entry is None:
                stats[name] = [1, value, value, value]
            else:
                entry[0] += 1
                entry[1] += value
                if value < entry[2]:
                    entry[2] = value
                if value > entry[3]:
                    entry[3] = value

    def ingest_result(self, result) -> None:
        """Accumulate one engine row's ``per_layer`` detail.

        ``result`` may be a :class:`~repro.engine.result.SimResult` or
        its JSON record dict; rows without per-layer detail (platform
        models, ``"mean"`` aggregate rows) are counted but contribute
        nothing.
        """
        if not self._enabled:
            return
        if isinstance(result, dict):
            model = result.get("model")
            per_layer = result.get("per_layer") or []
        else:
            model = result.model
            per_layer = result.per_layer or []
        self.rows_ingested += 1
        for entry in per_layer:
            if not isinstance(entry, dict):
                continue
            name = entry.get("name")
            if name is None:
                continue
            self._track(model, name, entry)

    def ingest_trace(self, trace: ModelTrace) -> None:
        """Accumulate one geometric trace's per-layer series."""
        if not self._enabled:
            return
        self.traces_ingested += 1
        for layer in trace.layers:
            fields = {
                "inputs": layer.in_count,
                "outputs": layer.out_count,
                "macs": layer.sparse_macs,
            }
            if layer.rules is not None:
                fields["iopr"] = layer.iopr
                fields["out_density"] = layer.out_density
                fields["via_delta"] = getattr(layer, "via_delta", False)
            self._track(trace.spec.name, layer.spec.name, fields)

    def layer_stats(self) -> list:
        """The running aggregates, one dict per (model, layer).

        Layers appear in first-seen order; each carries
        ``{"model", "layer", "fields": {name: {count, mean, min,
        max}}}``.  ``via_delta``'s mean is the fraction of ingested
        traces whose layer took the delta path.
        """
        out = []
        for key in self._order:
            model, layer = key
            fields = {}
            for name, (count, total, low, high) in sorted(
                    self._layers[key].items()):
                fields[name] = {
                    "count": count,
                    "mean": total / count,
                    "min": low,
                    "max": high,
                }
            out.append({"model": model, "layer": layer, "fields": fields})
        return out

    def summary(self) -> dict:
        """JSON-safe snapshot for manifests: counts + per-layer stats."""
        return {
            "rows_ingested": self.rows_ingested,
            "traces_ingested": self.traces_ingested,
            "layers": len(self._layers),
            "per_layer": self.layer_stats(),
        }


def iopr_series(trace: ModelTrace) -> list:
    """(layer name, IOPR, output density) for backbone sparse layers.

    This is the Fig. 2(d-f) series; dense layers are skipped since IOPR
    is a sparse-layer concept.
    """
    series = []
    for layer in trace.layers:
        if layer.rules is None:
            continue
        series.append((layer.spec.name, layer.iopr, layer.out_density))
    return series
