"""Synthetic LiDAR scene generator.

The paper evaluates on KITTI and nuScenes sweeps.  Those datasets are not
available offline, so this module generates sweeps with the same *structural*
properties that drive every architecture result:

* ring-structured ground returns whose density falls off with range (a
  spinning multi-beam LiDAR sampled on a regular elevation/azimuth lattice),
  giving the characteristic 3-10 % active-pillar occupancy on KITTI-size
  grids and lower occupancy on the larger nuScenes grid;
* clustered object returns on the sensor-facing surfaces of parked/moving
  vehicles, pedestrians and cyclists, giving the locally-dense blobs whose
  dilation behaviour Fig. 2(d-f) characterizes;
* occlusion shadows behind objects (a blocked beam produces no ground
  return), which keeps clusters isolated the way real sweeps are.

The generator is deterministic given a seed, so every benchmark and test is
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .grids import GridSpec, KITTI_GRID
from .pointcloud import BoundingBox3D, PointCloud

#: Object class templates: (length, width, height) means and std-devs.
OBJECT_TEMPLATES = {
    "car": ((4.2, 1.8, 1.6), (0.4, 0.15, 0.1)),
    "pedestrian": ((0.6, 0.6, 1.7), (0.1, 0.1, 0.1)),
    "cyclist": ((1.8, 0.6, 1.7), (0.2, 0.1, 0.1)),
}


@dataclass
class SceneConfig:
    """Parameters controlling synthetic sweep generation.

    Attributes:
        grid: BEV grid defining the detection range.
        num_beams: LiDAR elevation channels (64 for KITTI, 32 for nuScenes).
        azimuth_fov: Horizontal field of view in degrees (90 front-facing
            for KITTI crops, 360 for nuScenes).
        azimuth_resolution: Angular step between consecutive firings, degrees.
        sensor_height: LiDAR mount height above ground, meters.
        num_objects: (min, max) objects per scene.
        class_mix: Sampling weights per object class.
        dropout: Fraction of returns randomly dropped (sensor noise).
    """

    grid: GridSpec = field(default_factory=lambda: KITTI_GRID)
    num_beams: int = 64
    azimuth_fov: float = 90.0
    azimuth_resolution: float = 0.16
    sensor_height: float = 1.73
    num_objects: tuple = (4, 12)
    class_mix: dict = field(
        default_factory=lambda: {"car": 0.6, "pedestrian": 0.25, "cyclist": 0.15}
    )
    dropout: float = 0.05


#: KITTI-like front-facing 64-beam sweep.
KITTI_SCENE = SceneConfig()

#: nuScenes-like 360-degree 32-beam sweep over the larger grid.
def nuscenes_scene_config(grid: GridSpec = None) -> SceneConfig:
    """Build the nuScenes-style scene configuration."""
    from .grids import NUSCENES_GRID

    return SceneConfig(
        grid=grid or NUSCENES_GRID,
        num_beams=32,
        azimuth_fov=360.0,
        azimuth_resolution=0.33,
        sensor_height=1.84,
        num_objects=(8, 24),
    )


class SceneGenerator:
    """Deterministic synthetic LiDAR sweep generator.

    Example:
        >>> gen = SceneGenerator(KITTI_SCENE, seed=0)
        >>> sweep = gen.generate()
        >>> len(sweep) > 10000
        True
    """

    def __init__(self, config: SceneConfig = None, seed: int = 0):
        self.config = config or SceneConfig()
        self._rng = np.random.default_rng(seed)

    def generate(self) -> PointCloud:
        """Generate one sweep with ground, objects and occlusion shadows."""
        boxes = self._sample_boxes()
        ground = self._ground_returns(boxes)
        object_points = [self._object_returns(box) for box in boxes]
        parts = [ground] + [pts for pts in object_points if len(pts)]
        points = np.concatenate(parts, axis=0)
        keep = self._rng.random(len(points)) >= self.config.dropout
        points = points[keep]
        intensity = self._rng.uniform(0.05, 0.95, size=len(points)).astype(np.float32)
        cloud = PointCloud(points.astype(np.float32), intensity, boxes)
        return cloud.crop(self.config.grid)

    def generate_batch(self, count: int) -> list:
        """Generate ``count`` independent sweeps."""
        return [self.generate() for _ in range(count)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _sample_boxes(self) -> list:
        grid = self.config.grid
        lo, hi = self.config.num_objects
        count = int(self._rng.integers(lo, hi + 1))
        labels = list(self.config.class_mix)
        weights = np.array([self.config.class_mix[label] for label in labels])
        weights = weights / weights.sum()
        boxes = []
        for _ in range(count):
            label = labels[int(self._rng.choice(len(labels), p=weights))]
            (mean_size, std_size) = OBJECT_TEMPLATES[label]
            size = tuple(
                max(0.3, self._rng.normal(mu, sd)) for mu, sd in zip(mean_size, std_size)
            )
            # Keep objects at a plausible range: not on top of the sensor.
            margin = max(size[0], size[1])
            x = self._rng.uniform(
                grid.x_range[0] + margin + 3.0, grid.x_range[1] - margin
            )
            y = self._rng.uniform(grid.y_range[0] + margin, grid.y_range[1] - margin)
            z = -self.config.sensor_height + size[2] / 2.0
            yaw = self._rng.uniform(-np.pi, np.pi)
            boxes.append(BoundingBox3D((x, y, z), size, yaw, label=label))
        return boxes

    def _beam_grid(self) -> tuple:
        """Elevation and azimuth sample angles of the scanner, radians."""
        cfg = self.config
        elevations = np.deg2rad(np.linspace(-24.8, 2.0, cfg.num_beams))
        if cfg.azimuth_fov >= 360.0:
            azimuths = np.deg2rad(
                np.arange(-180.0, 180.0, cfg.azimuth_resolution)
            )
        else:
            half = cfg.azimuth_fov / 2.0
            azimuths = np.deg2rad(np.arange(-half, half, cfg.azimuth_resolution))
        return elevations, azimuths

    def _ground_returns(self, boxes: list) -> np.ndarray:
        """Ray-cast every beam to the ground plane, honoring occlusions."""
        cfg = self.config
        elevations, azimuths = self._beam_grid()
        down = elevations[elevations < np.deg2rad(-0.5)]
        elev_grid, azim_grid = np.meshgrid(down, azimuths, indexing="ij")
        ranges = cfg.sensor_height / np.tan(-elev_grid)
        x = ranges * np.cos(azim_grid)
        y = ranges * np.sin(azim_grid)
        z = np.full_like(x, -cfg.sensor_height)
        # Small height jitter models road roughness / grass.
        z = z + self._rng.normal(0.0, 0.03, size=z.shape)
        points = np.stack([x.ravel(), y.ravel(), z.ravel()], axis=1)
        in_range = (
            (points[:, 0] >= cfg.grid.x_range[0])
            & (points[:, 0] < cfg.grid.x_range[1])
            & (points[:, 1] >= cfg.grid.y_range[0])
            & (points[:, 1] < cfg.grid.y_range[1])
        )
        points = points[in_range]
        return points[~self._shadowed(points, boxes)]

    def _shadowed(self, points: np.ndarray, boxes: list) -> np.ndarray:
        """Mask ground points whose beam passes through an object footprint."""
        shadow = np.zeros(len(points), dtype=bool)
        ranges = np.linalg.norm(points[:, :2], axis=1)
        azimuths = np.arctan2(points[:, 1], points[:, 0])
        for box in boxes:
            center_range = float(np.linalg.norm(box.center[:2]))
            if center_range < 1e-3:
                continue
            center_azimuth = float(np.arctan2(box.center[1], box.center[0]))
            half_width = max(box.size[0], box.size[1]) / 2.0
            angular_half = np.arctan2(half_width, center_range)
            delta = np.abs(
                np.angle(np.exp(1j * (azimuths - center_azimuth)))
            )
            shadow |= (delta < angular_half) & (ranges > center_range)
        return shadow

    def _object_returns(self, box: BoundingBox3D) -> np.ndarray:
        """Sample returns on the sensor-facing surfaces of an object.

        Point count scales with the solid angle the object subtends, so
        near objects are dense and far objects sparse, as in real sweeps.
        """
        center_range = float(np.linalg.norm(box.center[:2]))
        if center_range < 1.0:
            center_range = 1.0
        visible_area = box.size[1] * box.size[2] + box.size[0] * box.size[2]
        density = 4000.0 / (center_range**2)
        count = int(min(2000, max(5, visible_area * density)))
        # Sample on the two sensor-facing faces in the box's local frame.
        length, width, height = box.size
        face = self._rng.random(count) < 0.5
        local = np.empty((count, 3))
        local[face, 0] = self._rng.uniform(-length / 2, length / 2, face.sum())
        local[face, 1] = -width / 2.0
        local[~face, 0] = -length / 2.0
        local[~face, 1] = self._rng.uniform(-width / 2, width / 2, (~face).sum())
        local[:, 2] = self._rng.uniform(-height / 2, height / 2, count)
        local[:, :2] += self._rng.normal(0.0, 0.02, size=(count, 2))
        cos_yaw, sin_yaw = np.cos(box.yaw), np.sin(box.yaw)
        world_x = local[:, 0] * cos_yaw - local[:, 1] * sin_yaw + box.center[0]
        world_y = local[:, 0] * sin_yaw + local[:, 1] * cos_yaw + box.center[1]
        world_z = local[:, 2] + box.center[2]
        return np.stack([world_x, world_y, world_z], axis=1)
