"""Point cloud data substrate: grids, sweeps, synthetic scenes, pillars."""

from .grids import (
    GRIDS,
    KITTI_GRID,
    MINI_GRID,
    NUSCENES_FINE_GRID,
    NUSCENES_GRID,
    GridSpec,
    get_grid,
)
from .pillars import PillarBatch, gather_from_dense, scatter_to_dense, voxelize
from .pointcloud import BoundingBox3D, PointCloud
from .synthetic import (
    KITTI_SCENE,
    OBJECT_TEMPLATES,
    SceneConfig,
    SceneGenerator,
    nuscenes_scene_config,
)

__all__ = [
    "GRIDS",
    "KITTI_GRID",
    "KITTI_SCENE",
    "MINI_GRID",
    "NUSCENES_FINE_GRID",
    "NUSCENES_GRID",
    "OBJECT_TEMPLATES",
    "BoundingBox3D",
    "GridSpec",
    "PillarBatch",
    "PointCloud",
    "SceneConfig",
    "SceneGenerator",
    "gather_from_dense",
    "get_grid",
    "nuscenes_scene_config",
    "scatter_to_dense",
    "voxelize",
]
