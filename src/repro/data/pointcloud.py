"""Point cloud containers and ground-truth box structures.

A point cloud is a set of points ``(x, y, z)`` with per-point features
(LiDAR intensity here).  Ground-truth boxes are axis-aligned in BEV with a
yaw angle, matching the KITTI/nuScenes annotation convention the paper's
benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BoundingBox3D:
    """An oriented 3D bounding box in world coordinates.

    Attributes:
        center: (x, y, z) of the box center, meters.
        size: (length, width, height), meters.
        yaw: Rotation around the z axis, radians.
        label: Class name, e.g. ``"car"``.
        score: Detection confidence (1.0 for ground truth).
    """

    center: tuple
    size: tuple
    yaw: float
    label: str = "car"
    score: float = 1.0

    def bev_corners(self) -> np.ndarray:
        """Return the four BEV corners as a (4, 2) array of (x, y)."""
        length, width, _ = self.size
        dx, dy = length / 2.0, width / 2.0
        corners = np.array(
            [[dx, dy], [dx, -dy], [-dx, -dy], [-dx, dy]], dtype=np.float64
        )
        cos_yaw, sin_yaw = np.cos(self.yaw), np.sin(self.yaw)
        rotation = np.array([[cos_yaw, -sin_yaw], [sin_yaw, cos_yaw]])
        return corners @ rotation.T + np.array(self.center[:2])

    def bev_aabb(self) -> tuple:
        """Return the axis-aligned BEV bounds (xmin, ymin, xmax, ymax)."""
        corners = self.bev_corners()
        xmin, ymin = corners.min(axis=0)
        xmax, ymax = corners.max(axis=0)
        return (xmin, ymin, xmax, ymax)

    def contains_bev(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized BEV point-in-box test.

        Args:
            xy: (N, 2) array of (x, y) positions.

        Returns:
            Boolean mask of shape (N,).
        """
        rel = xy - np.array(self.center[:2])
        cos_yaw, sin_yaw = np.cos(-self.yaw), np.sin(-self.yaw)
        local_x = rel[:, 0] * cos_yaw - rel[:, 1] * sin_yaw
        local_y = rel[:, 0] * sin_yaw + rel[:, 1] * cos_yaw
        length, width, _ = self.size
        return (np.abs(local_x) <= length / 2.0) & (np.abs(local_y) <= width / 2.0)


@dataclass
class PointCloud:
    """A LiDAR sweep: point positions plus per-point intensity.

    Attributes:
        points: (N, 3) float32 array of (x, y, z).
        intensity: (N,) float32 array of reflectance in [0, 1].
        boxes: Ground-truth boxes attached to the sweep (may be empty).
    """

    points: np.ndarray
    intensity: np.ndarray
    boxes: list = field(default_factory=list)

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float32)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {self.points.shape}")
        self.intensity = np.asarray(self.intensity, dtype=np.float32)
        if self.intensity.shape != (len(self.points),):
            raise ValueError("intensity must be one value per point")

    def __len__(self) -> int:
        return len(self.points)

    def crop(self, grid) -> "PointCloud":
        """Return a copy keeping only points inside ``grid``'s 3D range."""
        x, y, z = self.points[:, 0], self.points[:, 1], self.points[:, 2]
        mask = (
            (x >= grid.x_range[0])
            & (x < grid.x_range[1])
            & (y >= grid.y_range[0])
            & (y < grid.y_range[1])
            & (z >= grid.z_range[0])
            & (z < grid.z_range[1])
        )
        return PointCloud(self.points[mask], self.intensity[mask], list(self.boxes))

    def concat(self, other: "PointCloud") -> "PointCloud":
        """Merge two sweeps, keeping both boxes lists."""
        return PointCloud(
            np.concatenate([self.points, other.points]),
            np.concatenate([self.intensity, other.intensity]),
            list(self.boxes) + list(other.boxes),
        )
