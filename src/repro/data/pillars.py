"""Pillar encoding: point cloud -> sparse BEV pillars -> pseudo-image.

PointPillars aggregates the points falling into each BEV cell (a *pillar*)
into a C-element feature vector via a small PointNet, then scatters the
active pillar vectors into a dense ``C x H x W`` pseudo-image.  This module
implements the voxelization / decoration / scatter steps; the learned
PointNet lives in :mod:`repro.nn.pointnet`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grids import GridSpec
from .pointcloud import PointCloud

#: Per-point decorated feature layout used by PointPillars:
#: (x, y, z, intensity, xc, yc, zc, xp, yp) where *c is the offset from the
#: pillar's point centroid and *p the offset from the pillar center.
DECORATED_DIM = 9


@dataclass
class PillarBatch:
    """Active pillars extracted from one sweep.

    Attributes:
        coords: (P, 2) int32 array of (row, col) pillar coordinates sorted
            in CPR (row-major) order.
        point_features: (P, max_points, 9) float32 decorated point features,
            zero padded.
        point_counts: (P,) int32 number of real points per pillar.
        grid: The grid the coordinates refer to.
    """

    coords: np.ndarray
    point_features: np.ndarray
    point_counts: np.ndarray
    grid: GridSpec

    @property
    def num_active(self) -> int:
        """Number of active (non-empty) pillars."""
        return len(self.coords)

    @property
    def occupancy(self) -> float:
        """Fraction of grid cells that are active."""
        return self.num_active / self.grid.num_pillars


def voxelize(
    cloud: PointCloud,
    grid: GridSpec,
    max_points_per_pillar: int = 32,
    max_pillars: int = None,
) -> PillarBatch:
    """Bin a point cloud into active pillars with decorated point features.

    Args:
        cloud: Input sweep (will be cropped to the grid range).
        grid: Target BEV grid.
        max_points_per_pillar: Points beyond this per pillar are dropped
            (random subsampling would need an RNG; we keep the first K,
            which matches the deterministic OpenPCDet fast path).
        max_pillars: Optional cap on the number of pillars (densest first
            is *not* used; we keep CPR order and truncate, as the CUDA
            voxelizer does).

    Returns:
        A :class:`PillarBatch` with coordinates in CPR order.
    """
    cloud = cloud.crop(grid)
    if len(cloud) == 0:
        empty = np.zeros((0, 2), dtype=np.int32)
        return PillarBatch(
            coords=empty,
            point_features=np.zeros(
                (0, max_points_per_pillar, DECORATED_DIM), dtype=np.float32
            ),
            point_counts=np.zeros(0, dtype=np.int32),
            grid=grid,
        )

    cols = ((cloud.points[:, 0] - grid.x_range[0]) / grid.pillar_size).astype(np.int64)
    rows = ((cloud.points[:, 1] - grid.y_range[0]) / grid.pillar_size).astype(np.int64)
    cols = np.clip(cols, 0, grid.nx - 1)
    rows = np.clip(rows, 0, grid.ny - 1)
    flat = rows * grid.nx + cols

    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    unique_flat, first_index, counts = np.unique(
        flat_sorted, return_index=True, return_counts=True
    )
    if max_pillars is not None and len(unique_flat) > max_pillars:
        unique_flat = unique_flat[:max_pillars]
        first_index = first_index[:max_pillars]
        counts = counts[:max_pillars]

    num_pillars = len(unique_flat)
    coords = np.stack(
        [unique_flat // grid.nx, unique_flat % grid.nx], axis=1
    ).astype(np.int32)

    features = np.zeros(
        (num_pillars, max_points_per_pillar, DECORATED_DIM), dtype=np.float32
    )
    kept_counts = np.minimum(counts, max_points_per_pillar).astype(np.int32)

    points_sorted = cloud.points[order]
    intensity_sorted = cloud.intensity[order]
    for i in range(num_pillars):
        start = first_index[i]
        keep = int(kept_counts[i])
        pts = points_sorted[start : start + keep]
        inten = intensity_sorted[start : start + keep]
        centroid = points_sorted[start : start + counts[i]].mean(axis=0)
        center_x = grid.x_range[0] + (coords[i, 1] + 0.5) * grid.pillar_size
        center_y = grid.y_range[0] + (coords[i, 0] + 0.5) * grid.pillar_size
        features[i, :keep, 0:3] = pts
        features[i, :keep, 3] = inten
        features[i, :keep, 4:7] = pts - centroid
        features[i, :keep, 7] = pts[:, 0] - center_x
        features[i, :keep, 8] = pts[:, 1] - center_y

    return PillarBatch(
        coords=coords,
        point_features=features,
        point_counts=kept_counts,
        grid=grid,
    )


def scatter_to_dense(
    coords: np.ndarray, features: np.ndarray, grid_shape: tuple
) -> np.ndarray:
    """Scatter per-pillar feature vectors into a dense pseudo-image.

    Args:
        coords: (P, 2) (row, col) active pillar coordinates.
        features: (P, C) pillar feature vectors.
        grid_shape: (rows, cols) of the dense grid.

    Returns:
        (C, rows, cols) float32 pseudo-image with zeros at inactive cells.
    """
    rows, cols = grid_shape
    channels = features.shape[1]
    dense = np.zeros((channels, rows, cols), dtype=features.dtype)
    dense[:, coords[:, 0], coords[:, 1]] = features.T
    return dense


def gather_from_dense(dense: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Gather pillar vectors back out of a dense pseudo-image.

    Inverse of :func:`scatter_to_dense` restricted to ``coords``.
    """
    return dense[:, coords[:, 0], coords[:, 1]].T
