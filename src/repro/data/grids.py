"""Bird's-eye-view grid specifications for the benchmark datasets.

Pillar-based detectors discretize the LiDAR range into an X x Y grid of
pillars (vertical columns).  The grid geometry fixes the size of the dense
pseudo-image and therefore the dense computation cost; the *active* subset
of pillars fixes the sparse cost.  The constants below follow the standard
OpenPCDet configurations for PointPillars on KITTI and CenterPoint-Pillar /
PillarNet on nuScenes, which the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GridSpec:
    """Geometry of a BEV pillar grid.

    Attributes:
        name: Human-readable dataset tag.
        x_range: (min, max) of the forward axis, meters.
        y_range: (min, max) of the lateral axis, meters.
        z_range: (min, max) of the vertical axis, meters.
        pillar_size: Edge length of one square pillar, meters.
    """

    name: str
    x_range: tuple
    y_range: tuple
    z_range: tuple
    pillar_size: float

    @property
    def nx(self) -> int:
        """Number of pillar columns along x."""
        return int(round((self.x_range[1] - self.x_range[0]) / self.pillar_size))

    @property
    def ny(self) -> int:
        """Number of pillar rows along y."""
        return int(round((self.y_range[1] - self.y_range[0]) / self.pillar_size))

    @property
    def shape(self) -> tuple:
        """Grid shape as (rows, cols) = (ny, nx)."""
        return (self.ny, self.nx)

    @property
    def num_pillars(self) -> int:
        """Total number of grid cells in the dense pseudo-image."""
        return self.nx * self.ny

    def contains(self, xyz) -> bool:
        """Return True when a 3D point falls inside the detection range."""
        x, y, z = xyz
        return (
            self.x_range[0] <= x < self.x_range[1]
            and self.y_range[0] <= y < self.y_range[1]
            and self.z_range[0] <= z < self.z_range[1]
        )


#: KITTI configuration used by PointPillars: 432 x 496 pillar grid.
KITTI_GRID = GridSpec(
    name="kitti",
    x_range=(0.0, 69.12),
    y_range=(-39.68, 39.68),
    z_range=(-3.0, 1.0),
    pillar_size=0.16,
)

#: nuScenes configuration used by CenterPoint-Pillar: 512 x 512 pillar grid.
NUSCENES_GRID = GridSpec(
    name="nuscenes",
    x_range=(-51.2, 51.2),
    y_range=(-51.2, 51.2),
    z_range=(-5.0, 3.0),
    pillar_size=0.2,
)

#: Finer nuScenes grid used by PillarNet's sparse encoder (0.1 m pillars).
NUSCENES_FINE_GRID = GridSpec(
    name="nuscenes-fine",
    x_range=(-51.2, 51.2),
    y_range=(-51.2, 51.2),
    z_range=(-5.0, 3.0),
    pillar_size=0.1,
)

#: Reduced grid for accuracy experiments where numpy training must be fast.
MINI_GRID = GridSpec(
    name="mini",
    x_range=(0.0, 20.48),
    y_range=(-10.24, 10.24),
    z_range=(-3.0, 1.0),
    pillar_size=0.32,
)

GRIDS = {
    grid.name: grid
    for grid in (KITTI_GRID, NUSCENES_GRID, NUSCENES_FINE_GRID, MINI_GRID)
}


def get_grid(name: str) -> GridSpec:
    """Look up a registered grid by name.

    Raises:
        KeyError: If ``name`` is not a registered grid.
    """
    if name not in GRIDS:
        raise KeyError(f"unknown grid {name!r}; known: {sorted(GRIDS)}")
    return GRIDS[name]
