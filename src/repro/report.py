"""``repro report`` — render a run's table + manifest as an artifact.

A finished ``repro run --out results.json`` leaves two files behind: the
:class:`~repro.engine.result.ExperimentTable` sink and the
:class:`~repro.engine.manifest.RunManifest` next to it.  This module
turns that pair into something a human reads:

* **text** (the default) — a manifest summary plus the paper-style
  figure tables, through the same
  :func:`~repro.analysis.report.format_table` helpers every benchmark
  prints with;
* **HTML** (``--html``) — one self-contained file (inline CSS, no
  external assets) with the manifest summary, the full result table and
  the figure set; every figure table carries a stable ``id`` (``fig2``,
  ``fig5``, ``fig9``, ``fig10``, ``fig11``) so tests — and anchors —
  can address it;
* **diff** (``--diff other.json``) — two runs joined row-for-row on
  (scenario, frame, model, simulator), metric deltas plus a
  manifest-field comparison, to explain *why* two tables differ.

The figure set mirrors the source paper's evaluation:

====== ==================================================== ==========
id     contents                                             paper fig.
====== ==================================================== ==========
fig2   per-layer workload (inputs / outputs / MACs)         Fig. 2
fig5   per-layer sparse overhead fraction                   Fig. 5
fig9   speedup over the baseline simulator (latency)        Fig. 9
fig10  energy per frame by simulator                        Fig. 10
fig11  PE utilization and DRAM traffic by simulator         Fig. 11
====== ==================================================== ==========

Figures are *derived from the table*, not stored: a figure with no
backing data (e.g. fig10 when no simulator models energy) is simply
omitted.  Per-layer figures aggregate through the same
:class:`~repro.analysis.sparsity.SparsityAnalyzer` the run manifest's
streaming analytics use, so report and manifest never disagree.
"""

from __future__ import annotations

import html
from pathlib import Path

from .analysis.report import format_table
from .analysis.sparsity import SparsityAnalyzer
from .engine.manifest import RunManifest, manifest_path_for
from .engine.result import RESULT_COLUMNS, ExperimentTable

#: Metric columns a diff compares (the non-label RESULT_COLUMNS).
_DIFF_METRICS = (
    "cycles",
    "latency_ms",
    "fps",
    "energy_mj",
    "dram_bytes",
    "utilization",
)

#: Manifest fields the diff compares field-for-field.
_MANIFEST_DIFF_FIELDS = (
    "name", "spec_hash", "git_rev", "backend", "created",
)


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def load_table(path) -> ExperimentTable:
    """Read a ``repro run --out`` JSON sink back as a table."""
    return ExperimentTable.from_json(str(path))


def load_manifest_for(results_path, manifest_path=None):
    """The manifest next to a result sink, or None when absent.

    ``manifest_path`` overrides the ``results.manifest.json``
    convention; an explicit path that does not exist (or does not
    parse) raises instead of silently reporting without provenance.
    """
    if manifest_path is not None:
        return RunManifest.load(manifest_path)
    candidate = manifest_path_for(results_path)
    if not candidate.exists():
        return None
    return RunManifest.load(candidate)


# ---------------------------------------------------------------------------
# figure builders (table -> {"id", "title", "headers", "rows"})
# ---------------------------------------------------------------------------


def _numeric(value):
    return (isinstance(value, (int, float))
            and not isinstance(value, bool))


def _cell_metric(table: ExperimentTable, metric: str, scenario: str,
                 model: str, simulator: str):
    """One representative value per (scenario, model, simulator) cell.

    Batched scenarios contribute their ``"mean"`` aggregate row;
    otherwise the mean of the cell's per-frame (or single) rows.
    Returns None when the simulator does not model the metric.
    """
    sub = table.filter(scenario=scenario, model=model,
                       simulator=simulator)
    mean_rows = sub.filter(frame="mean")
    pick = mean_rows if len(mean_rows) else sub
    values = [value for value in pick.column(metric).tolist()
              if _numeric(value)]
    if not values:
        return None
    return sum(values) / len(values)


def _cells(table: ExperimentTable):
    """Every (scenario, model) pair, in table order."""
    return [(scenario, model)
            for scenario in table.scenarios
            for model in table.models
            if len(table.filter(scenario=scenario, model=model))]


def layer_aggregates(table: ExperimentTable) -> list:
    """Per-(model, layer) field aggregates over the whole table.

    The same :class:`~repro.analysis.sparsity.SparsityAnalyzer`
    aggregation the run manifest's streaming analytics use, recomputed
    from the serialized rows — so a report built from the sink alone
    matches the manifest built during the run.
    """
    analyzer = SparsityAnalyzer()
    for result in table.results:
        analyzer.ingest_result(result)
    return analyzer.layer_stats()


def fig_workload(table: ExperimentTable) -> dict:
    """fig2: per-layer workload (inputs / outputs / MACs means)."""
    rows = []
    for entry in layer_aggregates(table):
        fields = entry["fields"]
        picked = [fields.get(name) for name in
                  ("inputs", "outputs", "macs")]
        if all(stat is None for stat in picked):
            continue
        rows.append(tuple([entry["model"], entry["layer"]] + [
            "-" if stat is None else stat["mean"] for stat in picked
        ]))
    if not rows:
        return None
    return {
        "id": "fig2",
        "title": "Per-layer workload (paper Fig. 2)",
        "headers": ["model", "layer", "inputs", "outputs", "macs"],
        "rows": rows,
    }


def fig_overhead(table: ExperimentTable) -> dict:
    """fig5: per-layer sparse overhead fraction (mean / min / max)."""
    rows = []
    for entry in layer_aggregates(table):
        stat = entry["fields"].get("overhead_fraction")
        if stat is None:
            continue
        rows.append((entry["model"], entry["layer"], stat["mean"],
                     stat["min"], stat["max"]))
    if not rows:
        return None
    return {
        "id": "fig5",
        "title": "Per-layer sparse overhead fraction (paper Fig. 5)",
        "headers": ["model", "layer", "mean", "min", "max"],
        "rows": rows,
    }


def pick_baseline(table: ExperimentTable, baseline: str = None) -> str:
    """The speedup baseline: explicit, else a dense-family simulator,
    else the table's first simulator."""
    simulators = table.simulators
    if baseline is not None:
        if baseline not in simulators:
            raise ValueError(
                f"baseline simulator {baseline!r} not in this table "
                f"(has {simulators})"
            )
        return baseline
    for name in simulators:
        if "dense" in str(name).lower():
            return name
    return simulators[0] if simulators else None


def fig_speedup(table: ExperimentTable, baseline: str = None) -> dict:
    """fig9: latency speedup of every simulator over the baseline."""
    baseline = pick_baseline(table, baseline)
    others = [name for name in table.simulators if name != baseline]
    if baseline is None or not others:
        return None
    rows = []
    for scenario, model in _cells(table):
        base = _cell_metric(table, "latency_ms", scenario, model,
                            baseline)
        for simulator in others:
            latency = _cell_metric(table, "latency_ms", scenario,
                                   model, simulator)
            speedup = (base / latency
                       if _numeric(base) and _numeric(latency)
                       and latency else None)
            rows.append((scenario, model, simulator,
                         "-" if latency is None else latency,
                         "-" if speedup is None else speedup))
    if not rows:
        return None
    return {
        "id": "fig9",
        "title": f"Speedup over {baseline} (paper Fig. 9)",
        "headers": ["scenario", "model", "simulator", "latency_ms",
                    "speedup"],
        "rows": rows,
        "baseline": baseline,
    }


def fig_energy(table: ExperimentTable) -> dict:
    """fig10: per-frame energy by simulator."""
    rows = []
    for scenario, model in _cells(table):
        for simulator in table.simulators:
            energy = _cell_metric(table, "energy_mj", scenario, model,
                                  simulator)
            if energy is not None:
                rows.append((scenario, model, simulator, energy))
    if not rows:
        return None
    return {
        "id": "fig10",
        "title": "Energy per frame (paper Fig. 10)",
        "headers": ["scenario", "model", "simulator", "energy_mj"],
        "rows": rows,
    }


def fig_utilization(table: ExperimentTable) -> dict:
    """fig11: PE utilization and DRAM traffic by simulator."""
    rows = []
    for scenario, model in _cells(table):
        for simulator in table.simulators:
            utilization = _cell_metric(table, "utilization", scenario,
                                       model, simulator)
            dram = _cell_metric(table, "dram_bytes", scenario, model,
                                simulator)
            if utilization is None and dram is None:
                continue
            rows.append((scenario, model, simulator,
                         "-" if utilization is None else utilization,
                         "-" if dram is None else dram))
    if not rows:
        return None
    return {
        "id": "fig11",
        "title": "PE utilization and DRAM traffic (paper Fig. 11)",
        "headers": ["scenario", "model", "simulator", "utilization",
                    "dram_bytes"],
        "rows": rows,
    }


def fig_phase_timeline(manifest) -> dict:
    """Phase timeline: where a traced run's time went, per span name.

    Reads the manifest's ``telemetry.spans`` profile (written by runs
    with tracing on — ``repro run --trace-out`` or
    ``REPRO_ENGINE_TELEMETRY=1``); untraced manifests yield no figure.
    The share column drives the HTML bar, mirroring the Perfetto
    timeline the exported Chrome trace gives interactively.
    """
    spans = None
    if manifest is not None and manifest.telemetry:
        spans = manifest.telemetry.get("spans")
    if not spans:
        return None
    total = sum(int(entry.get("micros") or 0) for entry in spans.values())
    rows = []
    for name, entry in sorted(spans.items(),
                              key=lambda item: -int(
                                  item[1].get("micros") or 0)):
        micros = int(entry.get("micros") or 0)
        rows.append((
            name,
            int(entry.get("count") or 0),
            round(micros / 1e6, 6),
            round(100.0 * micros / total, 2) if total else 0.0,
        ))
    return {
        "id": "fig-phases",
        "title": "Phase timeline (traced span totals)",
        "headers": ["phase", "spans", "seconds", "share %"],
        "rows": rows,
    }


def build_figures(table: ExperimentTable, baseline: str = None) -> list:
    """The full figure set for one table (figures lacking data are
    omitted, never emitted empty)."""
    figures = [
        fig_workload(table),
        fig_overhead(table),
        fig_speedup(table, baseline),
        fig_energy(table),
        fig_utilization(table),
    ]
    return [figure for figure in figures if figure is not None]


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


def _row_key(record: dict) -> tuple:
    frame = record.get("frame")
    return (record.get("scenario"), str(frame), record.get("model"),
            record.get("simulator"))


def diff_tables(table_a: ExperimentTable,
                table_b: ExperimentTable) -> dict:
    """Metric-level diff of two tables joined on
    (scenario, frame, model, simulator).

    One row per joined cell and metric where the two runs disagree
    (``ratio`` is b/a when both are numeric and a is nonzero); rows
    present in only one table are listed with the other side as
    ``"missing"``.
    """
    records_a = {_row_key(r): r for r in table_a.to_records()}
    records_b = {_row_key(r): r for r in table_b.to_records()}
    rows = []
    matched = 0
    for key, record_a in records_a.items():
        record_b = records_b.get(key)
        label = "/".join(str(part) for part in key)
        if record_b is None:
            rows.append((label, "(row)", "present", "missing", "-"))
            continue
        matched += 1
        for metric in _DIFF_METRICS:
            value_a = record_a.get(metric)
            value_b = record_b.get(metric)
            if value_a == value_b:
                continue
            ratio = (value_b / value_a
                     if _numeric(value_a) and _numeric(value_b)
                     and value_a else "-")
            rows.append((
                label, metric,
                "-" if value_a is None else value_a,
                "-" if value_b is None else value_b,
                ratio,
            ))
    for key in records_b:
        if key not in records_a:
            label = "/".join(str(part) for part in key)
            rows.append((label, "(row)", "missing", "present", "-"))
    return {
        "id": "diff",
        "title": (f"Metric differences ({matched} joined rows, "
                  f"{len(rows)} difference(s))"),
        "headers": ["row", "metric", "a", "b", "ratio b/a"],
        "rows": rows,
        "matched": matched,
    }


def diff_manifests(manifest_a, manifest_b) -> dict:
    """Field-for-field manifest comparison (provenance of a diff)."""
    rows = []
    for side, manifest in (("a", manifest_a), ("b", manifest_b)):
        if manifest is None:
            rows.append(("(manifest)", f"{side}: missing", "", ""))
    if manifest_a is not None and manifest_b is not None:
        for name in _MANIFEST_DIFF_FIELDS:
            value_a = getattr(manifest_a, name)
            value_b = getattr(manifest_b, name)
            if value_a != value_b:
                rows.append((name, value_a, value_b, "differs"))
        settings_a = manifest_a.settings or {}
        settings_b = manifest_b.settings or {}
        for key in sorted(set(settings_a) | set(settings_b)):
            if settings_a.get(key) != settings_b.get(key):
                rows.append((f"settings.{key}", settings_a.get(key),
                             settings_b.get(key), "differs"))
    return {
        "id": "manifest-diff",
        "title": "Manifest differences",
        "headers": ["field", "a", "b", ""],
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# manifest summary rows (shared by text and HTML)
# ---------------------------------------------------------------------------


def _manifest_summary_rows(manifest: RunManifest) -> list:
    rows = [
        ("name", manifest.name),
        ("created", manifest.created),
        ("spec hash", manifest.spec_hash or "-"),
        ("git revision", manifest.git_rev or "-"),
        ("backend", manifest.backend or "-"),
    ]
    for key, value in (manifest.settings or {}).items():
        rows.append((f"settings.{key}", value))
    table = manifest.table or {}
    if table:
        rows.append(("table rows", table.get("rows")))
        rows.append(("simulators",
                     ", ".join(str(s) for s in
                               table.get("simulators") or [])))
    for phase in manifest.phases or []:
        rows.append((f"phase {phase.get('name')}",
                     f"{phase.get('seconds', 0):.3f} s"))
    units = manifest.units or []
    if units:
        total = sum(unit.get("seconds", 0) for unit in units)
        workers = sorted({unit.get("worker") for unit in units
                          if unit.get("worker")})
        rows.append(("work units",
                     f"{len(units)} "
                     f"({total:.3f} s total unit time)"))
        if workers:
            rows.append(("workers", ", ".join(workers)))
    cache = manifest.cache or {}
    if cache:
        rows.append(("cache hits/misses",
                     f"{cache.get('hits', 0)}/"
                     f"{cache.get('misses', 0)} "
                     f"(disk {cache.get('disk_hits', 0)} hit / "
                     f"{cache.get('disk_writes', 0)} written)"))
        rows.append(("delta tracing",
                     f"{cache.get('delta_layers', 0)} layer(s) via "
                     f"delta, {cache.get('full_layers', 0)} full"))
    analysis = manifest.analysis or {}
    if analysis:
        rows.append(("analytics",
                     f"{analysis.get('rows_ingested', 0)} row(s), "
                     f"{analysis.get('layers', 0)} layer(s) tracked"))
    dist = manifest.dist or {}
    if dist:
        stats = dist.get("stats") or {}
        roster = dist.get("workers") or []
        rows.append(("dist", f"{len(roster)} worker(s), "
                             f"stats {stats}"))
    return rows


# ---------------------------------------------------------------------------
# text rendering
# ---------------------------------------------------------------------------


def render_text(table: ExperimentTable, manifest: RunManifest = None,
                figures: list = None, extra_sections: list = None,
                ) -> str:
    """The full report as plain text (manifest summary + figures)."""
    sections = []
    if manifest is not None:
        sections.append(format_table(
            ["field", "value"], _manifest_summary_rows(manifest),
            title="run manifest",
        ))
    elif table is not None:
        sections.append("run manifest: none found next to the table")
    if table is not None:
        sections.append(format_table(
            list(RESULT_COLUMNS),
            [tuple("-" if value is None else value for value in row)
             for row in table.rows()],
            title=f"results ({len(table)} rows)",
        ))
    for figure in (figures or []):
        sections.append(format_table(
            figure["headers"], figure["rows"], title=figure["title"],
        ))
    for section in (extra_sections or []):
        sections.append(format_table(
            section["headers"], section["rows"],
            title=section["title"],
        ))
    return "\n\n".join(sections) + "\n"


# ---------------------------------------------------------------------------
# HTML rendering (single file, inline CSS, no external assets)
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid #c5c5d5; padding: 0.25rem 0.6rem;
         font-size: 0.85rem; text-align: left; }
th { background: #eaeaf2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { background: linear-gradient(to right, #4a6fa5 var(--w),
       transparent var(--w)); }
.note { color: #555; font-size: 0.85rem; }
"""


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def _html_table(headers, rows, table_id: str = None,
                bar_column: int = None) -> str:
    """One ``<table>``; ``bar_column`` adds an inline-CSS bar scaled to
    the column's maximum (the chart rendering — no script, no assets)."""
    peak = 0.0
    if bar_column is not None:
        for row in rows:
            value = row[bar_column] if bar_column < len(row) else None
            if _numeric(value):
                peak = max(peak, abs(float(value)))
    parts = ["<table" + (f' id="{table_id}"' if table_id else "") + ">"]
    parts.append(
        "<tr>" + "".join(f"<th>{html.escape(str(h))}</th>"
                         for h in headers) + "</tr>"
    )
    for row in rows:
        cells = []
        for position, value in enumerate(row):
            text = html.escape(_format_value(value))
            classes = ["num"] if _numeric(value) else []
            style = ""
            if (bar_column is not None and position == bar_column
                    and _numeric(value) and peak):
                classes.append("bar")
                width = 100.0 * abs(float(value)) / peak
                style = f' style="--w:{width:.1f}%"'
            attrs = (f' class="{" ".join(classes)}"'
                     if classes else "") + style
            cells.append(f"<td{attrs}>{text}</td>")
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</table>")
    return "\n".join(parts)


def render_html(table: ExperimentTable, manifest: RunManifest = None,
                figures: list = None, extra_sections: list = None,
                title: str = "repro report") -> str:
    """The full report as one self-contained HTML document."""
    body = [f"<h1>{html.escape(title)}</h1>"]
    body.append("<h2>Run manifest</h2>")
    if manifest is not None:
        body.append(_html_table(
            ["field", "value"], _manifest_summary_rows(manifest),
            table_id="manifest",
        ))
    else:
        body.append('<p class="note">no manifest found next to the '
                    "table</p>")
    if table is not None:
        body.append(f"<h2>Results ({len(table)} rows)</h2>")
        body.append(_html_table(
            list(RESULT_COLUMNS),
            [tuple("-" if value is None else value
                   for value in row) for row in table.rows()],
            table_id="results",
        ))
    for figure in (figures or []):
        body.append(f"<h2>{html.escape(figure['title'])}</h2>")
        bar_column = len(figure["headers"]) - 1 \
            if figure["id"] in ("fig9", "fig10", "fig-phases") else None
        body.append(_html_table(figure["headers"], figure["rows"],
                                table_id=figure["id"],
                                bar_column=bar_column))
    for section in (extra_sections or []):
        body.append(f"<h2>{html.escape(section['title'])}</h2>")
        body.append(_html_table(section["headers"], section["rows"],
                                table_id=section.get("id")))
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )


# ---------------------------------------------------------------------------
# the high-level entry the CLI calls
# ---------------------------------------------------------------------------


def build_report(results_path, manifest_path=None, diff_path=None,
                 as_html: bool = False, baseline: str = None) -> str:
    """Assemble a full report (or diff report) as text or HTML.

    Args:
        results_path: The run's ``.json`` result sink.
        manifest_path: Explicit manifest override (default: the
            ``results.manifest.json`` convention, optional).
        diff_path: A second result sink; switches to diff mode.
        as_html: Emit the single-file HTML artifact instead of text.
        baseline: Simulator name for fig9 speedups (default: a
            dense-family simulator, else the table's first).
    """
    table = load_table(results_path)
    manifest = load_manifest_for(results_path,
                                 manifest_path=manifest_path)
    name = Path(results_path).name
    if diff_path is not None:
        other = load_table(diff_path)
        other_manifest = load_manifest_for(diff_path)
        sections = [
            diff_manifests(manifest, other_manifest),
            diff_tables(table, other),
        ]
        title = f"repro diff: {name} vs {Path(diff_path).name}"
        if as_html:
            return render_html(None, manifest=None, figures=None,
                               extra_sections=sections, title=title)
        return render_text(None, manifest=None, figures=None,
                           extra_sections=sections)
    figures = build_figures(table, baseline=baseline)
    timeline = fig_phase_timeline(manifest)
    if timeline is not None:
        figures.append(timeline)
    if as_html:
        return render_html(table, manifest=manifest, figures=figures,
                           title=f"repro report: {name}")
    return render_text(table, manifest=manifest, figures=figures)
