"""Direct-mapped cache model.

Used by the cache-based sparse-dataflow baseline the paper compares the
GSU against (Fig. 6(c)) and by the PointAcc performance simulator
(Sec. IV-B4): both employ a direct-mapped cache with 64-byte lines in
front of DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss counters of one simulation."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class DirectMappedCache:
    """A direct-mapped, write-allocate cache of byte addresses."""

    def __init__(self, size_bytes: int = 32 * 1024, line_bytes: int = 64,
                 hit_cycles: int = 1):
        if size_bytes % line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.num_lines = size_bytes // line_bytes
        self.hit_cycles = hit_cycles
        self._tags = np.full(self.num_lines, -1, dtype=np.int64)
        self.stats = CacheStats()

    def reset(self) -> None:
        self._tags[...] = -1
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch one address; returns True on hit (allocates on miss)."""
        line = address // self.line_bytes
        index = line % self.num_lines
        self.stats.accesses += 1
        if self._tags[index] == line:
            self.stats.hits += 1
            return True
        self._tags[index] = line
        self.stats.misses += 1
        return False

    def process_trace(self, addresses) -> np.ndarray:
        """Touch a sequence of addresses; returns the per-access hit mask."""
        addresses = np.asarray(addresses, dtype=np.int64)
        hits = np.zeros(len(addresses), dtype=bool)
        lines = addresses // self.line_bytes
        indexes = lines % self.num_lines
        tags = self._tags
        for position in range(len(addresses)):
            index = indexes[position]
            if tags[index] == lines[position]:
                hits[position] = True
            else:
                tags[index] = lines[position]
        self.stats.accesses += len(addresses)
        num_hits = int(hits.sum())
        self.stats.hits += num_hits
        self.stats.misses += len(addresses) - num_hits
        return hits

    def miss_addresses(self, addresses) -> np.ndarray:
        """Trace helper: addresses (line-aligned) that went to DRAM."""
        addresses = np.asarray(addresses, dtype=np.int64)
        hits = self.process_trace(addresses)
        lines = addresses[~hits] // self.line_bytes
        return lines * self.line_bytes
