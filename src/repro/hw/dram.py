"""DRAM timing and energy model (Ramulator substitute).

The paper feeds DRAM command traces into Ramulator; offline we implement a
bank/row-buffer timing model with an open-page policy that captures the
effect every SPADE result depends on: *streamed, monotonically-increasing
addresses are row-buffer friendly; cache-miss refetches are not* (Fig. 6c).

Timing parameters default to DDR4-2400-like values expressed in accelerator
clock cycles at 1 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DRAMConfig:
    """Timing/energy parameters of the DRAM device.

    Attributes:
        num_banks: Banks striped by row address.
        row_bytes: Row-buffer size per bank.
        burst_bytes: Bytes transferred per burst (access granularity).
        t_cl: Column access latency (cycles).
        t_rcd: Row-to-column delay (cycles).
        t_rp: Precharge latency (cycles).
        t_burst: Data-transfer cycles per burst.
        energy_activate_pj: Energy per row activation.
        energy_rw_pj_per_byte: Read/write energy per byte moved.
        energy_background_pj_per_cycle: Static background power term.
    """

    num_banks: int = 16
    row_bytes: int = 2048
    burst_bytes: int = 64
    t_cl: int = 14
    t_rcd: int = 14
    t_rp: int = 14
    t_burst: int = 4
    energy_activate_pj: float = 180.0
    energy_rw_pj_per_byte: float = 15.0
    energy_background_pj_per_cycle: float = 0.05


@dataclass
class DRAMStats:
    """Aggregate outcome of a command trace."""

    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    cycles: int = 0
    bytes_moved: int = 0
    energy_pj: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class DRAMModel:
    """Open-page DRAM with per-bank row buffers.

    Accesses are burst-granular: the caller passes byte addresses and the
    model maps them to (bank, row) and charges hit or miss latency.  Banks
    overlap only in the sense that consecutive same-bank row hits pipeline
    at ``t_burst`` — an intentionally simple single-channel model, adequate
    because all compared schemes see the same device.
    """

    def __init__(self, config: DRAMConfig = None):
        self.config = config or DRAMConfig()
        self._open_rows = {}
        self.stats = DRAMStats()

    def reset(self) -> None:
        self._open_rows = {}
        self.stats = DRAMStats()

    def _locate(self, address: int) -> tuple:
        row_index = address // self.config.row_bytes
        return row_index % self.config.num_banks, row_index

    def access(self, address: int, is_write: bool = False) -> int:
        """One burst access; returns its latency in cycles."""
        cfg = self.config
        bank, row = self._locate(address)
        if self._open_rows.get(bank) == row:
            latency = cfg.t_cl + cfg.t_burst
            self.stats.row_hits += 1
        else:
            latency = cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_burst
            self.stats.row_misses += 1
            self.stats.energy_pj += cfg.energy_activate_pj
            self._open_rows[bank] = row
        self.stats.accesses += 1
        self.stats.cycles += latency
        self.stats.bytes_moved += cfg.burst_bytes
        self.stats.energy_pj += cfg.energy_rw_pj_per_byte * cfg.burst_bytes
        self.stats.energy_pj += cfg.energy_background_pj_per_cycle * latency
        return latency

    def process_trace(self, addresses, is_write: bool = False) -> DRAMStats:
        """Run a sequence of burst addresses; returns the updated stats."""
        cfg = self.config
        addresses = np.asarray(addresses, dtype=np.int64)
        if len(addresses) == 0:
            return self.stats
        # Vectorized fast path replicating access() semantics.
        rows = addresses // cfg.row_bytes
        banks = rows % cfg.num_banks
        hits = np.zeros(len(addresses), dtype=bool)
        open_rows = dict(self._open_rows)
        # Row-hit detection must be sequential per bank; do it with a
        # python loop over bank-run boundaries (fast enough: one compare
        # per access).
        for index in range(len(addresses)):
            bank, row = int(banks[index]), int(rows[index])
            if open_rows.get(bank) == row:
                hits[index] = True
            else:
                open_rows[bank] = row
        self._open_rows = open_rows
        num_hits = int(hits.sum())
        num_misses = len(addresses) - num_hits
        hit_latency = cfg.t_cl + cfg.t_burst
        miss_latency = cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_burst
        cycles = num_hits * hit_latency + num_misses * miss_latency
        self.stats.accesses += len(addresses)
        self.stats.row_hits += num_hits
        self.stats.row_misses += num_misses
        self.stats.cycles += cycles
        self.stats.bytes_moved += len(addresses) * cfg.burst_bytes
        self.stats.energy_pj += (
            num_misses * cfg.energy_activate_pj
            + len(addresses) * cfg.energy_rw_pj_per_byte * cfg.burst_bytes
            + cycles * cfg.energy_background_pj_per_cycle
        )
        return self.stats


def streaming_trace(num_bytes: int, base: int = 0, burst_bytes: int = 64):
    """Burst addresses of a perfectly sequential transfer."""
    count = (num_bytes + burst_bytes - 1) // burst_bytes
    return base + np.arange(count, dtype=np.int64) * burst_bytes
