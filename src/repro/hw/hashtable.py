"""Hash-table rule-generation cycle model (SpConv-library baseline).

GPU sparse-convolution libraries build the input-output mapping with a
hash table over output coordinates.  Following the paper's comparison
setup (Sec. III-B3): main table sized ``2 x P`` with chained overflow
storage for up to ``K x P`` entries (K = 9 for a 3x3 kernel).

Every candidate output coordinate (one per active input per kernel
offset) must probe the table; collisions walk the chain.  The model
computes the exact expected probe count from the real bucket occupancy of
the frame's coordinates, so collision behaviour — the reason the RGU wins
by ~5.9x — comes from data, not a fudge factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.coords import flatten, kernel_offsets


@dataclass
class HashRuleGenResult:
    """Outcome of hash-based rule generation for one layer."""

    num_inputs: int
    num_candidates: int
    num_unique_outputs: int
    table_size: int
    max_chain: int
    total_probes: int
    cycles: int


class HashTableRuleGen:
    """Cycle model of hash-table based mapping generation.

    Args:
        table_scale: Main-table slots per active pillar (paper: 2).
        probe_cycles: Average cycles per probe step; above 1 because each
            chain step is a dependent memory access and the chained
            overflow storage suffers bank conflicts under parallel probes.
        insert_cycles: Extra cycles to append a chain entry.
    """

    def __init__(self, table_scale: int = 2, probe_cycles: float = 1.7,
                 insert_cycles: int = 2):
        self.table_scale = table_scale
        self.probe_cycles = probe_cycles
        self.insert_cycles = insert_cycles

    def run(self, in_coords: np.ndarray, shape: tuple,
            kernel_size: int = 3) -> HashRuleGenResult:
        """Simulate mapping generation for a dilating sparse convolution."""
        in_coords = np.asarray(in_coords, dtype=np.int64)
        num_inputs = len(in_coords)
        if num_inputs == 0:
            return HashRuleGenResult(0, 0, 0, 0, 0, 0, 0)

        offsets = kernel_offsets(kernel_size).astype(np.int64)
        candidates = (in_coords[None, :, :] + offsets[:, None, :]).reshape(-1, 2)
        in_bounds = (
            (candidates[:, 0] >= 0)
            & (candidates[:, 0] < shape[0])
            & (candidates[:, 1] >= 0)
            & (candidates[:, 1] < shape[1])
        )
        keys = flatten(candidates[in_bounds], shape)
        table_size = self.table_scale * num_inputs
        buckets = keys % table_size

        # Group candidates by (bucket, key).  Within a bucket, the i-th
        # distinct key sits at chain depth i; every probe for that key
        # walks depth+1 steps.  This is the exact cost of chained probing
        # with first-come insertion order (ties broken by key id, which
        # only permutes depths and leaves the total cost distribution
        # equivalent in expectation).
        order = np.lexsort((keys, buckets))
        sorted_buckets = buckets[order]
        sorted_keys = keys[order]
        new_key = np.ones(len(sorted_keys), dtype=bool)
        new_key[1:] = (sorted_keys[1:] != sorted_keys[:-1]) | (
            sorted_buckets[1:] != sorted_buckets[:-1]
        )
        new_bucket = np.ones(len(sorted_buckets), dtype=bool)
        new_bucket[1:] = sorted_buckets[1:] != sorted_buckets[:-1]
        # Chain depth of each distinct key = running count of distinct keys
        # seen in its bucket so far.
        distinct_counter = np.cumsum(new_key)
        bucket_start_counter = np.where(new_bucket, distinct_counter - 1, 0)
        np.maximum.accumulate(bucket_start_counter, out=bucket_start_counter)
        depth = distinct_counter - 1 - bucket_start_counter  # 0-based depth
        probes_per_candidate = depth + 1
        total_probes = int(probes_per_candidate.sum())
        num_unique = int(new_key.sum())
        max_chain = int(depth.max()) + 1 if len(depth) else 0

        cycles = int(
            total_probes * self.probe_cycles + num_unique * self.insert_cycles
        )
        return HashRuleGenResult(
            num_inputs=num_inputs,
            num_candidates=len(keys),
            num_unique_outputs=num_unique,
            table_size=table_size,
            max_chain=max_chain,
            total_probes=total_probes,
            cycles=cycles,
        )
