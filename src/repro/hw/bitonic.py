"""Bitonic merge-sorter model (PointAcc-style rule generation).

PointAcc (MICRO'21) generates sparse-convolution mappings by sorting all
candidate output positions with an N-element bitonic merge network and
identifying unique coordinates via an intersection map.  This module
provides:

* a functional bitonic sorting network (used to validate the comparator
  counting and as a genuine substrate, not a stub);
* a cycle model following the paper's complexity expression
  ``O(log(N) * log(P/N) * (P/N))`` for an N-length merger (N = 64 in the
  paper's comparison), applied to the K*P candidate stream of a sparse
  convolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def bitonic_sort(values: np.ndarray, descending: bool = False) -> tuple:
    """Sort with an explicit bitonic network; returns (sorted, comparators).

    Input length must be a power of two (pad externally).  The comparator
    count is the classic ``n/2 * log2(n) * (log2(n)+1) / 2``.
    """
    values = np.asarray(values).copy()
    n = len(values)
    if n & (n - 1):
        raise ValueError("bitonic_sort requires a power-of-two length")
    comparators = 0
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            partner = np.arange(n) ^ j
            mask = partner > np.arange(n)
            ascending = (np.arange(n) & k) == 0
            left = values[mask]
            right = values[partner[mask]]
            swap = np.where(
                ascending[mask], left > right, left < right
            )
            comparators += int(mask.sum())
            lo = np.where(swap, right, left)
            hi = np.where(swap, left, right)
            values[mask] = lo
            values[partner[mask]] = hi
            j //= 2
        k *= 2
    if descending:
        values = values[::-1]
    return values, comparators


@dataclass
class MergeSortRuleGenResult:
    """Outcome of sorter-based rule generation for one layer."""

    num_inputs: int
    num_candidates: int
    cycles: int


class BitonicMergeRuleGen:
    """Cycle model of PointAcc's merge-sorter mapping.

    Args:
        merger_length: N, the hardware merge network width (paper: 64).
        pass_overhead: Pipeline drain/fill cycles per merge pass.
    """

    def __init__(self, merger_length: int = 64, pass_overhead: int = 8):
        self.merger_length = merger_length
        self.pass_overhead = pass_overhead

    def run(self, num_inputs: int, kernel_size: int = 3) -> MergeSortRuleGenResult:
        """Cycles to build the mapping with per-offset sorts + intersection.

        PointAcc sorts the shifted input positions *per kernel offset* and
        identifies unique output coordinates through an intersection map
        against the (sorted) output list.  Per offset:

        * sorting P elements with an N-wide merger costs the paper's
          ``log2(N) * log2(P/N) * (P/N)`` merge-network cycles;
        * the intersection walks the sorted offset stream against the
          output stream at one element per cycle (~2P).
        """
        if num_inputs == 0:
            return MergeSortRuleGenResult(0, 0, 0)
        num_offsets = kernel_size * kernel_size
        candidates = num_inputs * num_offsets
        n = self.merger_length
        blocks = max(1, -(-num_inputs // n))
        passes = max(1, int(np.ceil(np.log2(max(blocks, 2)))))
        depth = int(np.log2(n))
        sort_cycles = depth * passes * (blocks + self.pass_overhead)
        intersect_cycles = 2 * num_inputs
        total = num_offsets * (sort_cycles + intersect_cycles)
        return MergeSortRuleGenResult(
            num_inputs=num_inputs,
            num_candidates=candidates,
            cycles=total,
        )
