"""SRAM energy and area model (CACTI substitute).

CACTI is a table/analytic model of cache and SRAM arrays; the constants
below are calibrated to published 32 nm numbers (the paper's technology):
a 32 KB SRAM bank reads at roughly 10 pJ per 64-bit word and occupies
about 0.05 mm^2.  Per-access energy scales with the square root of
capacity (bitline/wordline length), the standard first-order CACTI
behaviour; area scales linearly with a fixed per-bit cost plus periphery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Read energy of a 32 KB array per byte accessed, picojoules (32 nm).
_BASE_READ_PJ_PER_BYTE = 1.25
#: Write costs ~10% more than read in small arrays.
_WRITE_FACTOR = 1.1
#: Reference capacity for the sqrt scaling law.
_REFERENCE_BYTES = 32 * 1024
#: SRAM cell area including periphery overhead, mm^2 per KB (32 nm).
_AREA_MM2_PER_KB = 0.0016
#: Fixed periphery area per array instance.
_AREA_PERIPHERY_MM2 = 0.002
#: Leakage power per KB, milliwatts (32 nm, worst case corner).
_LEAKAGE_MW_PER_KB = 0.012


@dataclass(frozen=True)
class SRAMModel:
    """Energy/area model of one SRAM array.

    Attributes:
        size_bytes: Array capacity.
        width_bytes: Port width (bytes per access).
    """

    size_bytes: int
    width_bytes: int = 8

    @property
    def _scale(self) -> float:
        return float(np.sqrt(max(self.size_bytes, 1) / _REFERENCE_BYTES))

    @property
    def read_energy_pj(self) -> float:
        """Energy of one read access (width_bytes wide)."""
        return _BASE_READ_PJ_PER_BYTE * self.width_bytes * self._scale

    @property
    def write_energy_pj(self) -> float:
        """Energy of one write access."""
        return self.read_energy_pj * _WRITE_FACTOR

    @property
    def area_mm2(self) -> float:
        """Silicon area of the array."""
        return _AREA_MM2_PER_KB * self.size_bytes / 1024 + _AREA_PERIPHERY_MM2

    @property
    def leakage_mw(self) -> float:
        """Static leakage power."""
        return _LEAKAGE_MW_PER_KB * self.size_bytes / 1024

    def energy_for_bytes(self, num_bytes: int, is_write: bool = False) -> float:
        """Energy to move ``num_bytes`` through the port, picojoules."""
        accesses = (num_bytes + self.width_bytes - 1) // self.width_bytes
        per_access = self.write_energy_pj if is_write else self.read_energy_pj
        return accesses * per_access
