"""Hardware substrates: DRAM, SRAM, caches, hash tables, sorters."""

from .bitonic import BitonicMergeRuleGen, MergeSortRuleGenResult, bitonic_sort
from .cache import CacheStats, DirectMappedCache
from .dram import DRAMConfig, DRAMModel, DRAMStats, streaming_trace
from .hashtable import HashRuleGenResult, HashTableRuleGen
from .sram import SRAMModel

__all__ = [
    "BitonicMergeRuleGen",
    "CacheStats",
    "DRAMConfig",
    "DRAMModel",
    "DRAMStats",
    "DirectMappedCache",
    "HashRuleGenResult",
    "HashTableRuleGen",
    "MergeSortRuleGenResult",
    "SRAMModel",
    "bitonic_sort",
    "streaming_trace",
]
