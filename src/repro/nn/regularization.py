"""Vector-sparsity regularization for dynamic pillar pruning.

The paper (Fig. 1(f), Sec. II-B) adds loss terms that "regulate pillar
magnitude across channels, motivated by Group Lasso but ... dynamically
driving the magnitude of unimportant pillars in varying locations towards
zero".  Concretely: every BEV location's channel vector is one group; the
regularizer is the sum of group L2 norms, whose gradient shrinks small
(background) pillars toward exactly zero while barely moving large
(foreground) ones.
"""

from __future__ import annotations

import numpy as np

from .layers import Module


def group_lasso_loss(feature_map: np.ndarray, eps: float = 1e-8) -> float:
    """Sum of per-pillar channel-vector L2 norms of a (N, C, H, W) map."""
    norms = np.sqrt((feature_map.astype(np.float64) ** 2).sum(axis=1) + eps)
    return float(norms.sum())


def group_lasso_grad(feature_map: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Gradient of :func:`group_lasso_loss` w.r.t. the feature map."""
    norms = np.sqrt((feature_map**2).sum(axis=1, keepdims=True) + eps)
    return (feature_map / norms).astype(np.float32)


class VectorSparsityRegularizer(Module):
    """Identity layer that injects the Group-Lasso gradient in backward.

    Insert after the layer whose pillar vectors should be driven sparse.
    ``last_loss`` exposes the penalty value for logging; ``strength`` is
    the paper's regularization weight (lambda).
    """

    def __init__(self, strength: float = 1e-3):
        self.strength = strength
        self.last_loss = 0.0
        self._input = None

    def forward(self, x):
        self._input = x
        self.last_loss = self.strength * group_lasso_loss(x)
        return x

    def backward(self, grad):
        if self.strength == 0.0 or not self.training:
            return grad
        return grad + self.strength * group_lasso_grad(self._input)


class TopKVectorPruner(Module):
    """Dynamic Top-K pillar pruning with straight-through gradients.

    During pruning-aware fine-tuning the layer keeps only the
    ``keep_ratio`` largest-magnitude pillar vectors of each sample and
    zeroes the rest, exactly what the SPADE pruning unit does at inference.
    Gradients flow only through surviving pillars (the true gradient of
    the pruned forward for the kept set).
    """

    def __init__(self, keep_ratio: float = 1.0, enabled: bool = True):
        if not 0.0 <= keep_ratio <= 1.0:
            raise ValueError("keep_ratio must be in [0, 1]")
        self.keep_ratio = keep_ratio
        self.enabled = enabled
        self._mask = None
        #: Fraction of previously-active pillars kept in the last forward.
        self.last_kept_fraction = 1.0

    def forward(self, x):
        if not self.enabled or self.keep_ratio >= 1.0:
            self._mask = None
            return x
        n, c, h, w = x.shape
        norms = np.sqrt((x**2).sum(axis=1))  # (N, H, W)
        mask = np.zeros((n, h, w), dtype=bool)
        active_before = 0
        active_after = 0
        for sample in range(n):
            flat = norms[sample].ravel()
            active = np.nonzero(flat > 0)[0]
            active_before += len(active)
            keep = int(round(len(active) * self.keep_ratio))
            if keep <= 0:
                continue
            kept = active[np.argpartition(flat[active], -keep)[-keep:]]
            active_after += len(kept)
            sample_mask = mask[sample].ravel()
            sample_mask[kept] = True
        self.last_kept_fraction = (
            active_after / active_before if active_before else 1.0
        )
        self._mask = mask[:, None, :, :]
        return x * self._mask

    def backward(self, grad):
        if self._mask is None:
            return grad
        return grad * self._mask
