"""Dynamic-pruning training recipe: regularize, then Top-K fine-tune.

The paper's recipe (Fig. 1(f)):

1. train with *vector sparsity regularization* so background pillar vectors
   shrink toward zero;
2. *pruning-aware fine-tuning*: keep training with Top-K pillar pruning
   active at the user-specified sparsity so the model is robust to it;
3. retrieve a representative threshold per layer for inference.

This module wires those phases together for any model exposing a
``pruner`` (:class:`~repro.nn.regularization.TopKVectorPruner`) and a
``regularizer`` (:class:`~repro.nn.regularization.VectorSparsityRegularizer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .optim import Adam


@dataclass
class FinetuneReport:
    """Loss trajectory of a pruning-aware fine-tuning run."""

    phase_losses: dict = field(default_factory=dict)
    final_keep_ratio: float = 1.0

    def add(self, phase: str, loss: float) -> None:
        self.phase_losses.setdefault(phase, []).append(loss)


def train_epochs(model, batches, loss_fn, optimizer, epochs, report, phase):
    """Generic epoch loop: forward, loss, backward, step."""
    for _ in range(epochs):
        epoch_loss = 0.0
        for inputs, targets in batches:
            optimizer.zero_grad()
            outputs = model(inputs)
            loss, grad = loss_fn(outputs, targets)
            if getattr(model, "regularizer", None) is not None:
                loss += model.regularizer.last_loss
            model.backward(grad)
            optimizer.step()
            epoch_loss += loss
        report.add(phase, epoch_loss / max(len(batches), 1))
    return report


def dynamic_pruning_finetune(
    model,
    batches,
    loss_fn,
    target_keep_ratio: float,
    pretrain_epochs: int = 4,
    finetune_epochs: int = 4,
    lr: float = 1e-3,
    regularization_strength: float = None,
) -> FinetuneReport:
    """Run the full two-phase dynamic-pruning recipe on a model.

    Args:
        model: A module with optional ``regularizer`` and ``pruner`` attrs.
        batches: Iterable of (inputs, targets) reused every epoch.
        loss_fn: ``f(outputs, targets) -> (loss, grad_outputs)``.
        target_keep_ratio: Fraction of active pillars kept by Top-K.
        pretrain_epochs: Phase-1 epochs (regularized, no pruning).
        finetune_epochs: Phase-2 epochs (pruning active).
        lr: Adam learning rate (halved for phase 2).
        regularization_strength: Overrides the model's lambda if given.

    Returns:
        A :class:`FinetuneReport`.
    """
    report = FinetuneReport(final_keep_ratio=target_keep_ratio)
    model.train()
    if regularization_strength is not None and model.regularizer is not None:
        model.regularizer.strength = regularization_strength

    # Phase 1: vector-sparsity regularization drives background pillars to 0.
    if model.pruner is not None:
        model.pruner.enabled = False
    optimizer = Adam(model.parameters(), lr=lr)
    train_epochs(model, batches, loss_fn, optimizer, pretrain_epochs, report,
                 "regularize")

    # Phase 2: Top-K pruning-aware fine-tuning at the target sparsity.
    if model.pruner is not None:
        model.pruner.enabled = True
        model.pruner.keep_ratio = target_keep_ratio
    optimizer = Adam(model.parameters(), lr=lr * 0.5)
    train_epochs(model, batches, loss_fn, optimizer, finetune_epochs, report,
                 "finetune")
    model.eval()
    return report
