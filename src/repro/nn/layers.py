"""Minimal neural-network layers with explicit backward passes.

The paper trains its sparse models in PyTorch; offline we implement the
needed subset from scratch on numpy: dense Conv2D (for the scaled-down
accuracy experiments), Linear, BatchNorm, ReLU and Sequential containers.
Every layer caches what its backward pass needs and accumulates parameter
gradients into :class:`Parameter` objects consumed by the optimizers.

Array convention: feature maps are (N, C, H, W); point features are
(..., F) for Linear layers.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A learnable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter({self.name or 'unnamed'}, shape={self.data.shape})"


class Module:
    """Base class: forward/backward with parameter discovery."""

    training: bool = True

    def parameters(self) -> list:
        """All parameters of this module and its submodules."""
        found = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                found.append(value)
            elif isinstance(value, Module):
                found.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        found.extend(item.parameters())
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def forward(self, x):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x):
        return self.forward(x)


class Linear(Module):
    """Affine map on the last axis: y = x @ W + b."""

    def __init__(self, in_features: int, out_features: int, rng=None, bias=True):
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(in_features, out_features)), "linear.weight"
        )
        self.bias = Parameter(np.zeros(out_features), "linear.bias") if bias else None
        self._input = None

    def forward(self, x):
        self._input = x
        y = x @ self.weight.data
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, grad):
        x = self._input
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad.reshape(-1, grad.shape[-1])
        self.weight.grad += flat_x.T @ flat_g
        if self.bias is not None:
            self.bias.grad += flat_g.sum(axis=0)
        return grad @ self.weight.data.T


class ReLU(Module):
    """Elementwise rectifier."""

    def __init__(self):
        self._mask = None

    def forward(self, x):
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad):
        return grad * self._mask


class Conv2D(Module):
    """Dense 2D convolution, kernel in weight-index order (K*K, Cin, Cout).

    Supports odd kernels with implicit same-padding and integer stride —
    everything the pillar backbones need.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        rng=None,
        bias: bool = True,
    ):
        rng = rng or np.random.default_rng(0)
        if kernel_size % 2 == 0:
            raise ValueError("Conv2D expects an odd kernel; use Deconv2D to upsample")
        fan_in = kernel_size * kernel_size * in_channels
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            rng.normal(
                0.0, scale, size=(kernel_size * kernel_size, in_channels, out_channels)
            ),
            "conv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), "conv.bias") if bias else None
        self.kernel_size = kernel_size
        self.stride = stride
        self._input_padded = None
        self._input_shape = None

    def forward(self, x):
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        half = (k - 1) // 2
        out_h = (h + s - 1) // s
        out_w = (w + s - 1) // s
        padded = np.pad(x, ((0, 0), (0, 0), (half, half), (half, half)))
        self._input_padded = padded
        self._input_shape = x.shape
        out_channels = self.weight.data.shape[2]
        y = np.zeros((n, out_channels, out_h, out_w), dtype=np.float32)
        for index in range(k * k):
            dr, dc = index // k, index % k
            window = padded[:, :, dr : dr + h : s, dc : dc + w : s]
            y += np.einsum("nchw,co->nohw", window, self.weight.data[index])
        if self.bias is not None:
            y += self.bias.data[None, :, None, None]
        return y

    def backward(self, grad):
        n, c, h, w = self._input_shape
        k, s = self.kernel_size, self.stride
        half = (k - 1) // 2
        padded = self._input_padded
        grad_padded = np.zeros_like(padded)
        for index in range(k * k):
            dr, dc = index // k, index % k
            window = padded[:, :, dr : dr + h : s, dc : dc + w : s]
            self.weight.grad[index] += np.einsum("nchw,nohw->co", window, grad)
            grad_padded[:, :, dr : dr + h : s, dc : dc + w : s] += np.einsum(
                "nohw,co->nchw", grad, self.weight.data[index]
            )
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=(0, 2, 3))
        return grad_padded[:, :, half : half + h, half : half + w]


class Deconv2D(Module):
    """Non-overlapping transposed convolution (kernel = stride)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int, rng=None):
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_channels)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(stride * stride, in_channels, out_channels)),
            "deconv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), "deconv.bias")
        self.stride = stride
        self._input = None

    def forward(self, x):
        n, c, h, w = x.shape
        s = self.stride
        self._input = x
        out_channels = self.weight.data.shape[2]
        y = np.zeros((n, out_channels, h * s, w * s), dtype=np.float32)
        for index in range(s * s):
            dr, dc = index // s, index % s
            y[:, :, dr::s, dc::s] = np.einsum(
                "nchw,co->nohw", x, self.weight.data[index]
            )
        return y + self.bias.data[None, :, None, None]

    def backward(self, grad):
        s = self.stride
        grad_x = np.zeros_like(self._input)
        for index in range(s * s):
            dr, dc = index // s, index % s
            block = grad[:, :, dr::s, dc::s]
            self.weight.grad[index] += np.einsum(
                "nchw,nohw->co", self._input, block
            )
            grad_x += np.einsum("nohw,co->nchw", block, self.weight.data[index])
        self.bias.grad += grad.sum(axis=(0, 2, 3))
        return grad_x


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(channels), "bn.gamma")
        self.beta = Parameter(np.zeros(channels), "bn.beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self.momentum = momentum
        self.eps = eps
        self._cache = None

    def forward(self, x):
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape)
        return (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad):
        x_hat, inv_std, shape = self._cache
        n_elems = shape[0] * shape[2] * shape[3]
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))
        grad_hat = grad * self.gamma.data[None, :, None, None]
        if not self.training:
            return grad_hat * inv_std[None, :, None, None]
        sum_grad = grad_hat.sum(axis=(0, 2, 3))[None, :, None, None]
        sum_grad_xhat = (grad_hat * x_hat).sum(axis=(0, 2, 3))[None, :, None, None]
        return (
            inv_std[None, :, None, None]
            / n_elems
            * (n_elems * grad_hat - sum_grad - x_hat * sum_grad_xhat)
        )


class Sequential(Module):
    """Run modules in order; backward in reverse."""

    def __init__(self, *modules):
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad):
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def __iter__(self):
        return iter(self.modules)

    def __getitem__(self, index):
        return self.modules[index]


def conv_bn_relu(in_channels, out_channels, stride=1, rng=None) -> Sequential:
    """The standard backbone block: Conv3x3 -> BN -> ReLU."""
    return Sequential(
        Conv2D(in_channels, out_channels, 3, stride=stride, rng=rng, bias=False),
        BatchNorm2d(out_channels),
        ReLU(),
    )
