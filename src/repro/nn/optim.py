"""Optimizers for the numpy NN framework."""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.9, weight_decay=0.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            velocity *= self.momentum
            velocity += grad
            parameter.data -= self.lr * velocity

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            parameter.data -= (
                self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            )

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()
