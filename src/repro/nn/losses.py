"""Detection losses with analytic gradients."""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def bce_with_logits(logits: np.ndarray, targets: np.ndarray, weights=None) -> tuple:
    """Binary cross-entropy on logits.

    Returns:
        (mean loss, gradient w.r.t. logits).
    """
    probs = sigmoid(logits)
    eps = 1e-12
    loss = -(
        targets * np.log(probs + eps) + (1.0 - targets) * np.log(1.0 - probs + eps)
    )
    grad = probs - targets
    if weights is not None:
        loss = loss * weights
        grad = grad * weights
    count = max(logits.size, 1)
    return float(loss.sum() / count), (grad / count).astype(np.float32)


def focal_loss_with_logits(
    logits: np.ndarray, targets: np.ndarray, alpha: float = 0.25, gamma: float = 2.0
) -> tuple:
    """Focal loss (RetinaNet) used by the center-based heads.

    Returns:
        (mean loss, gradient w.r.t. logits).
    """
    probs = sigmoid(logits)
    eps = 1e-12
    p_t = targets * probs + (1.0 - targets) * (1.0 - probs)
    alpha_t = targets * alpha + (1.0 - targets) * (1.0 - alpha)
    modulator = (1.0 - p_t) ** gamma
    ce = -np.log(p_t + eps)
    loss = alpha_t * modulator * ce
    # d/dlogit of focal loss (standard closed form).
    d_pt = targets * probs * (1 - probs) - (1 - targets) * probs * (1 - probs)
    grad = alpha_t * (
        -gamma * (1.0 - p_t) ** (gamma - 1.0) * ce * d_pt
        - modulator / (p_t + eps) * d_pt
    )
    count = max(logits.size, 1)
    return float(loss.sum() / count), (grad / count).astype(np.float32)


def smooth_l1(pred: np.ndarray, target: np.ndarray, mask=None, beta: float = 1.0) -> tuple:
    """Huber / smooth-L1 regression loss.

    Returns:
        (mean loss over masked entries, gradient w.r.t. pred).
    """
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff < beta
    loss = np.where(quadratic, 0.5 * diff**2 / beta, abs_diff - 0.5 * beta)
    grad = np.where(quadratic, diff / beta, np.sign(diff))
    if mask is not None:
        loss = loss * mask
        grad = grad * mask
        count = max(float(mask.sum()), 1.0)
    else:
        count = max(pred.size, 1)
    return float(loss.sum() / count), (grad / count).astype(np.float32)
