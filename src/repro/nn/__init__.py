"""From-scratch numpy NN framework used by the accuracy experiments."""

from .finetune import FinetuneReport, dynamic_pruning_finetune, train_epochs
from .layers import (
    BatchNorm2d,
    Conv2D,
    Deconv2D,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    conv_bn_relu,
)
from .losses import bce_with_logits, focal_loss_with_logits, sigmoid, smooth_l1
from .optim import SGD, Adam
from .pointnet import PillarFeatureNet, PointwiseBatchNorm
from .quantization import (
    INT8_MAX,
    QuantParams,
    calibrate,
    quantization_snr_db,
    quantize_dequantize,
    quantized_matmul,
)
from .regularization import (
    TopKVectorPruner,
    VectorSparsityRegularizer,
    group_lasso_grad,
    group_lasso_loss,
)

__all__ = [
    "INT8_MAX",
    "SGD",
    "Adam",
    "BatchNorm2d",
    "Conv2D",
    "Deconv2D",
    "FinetuneReport",
    "Linear",
    "Module",
    "Parameter",
    "PillarFeatureNet",
    "PointwiseBatchNorm",
    "QuantParams",
    "ReLU",
    "Sequential",
    "TopKVectorPruner",
    "VectorSparsityRegularizer",
    "bce_with_logits",
    "calibrate",
    "conv_bn_relu",
    "dynamic_pruning_finetune",
    "focal_loss_with_logits",
    "group_lasso_grad",
    "group_lasso_loss",
    "quantization_snr_db",
    "quantize_dequantize",
    "quantized_matmul",
    "sigmoid",
    "smooth_l1",
    "train_epochs",
]
