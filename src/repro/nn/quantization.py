"""Symmetric int8 quantization with int32 accumulation.

Table I notes the benchmark models "quantized to use 8-bit multiplication
and 32-bit accumulation"; the accelerator's ops/energy accounting assumes
the same.  This module provides the quantize / dequantize / quantized
matmul primitives and the error metrics used to verify that quantization
preserves model behaviour on the functional networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

INT8_MAX = 127


@dataclass
class QuantParams:
    """Scale of a symmetric int8 quantizer (zero point fixed at 0)."""

    scale: float

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Real -> int8 with round-to-nearest and saturation."""
        q = np.round(x / self.scale)
        return np.clip(q, -INT8_MAX, INT8_MAX).astype(np.int8)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        """int8 -> real."""
        return q.astype(np.float32) * self.scale


def calibrate(x: np.ndarray, percentile: float = 99.9) -> QuantParams:
    """Pick a scale from an activation/weight sample.

    A high percentile (rather than the absolute max) clips rare outliers,
    the standard post-training-quantization calibration.
    """
    magnitude = np.abs(x)
    if magnitude.size == 0:
        return QuantParams(scale=1.0)
    bound = float(np.percentile(magnitude, percentile))
    bound = max(bound, 1e-8)
    return QuantParams(scale=bound / INT8_MAX)


def quantized_matmul(
    x_q: np.ndarray, w_q: np.ndarray, x_params: QuantParams, w_params: QuantParams
) -> np.ndarray:
    """int8 x int8 -> int32 accumulate -> dequantized float32 result."""
    accum = x_q.astype(np.int32) @ w_q.astype(np.int32)
    return accum.astype(np.float32) * (x_params.scale * w_params.scale)


def quantize_dequantize(x: np.ndarray, percentile: float = 99.9) -> np.ndarray:
    """Fake-quantize: round-trip through int8 (used for error studies)."""
    params = calibrate(x, percentile)
    return params.dequantize(params.quantize(x))


def quantization_snr_db(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB."""
    signal = float((reference.astype(np.float64) ** 2).sum())
    noise = float(((reference - quantized).astype(np.float64) ** 2).sum())
    if noise == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)
