"""Pillar Feature Network: the PointNet that encodes pillars.

PointPillars runs a shared Linear+BN+ReLU over the decorated points of each
pillar and max-pools over points, producing one C-element vector per active
pillar (the *pillar encoding* whose vector sparsity SPADE exploits).
"""

from __future__ import annotations

import numpy as np

from .layers import Linear, Module, Parameter, ReLU


class PointwiseBatchNorm(Module):
    """BatchNorm over all real points (masked), per feature channel."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(channels), "pbn.gamma")
        self.beta = Parameter(np.zeros(channels), "pbn.beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self.momentum = momentum
        self.eps = eps
        self._cache = None

    def forward(self, inputs):
        x, mask = inputs  # x: (P, M, C); mask: (P, M) booleans
        weights = mask[..., None].astype(np.float32)
        count = max(weights.sum(), 1.0)
        if self.training:
            mean = (x * weights).sum(axis=(0, 1)) / count
            var = (((x - mean) ** 2) * weights).sum(axis=(0, 1)) / count
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, weights, count)
        return (self.gamma.data * x_hat + self.beta.data, mask)

    def backward(self, grad):
        x_hat, inv_std, weights, count = self._cache
        grad = grad * weights
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 1))
        self.beta.grad += grad.sum(axis=(0, 1))
        grad_hat = grad * self.gamma.data
        if not self.training:
            return grad_hat * inv_std
        sum_grad = grad_hat.sum(axis=(0, 1))
        sum_grad_xhat = (grad_hat * x_hat).sum(axis=(0, 1))
        return (
            inv_std / count * (count * grad_hat - sum_grad - x_hat * sum_grad_xhat)
        ) * weights


class PillarFeatureNet(Module):
    """Shared-MLP + max-pool pillar encoder.

    Forward input is a :class:`repro.data.PillarBatch`-style pair of
    decorated point features (P, max_points, 9) and point counts (P,);
    output is (P, C) pillar feature vectors.
    """

    def __init__(self, in_features: int = 9, out_channels: int = 64, rng=None):
        rng = rng or np.random.default_rng(0)
        self.linear = Linear(in_features, out_channels, rng=rng, bias=False)
        self.norm = PointwiseBatchNorm(out_channels)
        self.relu = ReLU()
        self.out_channels = out_channels
        self._cache = None

    def forward(self, inputs):
        point_features, point_counts = inputs
        num_pillars, max_points, _ = point_features.shape
        mask = np.arange(max_points)[None, :] < point_counts[:, None]
        x = self.linear(point_features)
        normed, _ = self.norm((x, mask))
        activated = self.relu(normed)
        # Masked max over points: empty slots must never win the max.
        masked = np.where(mask[..., None], activated, -np.inf)
        if num_pillars == 0:
            self._cache = (mask, None, activated.shape)
            return np.zeros((0, self.out_channels), dtype=np.float32)
        argmax = masked.argmax(axis=1)
        pooled = np.take_along_axis(activated, argmax[:, None, :], axis=1)[:, 0, :]
        pooled = np.where(mask.any(axis=1)[:, None], pooled, 0.0)
        self._cache = (mask, argmax, activated.shape)
        return pooled.astype(np.float32)

    def backward(self, grad):
        mask, argmax, activated_shape = self._cache
        grad_activated = np.zeros(activated_shape, dtype=np.float32)
        if argmax is not None:
            np.put_along_axis(
                grad_activated, argmax[:, None, :], grad[:, None, :], axis=1
            )
        grad_normed = self.relu.backward(grad_activated)
        grad_x = self.norm.backward(grad_normed)
        return self.linear.backward(grad_x)
