"""SPADE (HPCA 2024) reproduction: sparse pillar-based 3D detection accelerator.

Package layout:

* :mod:`repro.data`      — point clouds, synthetic LiDAR scenes, pillars;
* :mod:`repro.sparse`    — vector-sparse convolution library (CPR, rules);
* :mod:`repro.nn`        — numpy NN framework + dynamic-pruning training;
* :mod:`repro.models`    — detector workloads, functional nets, metrics;
* :mod:`repro.hw`        — DRAM/SRAM/cache/sorter/hash substrates;
* :mod:`repro.core`      — the SPADE accelerator simulator (RGU/GSU/MXU);
* :mod:`repro.baselines` — SpConv2D-Acc, PointAcc, GPU/CPU/Jetson models;
* :mod:`repro.analysis`  — sparsity traces, trade-off studies, reports;
* :mod:`repro.engine`    — unified Simulator interface, trace cache, and
  the parallel multi-scenario experiment runner.
"""

__version__ = "1.0.0"
