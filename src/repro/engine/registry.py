"""Named-factory registries: the engine's plugin seam.

Simulators, frame providers and execution backends used to be wired
through if/elif ladders (``build_simulator``, ``resolve_backend``) and
hard-coded defaults — adding a simulator family meant editing engine
code.  This module replaces the ladders with three :class:`Registry`
instances and matching decorators:

* ``@register_simulator("family")``      — a factory turning the
  arguments of a ``"family-arg1-arg2"`` / ``"family:arg"`` spec string
  into a configured :class:`~repro.engine.simulators.Simulator`;
* ``@register_frame_provider("name")``   — a factory producing a
  :class:`~repro.engine.runner.FrameProvider`;
* ``@register_backend("name")``          — a factory producing a
  :class:`~repro.engine.backends.Backend`.

Third-party code registers its own entries without touching the engine:

    from repro.engine import Simulator, register_simulator

    @register_simulator("mysim")
    def build_mysim(*args):
        return MySimulator(*args)

and ``"mysim"`` immediately works everywhere a built-in spec string
does — ``ExperimentRunner(simulators=[...])``, declarative
:class:`~repro.engine.spec.ExperimentSpec` files, and the ``repro`` CLI
(``repro run`` / ``repro list simulators``).

Unknown names raise :class:`UnknownNameError` — a :class:`ValueError`
(and, for backward compatibility with the pre-registry ladders, also a
:class:`KeyError`) whose message lists every registered name.
"""

from __future__ import annotations


class UnknownNameError(KeyError, ValueError):
    """Lookup of a name no factory was registered under.

    Subclasses both :class:`ValueError` (the declarative-spec contract:
    a malformed or unknown spec string is a value error listing the
    valid choices) and :class:`KeyError` (what the pre-registry if/elif
    ladders raised, so existing ``except KeyError`` callers keep
    working).
    """

    # KeyError.__str__ repr-quotes the message; plain Exception
    # rendering keeps the "choices: [...]" listing readable.
    __str__ = Exception.__str__


class Registry:
    """One named-factory table with decorator-style registration.

    Args:
        kind: Human label used in error messages ("simulator",
            "backend", ...).
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories = {}

    def __contains__(self, name) -> bool:
        return self._normalize(name) in self._factories

    def __iter__(self):
        return iter(sorted(self._factories))

    def __len__(self) -> int:
        return len(self._factories)

    @staticmethod
    def _normalize(name) -> str:
        return str(name).strip().lower()

    def names(self) -> list:
        """Every registered name, sorted."""
        return sorted(self._factories)

    def register(self, name: str, factory=None, *, overwrite: bool = False):
        """Register ``factory`` under ``name``; usable as a decorator.

        Names are case-insensitive and must be unique unless
        ``overwrite=True`` (re-running a script that registers its own
        plugin should not explode on the second pass — such scripts pass
        ``overwrite=True`` deliberately).
        """
        key = self._normalize(name)
        if not key:
            raise ValueError(
                f"{self.kind} registry names must be non-empty strings, "
                f"got {name!r}"
            )

        def wrap(target):
            """Book ``target`` under the validated name."""
            if not overwrite and key in self._factories:
                raise ValueError(
                    f"{self.kind} {key!r} is already registered "
                    f"({self._factories[key]!r}); pass overwrite=True to "
                    f"replace it"
                )
            self._factories[key] = target
            return target

        if factory is not None:
            return wrap(factory)
        return wrap

    def unregister(self, name: str) -> None:
        """Drop one entry (primarily for tests and plugin reloads)."""
        self._factories.pop(self._normalize(name), None)

    def get(self, name: str):
        """The factory registered under ``name``.

        Raises:
            UnknownNameError: listing every registered name.
        """
        key = self._normalize(name)
        if key not in self._factories:
            raise UnknownNameError(
                f"unknown {self.kind} {str(name)!r}; "
                f"registered: {self.names()}"
            )
        return self._factories[key]

    def create(self, name: str, *args, **kwargs):
        """Instantiate: ``get(name)(*args, **kwargs)``."""
        return self.get(name)(*args, **kwargs)

    def describe(self, name: str) -> str:
        """First docstring line of the factory registered under ``name``."""
        doc = getattr(self.get(name), "__doc__", None) or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""


#: Simulator families resolvable from spec strings.
SIMULATORS = Registry("simulator")

#: Frame-provider factories resolvable from spec files.
FRAME_PROVIDERS = Registry("frame provider")

#: Execution-backend factories resolvable by name.
BACKENDS = Registry("backend")


def register_simulator(name: str, factory=None, *, overwrite: bool = False):
    """Register a simulator-family factory (decorator or direct call).

    The factory receives the dash/colon-separated arguments of the spec
    string after the family name — ``"spade-he-noopt"`` calls the
    ``"spade"`` factory with ``("he", "noopt")``, ``"platform:A6000"``
    calls ``"platform"`` with ``("a6000",)`` — and returns a configured
    :class:`~repro.engine.simulators.Simulator`.
    """
    return SIMULATORS.register(name, factory, overwrite=overwrite)


def register_frame_provider(name: str, factory=None, *,
                            overwrite: bool = False):
    """Register a frame-provider factory (decorator or direct call)."""
    return FRAME_PROVIDERS.register(name, factory, overwrite=overwrite)


def register_backend(name: str, factory=None, *, overwrite: bool = False):
    """Register an execution-backend factory (decorator or direct call)."""
    return BACKENDS.register(name, factory, overwrite=overwrite)
