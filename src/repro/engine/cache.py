"""Two-tier content-keyed trace cache: rulegen runs once per (model, frame).

Rule generation is the hot path of every experiment in this repo: tracing
a model geometrically (:func:`repro.analysis.sparsity.trace_model`) runs
:func:`repro.sparse.rulegen.build_rules` for every sparse layer, and the
historical benchmarks re-did that work per benchmark file, per repeat,
and per simulator.  :class:`TraceCache` memoizes the finished
:class:`~repro.analysis.sparsity.ModelTrace` under a content key — a
digest of the model's layer graph and the frame's exact active set — so
any number of simulators, sweeps and repeats share one trace.

The cache has two tiers:

* an **in-memory** tier (always on): thread-safe and
  duplicate-suppressing — when parallel workers request the same key
  simultaneously, exactly one computes and the rest wait for its result;
* an optional **persistent on-disk** tier: one pickle file per trace
  under a cache directory, content-addressed by the same key.  Because
  keys are content digests, traces become shippable artifacts — process
  workers, repeated benchmark runs and future distributed backends all
  hit the same files instead of re-tracing from scratch.  Enable it by
  passing ``disk_dir`` or by setting the ``REPRO_TRACE_CACHE_DIR``
  environment variable (which every default-constructed cache picks up).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from pathlib import Path

import numpy as np

from ..analysis.sparsity import ModelTrace, trace_model
from ..models.specs import ModelSpec
from . import faults, telemetry
from .settings import CACHE_DIR_ENV_VAR, UNSET, resolve_cache_dir

#: Sentinel distinguishing "no disk_dir given, use the environment" from
#: an explicit ``disk_dir=None`` (which disables the disk tier even when
#: the environment variable is set).  The environment read itself lives
#: in :mod:`repro.engine.settings` — the one resolver for every engine
#: knob.
_FROM_ENV = UNSET

#: Filename suffix of every persisted trace artifact — the one place
#: the naming scheme lives (path construction, eviction, the
#: ``repro cache`` scans).
TRACE_ARTIFACT_SUFFIX = ".trace.pkl"

#: Filename suffix corrupt artifacts are renamed to when quarantined:
#: they stop being loadable (or clearable as live entries) but stay on
#: disk for forensics.  Deliberately not an extension of
#: TRACE_ARTIFACT_SUFFIX globs.
QUARANTINE_SUFFIX = ".trace.quarantined"


def spec_fingerprint(spec: ModelSpec) -> str:
    """Deterministic digest of a model's layer graph.

    Two specs with the same layers produce the same fingerprint even if
    they are distinct objects; any change to channels, kernel, stride,
    conv type, pruning or ordering changes it.
    """
    parts = [spec.name, spec.base, spec.grid.name, str(spec.grid.shape)]
    for layer in spec.layers:
        parts.append(
            "|".join(
                str(value)
                for value in (
                    layer.name,
                    layer.op.value,
                    layer.conv_type.value if layer.conv_type else "-",
                    layer.in_channels,
                    layer.out_channels,
                    layer.kernel_size,
                    layer.stride,
                    layer.upsample,
                    layer.prune_keep,
                    layer.stage,
                )
            )
        )
    return hashlib.sha1("\n".join(parts).encode()).hexdigest()


def frame_fingerprint(coords: np.ndarray, importance: np.ndarray = None,
                      grid_shape: tuple = None) -> str:
    """Digest of one frame's exact active set (+ importance values)."""
    digest = hashlib.sha1()
    coords = np.ascontiguousarray(np.asarray(coords, dtype=np.int32))
    digest.update(coords.tobytes())
    digest.update(str(coords.shape).encode())
    if importance is not None:
        importance = np.ascontiguousarray(
            np.asarray(importance, dtype=np.float64)
        )
        digest.update(importance.tobytes())
    if grid_shape is not None:
        digest.update(str(tuple(grid_shape)).encode())
    return digest.hexdigest()


class TraceCache:
    """Thread-safe, content-keyed memoization of :func:`trace_model`.

    Args:
        maxsize: Optional in-memory entry cap; the oldest entry is
            evicted first (insertion order — traces are immutable once
            built, so plain FIFO keeps the implementation obvious).  The
            disk tier is never evicted by the cache; entries evicted
            from memory reload from disk when requested again.
        disk_dir: Directory of the persistent tier.  Defaults to the
            ``REPRO_TRACE_CACHE_DIR`` environment variable; pass ``None``
            explicitly to keep the cache memory-only regardless of the
            environment.
    """

    def __init__(self, maxsize: int = None, disk_dir=_FROM_ENV):
        self.maxsize = maxsize
        disk_dir = resolve_cache_dir(disk_dir)
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_writes = 0
        self.delta_layers = 0
        self.full_layers = 0
        self.quarantined = 0
        self._entries = {}
        self._inflight = {}
        self._labels = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key_for(self, spec: ModelSpec, coords: np.ndarray,
                importance: np.ndarray = None,
                grid_shape: tuple = None) -> str:
        """The content key of one (model, frame) pair."""
        return (
            spec_fingerprint(spec)
            + ":"
            + frame_fingerprint(coords, importance, grid_shape)
        )

    # -- disk tier ---------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        return self.disk_dir / f"{key}{TRACE_ARTIFACT_SUFFIX}"

    def _disk_load(self, key: str) -> ModelTrace:
        """The persisted trace for ``key``, or None.

        A missing, truncated or otherwise unreadable file is treated as
        a plain miss — the trace is recomputed and rewritten — so a
        crashed writer or a stale library version can never poison the
        cache permanently.  The unreadable artifact itself is
        *quarantined* (renamed aside with :data:`QUARANTINE_SUFFIX` and
        counted in :meth:`stats`), not silently deleted: corruption in
        a shared store is an operational signal, and the bytes stay
        available for forensics.
        """
        if self.disk_dir is None:
            return None
        try:
            with open(self._disk_path(key), "rb") as handle:
                trace = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self._quarantine(key)
            return None
        if not isinstance(trace, ModelTrace):
            self._quarantine(key)
            return None
        return trace

    def _quarantine(self, key: str) -> None:
        """Move a corrupt artifact aside and count it (the rewrite of a
        fresh trace then lands on the original path)."""
        path = self._disk_path(key)
        try:
            os.replace(path, path.with_name(f"{key}{QUARANTINE_SUFFIX}"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        telemetry.metrics().count("repro_cache_quarantined_total")
        with self._lock:
            self.quarantined += 1

    def _disk_store(self, key: str, trace: ModelTrace) -> bool:
        """Persist atomically (tmp + rename); failures are non-fatal."""
        if self.disk_dir is None:
            return False
        path = self._disk_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(trace, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        # Chaos harness: corrupt_cache:entry=N garbles the N-th stored
        # artifact after the fact, so the next load must quarantine it.
        if faults.check("cache.store", key=key) == "corrupt_cache":
            try:
                with open(path, "wb") as handle:
                    handle.write(b"corrupt trace artifact (injected)")
            except OSError:
                pass
        return True

    # -- lookup ------------------------------------------------------------

    def get_trace(self, spec: ModelSpec, coords: np.ndarray,
                  importance: np.ndarray = None,
                  grid_shape: tuple = None,
                  rulegen_shards: int = None,
                  prev_trace: ModelTrace = None,
                  delta_threshold: float = None,
                  label: tuple = None) -> ModelTrace:
        """The traced model for this exact (spec, frame), computing once.

        Lookup order: memory tier, disk tier, :func:`trace_model`.
        Concurrent callers with the same key block on the first caller's
        computation instead of duplicating it.  ``rulegen_shards`` and
        ``prev_trace`` / ``delta_threshold`` only affect how a missing
        trace is computed (row-parallel rulegen; delta-patching the
        previous sequential frame's rules) — never the key, because both
        paths are bit-identical to the full build, so cache hits and
        shipped artifacts stay interchangeable across modes.  ``label``
        is an optional (scenario, model) tag recorded for
        :meth:`stats` — purely observability, also key-neutral.
        """
        key = self.key_for(spec, coords, importance, grid_shape)
        if label is not None:
            with self._lock:
                self._labels[key] = tuple(label)
        while True:
            with self._lock:
                if key in self._entries:
                    self.hits += 1
                    telemetry.metrics().count(
                        "repro_cache_gets_total", result="hit")
                    return self._entries[key]
                event = self._inflight.get(key)
                if event is None:
                    # We are the computing thread.
                    self._inflight[key] = threading.Event()
                    break
            # Another thread is computing this key; wait and re-check.
            event.wait()
        from_disk = True
        try:
            with telemetry.span("cache-get", "cache"):
                trace = self._disk_load(key)
            if trace is None:
                from_disk = False
                span_name = ("delta-patch" if prev_trace is not None
                             else "trace")
                with telemetry.span(span_name, "engine"):
                    trace = trace_model(spec, coords, importance,
                                        grid_shape=grid_shape,
                                        rulegen_shards=rulegen_shards,
                                        prev_trace=prev_trace,
                                        delta_threshold=delta_threshold)
                with telemetry.span("cache-put", "cache"):
                    stored = self._disk_store(key, trace)
                if stored:
                    with self._lock:
                        self.disk_writes += 1
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise
        if not from_disk:
            # Delta-tracing utilization: of the sparse layers this cache
            # actually computed (disk loads carry no new work), how many
            # took the rule-patching path vs a full rebuild.  Old pickled
            # traces predate the flag, hence the getattr default.
            delta_count = sum(
                1 for layer in trace.layers
                if layer.rules is not None
                and getattr(layer, "via_delta", False)
            )
            full_count = sum(
                1 for layer in trace.layers if layer.rules is not None
            ) - delta_count
        telemetry.metrics().count(
            "repro_cache_gets_total",
            result="disk_hit" if from_disk else "miss")
        with self._lock:
            if from_disk:
                self.disk_hits += 1
            else:
                self.misses += 1
                self.delta_layers += delta_count
                self.full_layers += full_count
            self._entries[key] = trace
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    oldest = next(iter(self._entries))
                    del self._entries[oldest]
            self._inflight.pop(key).set()
        return trace

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and optionally the persisted files)."""
        with self._lock:
            self._entries.clear()
            self._labels.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.disk_writes = 0
            self.delta_layers = 0
            self.full_layers = 0
            self.quarantined = 0
        if disk and self.disk_dir is not None:
            for pattern in (f"*{TRACE_ARTIFACT_SUFFIX}",
                            f"*{QUARANTINE_SUFFIX}"):
                for path in self.disk_dir.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def stats(self) -> dict:
        """Hit/miss/disk counters, delta-tracing layer counts, entry
        count per (scenario, model) label, and the disk-tier path."""
        with self._lock:
            by_label = {}
            for key in self._entries:
                tag = self._labels.get(key)
                if tag is not None:
                    by_label[tag] = by_label.get(tag, 0) + 1
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "disk_writes": self.disk_writes,
                "delta_layers": self.delta_layers,
                "full_layers": self.full_layers,
                "quarantined": self.quarantined,
                "disk_dir": str(self.disk_dir) if self.disk_dir else None,
                "by_label": by_label,
            }


def scan_disk_tier(directory, detail: bool = False) -> dict:
    """Size up one disk-tier directory without loading everything.

    Returns ``{"dir", "entries", "bytes"}`` for the trace artifacts
    under ``directory`` — what ``repro cache stats`` shows operators
    inspecting the shared store a distributed run depends on.  A
    missing directory counts as empty (the tier is created lazily).

    With ``detail=True`` the summary also carries ``"models"``: per
    model-graph group (the spec-fingerprint half of the content key) the
    cached frame count and byte total, with the model name resolved by
    loading *one* representative artifact per group — the frame count of
    a group is exactly the number of distinct traced frames, which is
    how delta-chain cache behavior (one entry per chain frame, keys
    unchanged) is inspected.
    """
    path = Path(directory)
    entries = 0
    total = 0
    quarantined = 0
    groups = {}
    if path.is_dir():
        quarantined = sum(1 for _ in path.glob(f"*{QUARANTINE_SUFFIX}"))
        for artifact in path.glob(f"*{TRACE_ARTIFACT_SUFFIX}"):
            try:
                size = artifact.stat().st_size
            except OSError:
                continue
            entries += 1
            total += size
            if detail:
                prefix = artifact.name.split(":", 1)[0]
                group = groups.setdefault(
                    prefix, {"entries": 0, "bytes": 0, "sample": artifact}
                )
                group["entries"] += 1
                group["bytes"] += size
    summary = {"dir": str(path), "entries": entries, "bytes": total,
               "quarantined": quarantined}
    if detail:
        models = []
        for prefix, group in sorted(groups.items()):
            name = "(unreadable)"
            try:
                with open(group["sample"], "rb") as handle:
                    trace = pickle.load(handle)
                if isinstance(trace, ModelTrace):
                    name = trace.spec.name
            except Exception:
                pass
            models.append({
                "model": name,
                "fingerprint": prefix[:12],
                "entries": group["entries"],
                "bytes": group["bytes"],
            })
        summary["models"] = models
    return summary


def clear_disk_tier(directory) -> dict:
    """Delete every trace artifact under ``directory``.

    Returns the :func:`scan_disk_tier` summary of what was removed.
    Delegates the actual deletion to :meth:`TraceCache.clear` so the
    artifact naming and removal logic live in one place; the directory
    may hold other data, which is never touched.
    """
    summary = scan_disk_tier(directory)
    TraceCache(disk_dir=directory).clear(disk=True)
    return summary


#: The shared cache is bounded: each ModelTrace retains per-layer rule
#: arrays (tens of MB on the fine nuScenes grids), so an open-ended
#: multi-frame sweep through the default cache must not grow forever.
#: Sweeps that want full retention pass their own ``TraceCache()``.
_SHARED = TraceCache(maxsize=32)


def shared_trace_cache() -> TraceCache:
    """The process-wide default cache (used when a runner gets none)."""
    return _SHARED
