"""Content-keyed trace cache: rulegen runs once per (model, frame).

Rule generation is the hot path of every experiment in this repo: tracing
a model geometrically (:func:`repro.analysis.sparsity.trace_model`) runs
:func:`repro.sparse.rulegen.build_rules` for every sparse layer, and the
historical benchmarks re-did that work per benchmark file, per repeat,
and per simulator.  :class:`TraceCache` memoizes the finished
:class:`~repro.analysis.sparsity.ModelTrace` under a content key — a
digest of the model's layer graph and the frame's exact active set — so
any number of simulators, sweeps and repeats share one trace.

The cache is thread-safe and duplicate-suppressing: when parallel workers
request the same key simultaneously, exactly one computes and the rest
wait for its result.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

from ..analysis.sparsity import ModelTrace, trace_model
from ..models.specs import ModelSpec


def spec_fingerprint(spec: ModelSpec) -> str:
    """Deterministic digest of a model's layer graph.

    Two specs with the same layers produce the same fingerprint even if
    they are distinct objects; any change to channels, kernel, stride,
    conv type, pruning or ordering changes it.
    """
    parts = [spec.name, spec.base, spec.grid.name, str(spec.grid.shape)]
    for layer in spec.layers:
        parts.append(
            "|".join(
                str(value)
                for value in (
                    layer.name,
                    layer.op.value,
                    layer.conv_type.value if layer.conv_type else "-",
                    layer.in_channels,
                    layer.out_channels,
                    layer.kernel_size,
                    layer.stride,
                    layer.upsample,
                    layer.prune_keep,
                    layer.stage,
                )
            )
        )
    return hashlib.sha1("\n".join(parts).encode()).hexdigest()


def frame_fingerprint(coords: np.ndarray, importance: np.ndarray = None,
                      grid_shape: tuple = None) -> str:
    """Digest of one frame's exact active set (+ importance values)."""
    digest = hashlib.sha1()
    coords = np.ascontiguousarray(np.asarray(coords, dtype=np.int32))
    digest.update(coords.tobytes())
    digest.update(str(coords.shape).encode())
    if importance is not None:
        importance = np.ascontiguousarray(
            np.asarray(importance, dtype=np.float64)
        )
        digest.update(importance.tobytes())
    if grid_shape is not None:
        digest.update(str(tuple(grid_shape)).encode())
    return digest.hexdigest()


class TraceCache:
    """Thread-safe, content-keyed memoization of :func:`trace_model`.

    Args:
        maxsize: Optional entry cap; the oldest entry is evicted first
            (insertion order — traces are immutable once built, so plain
            FIFO keeps the implementation obvious).
    """

    def __init__(self, maxsize: int = None):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries = {}
        self._inflight = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key_for(self, spec: ModelSpec, coords: np.ndarray,
                importance: np.ndarray = None,
                grid_shape: tuple = None) -> str:
        return (
            spec_fingerprint(spec)
            + ":"
            + frame_fingerprint(coords, importance, grid_shape)
        )

    def get_trace(self, spec: ModelSpec, coords: np.ndarray,
                  importance: np.ndarray = None,
                  grid_shape: tuple = None) -> ModelTrace:
        """The traced model for this exact (spec, frame), computing once.

        Concurrent callers with the same key block on the first caller's
        computation instead of duplicating it.
        """
        key = self.key_for(spec, coords, importance, grid_shape)
        while True:
            with self._lock:
                if key in self._entries:
                    self.hits += 1
                    return self._entries[key]
                event = self._inflight.get(key)
                if event is None:
                    # We are the computing thread.
                    self._inflight[key] = threading.Event()
                    break
            # Another thread is computing this key; wait and re-check.
            event.wait()
        try:
            trace = trace_model(spec, coords, importance,
                                grid_shape=grid_shape)
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise
        with self._lock:
            self.misses += 1
            self._entries[key] = trace
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    oldest = next(iter(self._entries))
                    del self._entries[oldest]
            self._inflight.pop(key).set()
        return trace

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


#: The shared cache is bounded: each ModelTrace retains per-layer rule
#: arrays (tens of MB on the fine nuScenes grids), so an open-ended
#: multi-frame sweep through the default cache must not grow forever.
#: Sweeps that want full retention pass their own ``TraceCache()``.
_SHARED = TraceCache(maxsize=32)


def shared_trace_cache() -> TraceCache:
    """The process-wide default cache (used when a runner gets none)."""
    return _SHARED
