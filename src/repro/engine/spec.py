"""Declarative experiment specs: an experiment as serializable data.

:class:`ExperimentSpec` is the data form of an
:class:`~repro.engine.runner.ExperimentRunner` invocation — which
simulators, which models, which scenarios, which backend and knobs —
with a JSON round trip (:meth:`to_dict` / :meth:`from_dict`,
:meth:`to_json` / :meth:`from_json`, :meth:`load` / :meth:`save`), full
validation with actionable errors, and a :meth:`build_runner` /
:meth:`run` pair that resolves every name through the
:mod:`~repro.engine.registry` and every knob through
:class:`~repro.engine.settings.EngineSettings`.

Because a spec is plain data it can be validated before any work starts,
diffed between experiments, committed next to results, launched from a
shell (``repro run spec.json``), and — the reason this layer exists —
shipped to a remote worker: a spec plus a scenario subset is exactly the
work unit the planned distributed backend needs.

A minimal spec file::

    {
      "name": "smoke",
      "simulators": ["spade-he", "dense-he"],
      "models": ["SPP3"],
      "scenarios": [{"name": "smoke", "seed": 0}],
      "backend": "serial"
    }

Programmatic construction accepts richer objects than JSON does —
:class:`~repro.engine.simulators.Simulator` instances in ``simulators``
and :class:`~repro.models.specs.ModelSpec` instances in ``models`` — so
benchmarks build their grids through the same class; :meth:`to_dict`
refuses (with an actionable error) to serialize what JSON cannot carry.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..models.specs import ModelSpec
from ..models.zoo import TABLE1_PAPER
from .cache import TraceCache
from .registry import BACKENDS, FRAME_PROVIDERS
from .runner import ExperimentRunner, Scenario
from .settings import (
    EngineSettings,
    UNSET,
    boolean_flag,
    fraction,
    positive_int,
    resolve_faults,
)
from .simulators import Simulator, build_simulator

#: Schema version stamped into serialized specs; bumped on breaking
#: layout changes so old files fail loudly instead of misparsing.
SPEC_VERSION = 1

#: Default frame-provider registry name (the synthetic-scene provider).
DEFAULT_FRAME_PROVIDER = "synthetic"

_SCENARIO_KEYS = ("name", "seed", "frames")
_CELL_KEYS = ("scenario", "model", "simulator")


def _spec_error(name, message: str) -> ValueError:
    return ValueError(f"experiment spec {name!r}: {message}")


def _as_scenario(entry, index: int, spec_name: str) -> Scenario:
    """One scenario from a :class:`Scenario` or a spec-file dict.

    Dict entries go through the :class:`Scenario` constructor, so the
    shared ``validate_scenario`` raises the *same* message a keyword
    construction would — one validator, no drift.
    """
    if isinstance(entry, Scenario):
        return entry
    if isinstance(entry, dict):
        unknown = sorted(set(entry) - set(_SCENARIO_KEYS))
        if unknown:
            raise _spec_error(
                spec_name,
                f"scenario #{index} has unknown key(s) {unknown}; "
                f"allowed: {list(_SCENARIO_KEYS)}",
            )
        return Scenario(**entry)
    raise _spec_error(
        spec_name,
        f"scenario #{index} must be a Scenario or a dict with keys "
        f"{list(_SCENARIO_KEYS)}, got {type(entry).__name__}",
    )


def cell_filter_from_rules(rules: list):
    """Compile declarative cell include-rules into a runner cell filter.

    Each rule is a dict with any of ``scenario`` / ``model`` /
    ``simulator`` as :mod:`fnmatch` patterns (a missing key matches
    everything); a cell survives when *any* rule matches all its
    labels.  An empty rule list means "keep every cell" and compiles to
    ``None`` (no filter).
    """
    if not rules:
        return None
    frozen = [dict(rule) for rule in rules]

    def matches(rule, scenario_name, model_name, simulator_name):
        """Whether one include-rule covers the named cell."""
        labels = {
            "scenario": scenario_name,
            "model": model_name,
            "simulator": simulator_name,
        }
        return all(
            fnmatch.fnmatchcase(labels[key], str(pattern))
            for key, pattern in rule.items()
        )

    def cell_filter(scenario, model_name, simulator):
        """The runner-facing predicate over resolved cells."""
        return any(
            matches(rule, scenario.name, model_name, simulator.name)
            for rule in frozen
        )

    return cell_filter


@dataclass
class ExperimentSpec:
    """One experiment, declared as data.

    Attributes:
        simulators: Spec strings resolved through the simulator registry
            (``"spade-he"``, ``"platform:A6000"``, any registered
            family); :class:`Simulator` instances are accepted for
            programmatic use but cannot be serialized.
        models: Table I model names (validated against the zoo when the
            default synthetic frame provider is used); :class:`ModelSpec`
            instances are accepted for programmatic use.
        scenarios: :class:`Scenario` objects, or dicts with ``name`` /
            ``seed`` / ``frames`` in spec files.
        name: Label for error messages, output files and the CLI.
        backend: Execution-backend registry name, or ``None`` to inherit
            ``REPRO_ENGINE_BACKEND`` (default thread).
        workers: Simulate-stage pool width, or ``None`` to inherit
            ``REPRO_ENGINE_WORKERS``.
        trace_workers: Trace-stage pool width, or ``None`` to inherit
            ``REPRO_ENGINE_TRACE_WORKERS``.
        rulegen_shards: Rulegen row bands, or ``None`` to inherit
            ``REPRO_ENGINE_RULEGEN_SHARDS``.
        cache_dir: Persistent trace-cache directory for this experiment,
            or ``None`` to inherit ``REPRO_TRACE_CACHE_DIR``.
        delta_trace: Trace sequential frames as delta chains (frame 0
            full, later frames patched from the previous frame's
            trace), or ``None`` to inherit
            ``REPRO_ENGINE_DELTA_TRACE``.
        delta_threshold: Fraction of changed inputs above which delta
            tracing falls back to a full rulegen, or ``None`` to
            inherit ``REPRO_ENGINE_DELTA_THRESHOLD``.
        faults: Deterministic fault-injection plan text (the chaos
            harness; grammar in ``docs/robustness.md``), or ``None``
            to inherit ``REPRO_ENGINE_FAULTS``.
        degrade: Allow graceful backend degradation (dist to process
            to serial) when the chosen backend cannot start, or
            ``None`` to inherit ``REPRO_ENGINE_DEGRADE`` (default
            off).
        frame_provider: Frame-provider registry name (default
            ``"synthetic"``).
        cells: Declarative cell include-rules (see
            :func:`cell_filter_from_rules`); empty keeps every cell.
        out: Default output sink for ``repro run`` — a ``.csv`` /
            ``.json`` path or ``"-"`` for stdout; ``None`` prints a
            formatted table.
    """

    simulators: list
    models: list
    scenarios: list = None
    name: str = "experiment"
    backend: str = None
    workers: int = None
    trace_workers: int = None
    rulegen_shards: int = None
    cache_dir: str = None
    delta_trace: bool = None
    delta_threshold: float = None
    faults: str = None
    degrade: bool = None
    frame_provider: str = DEFAULT_FRAME_PROVIDER
    cells: list = field(default_factory=list)
    out: str = None

    def __post_init__(self):
        self.validate()

    # -- validation --------------------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Check every field, raising actionable :class:`ValueError`\\ s.

        Name lookups go through the live registries, so validation
        reflects whatever third-party simulators / backends / providers
        are registered at the time — a spec naming a plugin validates
        once the plugin has imported.
        """
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(
                f"experiment spec name must be a non-empty string, "
                f"got {self.name!r}"
            )
        self._validate_simulators()
        self._validate_models()
        self.scenarios = self._validate_scenarios()
        self._validate_knobs()
        self._validate_cells()
        if self.out is not None and not isinstance(self.out, str):
            raise _spec_error(
                self.name,
                f"out must be a path string, '-' or null, got {self.out!r}",
            )
        return self

    def _validate_simulators(self):
        if not isinstance(self.simulators, (list, tuple)) \
                or not self.simulators:
            raise _spec_error(
                self.name,
                "simulators must be a non-empty list of spec strings "
                "(e.g. [\"spade-he\", \"platform:A6000\"])",
            )
        built = []
        for item in self.simulators:
            # Instantiating is the validation: the registry raises a
            # ValueError listing the registered families for unknown or
            # malformed spec strings.  The instances are kept so
            # build_runner does not construct everything a second time.
            built.append(item if isinstance(item, Simulator)
                         else build_simulator(item))
        self._validated_source = list(self.simulators)
        self._validated_simulators = built

    def _validate_models(self):
        if not isinstance(self.models, (list, tuple)) or not self.models:
            raise _spec_error(
                self.name,
                f"models must be a non-empty list of Table I names "
                f"{sorted(TABLE1_PAPER)} or ModelSpec instances",
            )
        synthetic = self.frame_provider == DEFAULT_FRAME_PROVIDER
        for model in self.models:
            if isinstance(model, ModelSpec):
                continue
            if not isinstance(model, str):
                raise _spec_error(
                    self.name,
                    f"model entries must be Table I names or ModelSpec "
                    f"instances, got {type(model).__name__}",
                )
            # Custom frame providers may feed models the zoo does not
            # know; only the default synthetic provider pins the names.
            if synthetic and model not in TABLE1_PAPER:
                raise _spec_error(
                    self.name,
                    f"unknown model {model!r}; Table I names: "
                    f"{sorted(TABLE1_PAPER)}",
                )

    def _validate_scenarios(self) -> list:
        if self.scenarios is None:
            return [Scenario()]
        if not isinstance(self.scenarios, (list, tuple)) \
                or not self.scenarios:
            raise _spec_error(
                self.name,
                "scenarios must be null (one default scenario) or a "
                "non-empty list of {name, seed, frames} entries",
            )
        return [
            _as_scenario(entry, index, self.name)
            for index, entry in enumerate(self.scenarios)
        ]

    def _validate_knobs(self):
        if self.backend is not None and self.backend not in BACKENDS:
            raise _spec_error(
                self.name,
                f"unknown backend {self.backend!r}; "
                f"registered: {BACKENDS.names()}",
            )
        if self.frame_provider not in FRAME_PROVIDERS:
            raise _spec_error(
                self.name,
                f"unknown frame provider {self.frame_provider!r}; "
                f"registered: {FRAME_PROVIDERS.names()}",
            )
        for knob in ("workers", "trace_workers", "rulegen_shards"):
            value = getattr(self, knob)
            if value is not None:
                positive_int(value, knob)
        if self.delta_trace is not None:
            self.delta_trace = boolean_flag(self.delta_trace,
                                            "delta_trace")
        if self.delta_threshold is not None:
            self.delta_threshold = fraction(self.delta_threshold,
                                            "delta_threshold")
        if self.faults is not None:
            try:
                self.faults = resolve_faults(self.faults, "faults")
            except ValueError as error:
                raise _spec_error(self.name, str(error)) from None
        if self.degrade is not None:
            self.degrade = boolean_flag(self.degrade, "degrade")
        if self.cache_dir is not None \
                and not isinstance(self.cache_dir, (str, Path)):
            raise _spec_error(
                self.name,
                f"cache_dir must be a directory path or null, "
                f"got {self.cache_dir!r}",
            )

    def _validate_cells(self):
        if not isinstance(self.cells, (list, tuple)):
            raise _spec_error(
                self.name,
                "cells must be a list of include-rules "
                "({scenario/model/simulator: fnmatch pattern})",
            )
        for index, rule in enumerate(self.cells):
            if not isinstance(rule, dict):
                raise _spec_error(
                    self.name,
                    f"cells[{index}] must be a dict, "
                    f"got {type(rule).__name__}",
                )
            unknown = sorted(set(rule) - set(_CELL_KEYS))
            if unknown:
                raise _spec_error(
                    self.name,
                    f"cells[{index}] has unknown key(s) {unknown}; "
                    f"allowed: {list(_CELL_KEYS)}",
                )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """The spec as a JSON-ready dict (round-trips via
        :meth:`from_dict`).

        Raises:
            ValueError: when the spec carries objects JSON cannot —
                simulator or model *instances* — naming the offending
                entry.
        """
        simulators = []
        for item in self.simulators:
            if isinstance(item, Simulator):
                raise _spec_error(
                    self.name,
                    f"cannot serialize simulator instance {item.name!r}; "
                    f"declarative specs carry registry spec strings — "
                    f"register a factory (@register_simulator) and name "
                    f"it instead",
                )
            simulators.append(str(item))
        models = []
        for model in self.models:
            if isinstance(model, ModelSpec):
                raise _spec_error(
                    self.name,
                    f"cannot serialize ModelSpec instance {model.name!r}; "
                    f"declarative specs carry Table I model names",
                )
            models.append(str(model))
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "simulators": simulators,
            "models": models,
            "scenarios": [
                {"name": s.name, "seed": s.seed, "frames": s.frames}
                for s in self.scenarios
            ],
            "backend": self.backend,
            "workers": self.workers,
            "trace_workers": self.trace_workers,
            "rulegen_shards": self.rulegen_shards,
            "cache_dir": (str(self.cache_dir)
                          if self.cache_dir is not None else None),
            "delta_trace": self.delta_trace,
            "delta_threshold": self.delta_threshold,
            "faults": self.faults,
            "degrade": self.degrade,
            "frame_provider": self.frame_provider,
            "cells": [dict(rule) for rule in self.cells],
            "out": self.out,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Build (and fully validate) a spec from a plain dict."""
        if not isinstance(data, dict):
            raise ValueError(
                f"experiment spec must be a JSON object, "
                f"got {type(data).__name__}"
            )
        data = dict(data)
        version = data.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"experiment spec version {version!r} is not supported "
                f"(this engine reads version {SPEC_VERSION})"
            )
        allowed = {
            "name", "simulators", "models", "scenarios", "backend",
            "workers", "trace_workers", "rulegen_shards", "cache_dir",
            "delta_trace", "delta_threshold", "faults", "degrade",
            "frame_provider", "cells", "out",
        }
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ValueError(
                f"experiment spec has unknown key(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        for required in ("simulators", "models"):
            if required not in data:
                raise ValueError(
                    f"experiment spec is missing required key "
                    f"{required!r} (allowed keys: {sorted(allowed)})"
                )
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        """Serialize to the JSON document ``from_json`` reads back."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a JSON document into a validated spec."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"experiment spec is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)

    def save(self, path) -> Path:
        """Write the spec JSON to ``path``; returns the path."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path) -> "ExperimentSpec":
        """Read and validate a spec file, naming the file in errors."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as error:
            raise ValueError(
                f"cannot read experiment spec {str(path)!r}: {error}"
            ) from None
        try:
            return cls.from_json(text)
        except ValueError as error:
            raise ValueError(f"{path}: {error}") from None

    # -- execution ---------------------------------------------------------

    def settings(self, **overrides) -> EngineSettings:
        """This spec's knobs resolved through the one settings resolver
        (spec value > environment > default; ``overrides`` win over
        both)."""
        return EngineSettings.resolve(
            backend=overrides.get("backend", self.backend),
            workers=overrides.get("workers", self.workers),
            trace_workers=overrides.get("trace_workers",
                                        self.trace_workers),
            rulegen_shards=overrides.get("rulegen_shards",
                                         self.rulegen_shards),
            cache_dir=(overrides["cache_dir"] if "cache_dir" in overrides
                       else (self.cache_dir if self.cache_dir is not None
                             else UNSET)),
            delta_trace=overrides.get("delta_trace", self.delta_trace),
            delta_threshold=overrides.get("delta_threshold",
                                          self.delta_threshold),
            faults=overrides.get("faults", self.faults),
            degrade=overrides.get("degrade", self.degrade),
        )

    def build_runner(self, *, cache=None, trace_provider=None,
                     frame_provider=None, cell_filter=None,
                     **overrides) -> ExperimentRunner:
        """Materialize the spec into an :class:`ExperimentRunner`.

        Keyword-only arguments carry the *runtime* objects a declarative
        file cannot: a shared :class:`TraceCache`, a ``trace_provider``
        closure (the benchmark suite's session traces), a ready
        frame-provider instance, or a Python ``cell_filter`` overriding
        the spec's declarative ``cells`` rules.  ``overrides`` may also
        rebind any engine knob (``backend=``, ``workers=``, ...) —
        that is how CLI flags beat spec values.
        """
        unknown = sorted(
            set(overrides)
            - {"backend", "workers", "trace_workers", "rulegen_shards",
               "cache_dir", "delta_trace", "delta_threshold", "faults",
               "degrade"}
        )
        if unknown:
            raise _spec_error(
                self.name,
                f"unknown build_runner override(s) {unknown}",
            )
        backend = overrides.get("backend", self.backend)
        explicit_provider = frame_provider is not None
        explicit_cache_dir = "cache_dir" in overrides
        cache_dir = (overrides["cache_dir"] if explicit_cache_dir
                     else self.cache_dir)
        if cache is None:
            if cache_dir is not None:
                cache = TraceCache(disk_dir=cache_dir)
            elif explicit_cache_dir:
                # An explicit None override means "memory-only", even
                # when REPRO_TRACE_CACHE_DIR is set — matching
                # spec.settings() and TraceCache(disk_dir=None).
                cache = TraceCache(disk_dir=None)
        if frame_provider is None and trace_provider is None \
                and self.frame_provider != DEFAULT_FRAME_PROVIDER:
            frame_provider = FRAME_PROVIDERS.create(self.frame_provider)
        if cell_filter is None:
            cell_filter = cell_filter_from_rules(self.cells)
        # Validate knob overrides under their spec-file names, so a CLI
        # `--workers 0` errors as "workers", never the runner-internal
        # "max_workers" kwarg the user never typed.
        knobs = {}
        for knob in ("workers", "trace_workers", "rulegen_shards"):
            value = overrides.get(knob, getattr(self, knob))
            if value is not None:
                value = positive_int(value, knob)
            knobs[knob] = value
        for knob, check in (("delta_trace", boolean_flag),
                            ("delta_threshold", fraction),
                            ("degrade", boolean_flag),
                            ("faults", resolve_faults)):
            value = overrides.get(knob, getattr(self, knob))
            if value is not None:
                value = check(value, knob)
            knobs[knob] = value
        # Reuse the instances validation already built (unless the list
        # was mutated since); resolve_simulators accepts instances.
        if self.simulators == getattr(self, "_validated_source", None):
            simulators = list(self._validated_simulators)
        else:
            simulators = list(self.simulators)
        runner = ExperimentRunner(
            simulators=simulators,
            models=list(self.models),
            scenarios=list(self.scenarios),
            cache=cache,
            trace_provider=trace_provider,
            frame_provider=frame_provider,
            cell_filter=cell_filter,
            backend=backend,
            max_workers=knobs["workers"],
            trace_workers=knobs["trace_workers"],
            rulegen_shards=knobs["rulegen_shards"],
            delta_trace=knobs["delta_trace"],
            delta_threshold=knobs["delta_threshold"],
            faults=knobs["faults"],
            degrade=knobs["degrade"],
        )
        # The distributed backend re-serializes its work units from the
        # source spec; keep the provenance on the runner (and whether
        # the frame provider was a caller-supplied instance, which a
        # remote worker could not reproduce from the registry name).
        runner.source_spec = self
        runner.frame_provider_explicit = explicit_provider
        return runner

    def run(self, **kwargs):
        """Build the runner and execute the grid in one step."""
        return self.build_runner(**kwargs).run()
