"""Unified simulation engine: one seam for every simulator in the repo.

* :mod:`repro.engine.result`     — the common :class:`SimResult` schema
  and the tidy :class:`ExperimentTable` (CSV/JSON round trip);
* :mod:`repro.engine.simulators` — adapters wrapping SPADE, DenseAcc,
  PointAcc, SpConv2D-Acc and the platform models behind one
  :class:`Simulator` interface;
* :mod:`repro.engine.micro`      — substrate micro-simulators (mapping
  hardware, gather dataflows) behind the same interface;
* :mod:`repro.engine.cache`      — the content-keyed :class:`TraceCache`
  (rulegen once per (model, frame), shared across simulators and runs);
* :mod:`repro.engine.backends`   — pluggable execution backends
  (serial / thread / process) with chunked IPC and per-worker caches;
* :mod:`repro.engine.runner`     — the multi-scenario, multi-backend
  :class:`ExperimentRunner` with frame batching;
* :mod:`repro.engine.registry`   — named-factory registries
  (``@register_simulator`` / ``@register_frame_provider`` /
  ``@register_backend``): the plugin seam third-party code extends;
* :mod:`repro.engine.settings`   — :class:`EngineSettings`, the single
  resolver for every ``REPRO_ENGINE_*`` / ``REPRO_TRACE_CACHE_DIR``
  environment knob;
* :mod:`repro.engine.spec`       — :class:`ExperimentSpec`, the
  declarative (JSON-serializable) form of an experiment, which the
  ``repro`` CLI front-end (:mod:`repro.cli`) runs from the shell;
* :mod:`repro.engine.manifest`   — :class:`RunManifest` +
  :class:`RunObserver`: the per-run provenance artifact (spec hash, git
  rev, settings, per-unit/phase timings, cache stats, streaming
  analytics) written alongside every ``repro run --out`` sink;
* :mod:`repro.engine.dist`       — the distributed coordinator/worker
  backend (``"dist"``): spec-dict work units over length-prefixed JSON
  TCP, trace-artifact shipping through the cache disk tier, heartbeats
  and requeue-based fault tolerance (``repro worker`` serves it);
* :mod:`repro.engine.service`    — the persistent experiment service
  (``repro serve``): a durable priority run queue and a worker fleet
  reused across runs, with ``repro submit/status/results/cancel/queue``
  as its clients;
* :mod:`repro.engine.journal`    — :class:`RunJournal`, the per-run
  write-ahead log behind ``repro run --resume`` (checkpoint every
  completed work group, recover torn tails, stitch byte-identical
  output);
* :mod:`repro.engine.faults`     — the deterministic fault-injection
  harness (:class:`FaultPlan` from ``REPRO_ENGINE_FAULTS``) the chaos
  tests drive worker kills, dropped connections, stalled heartbeats
  and corrupted cache entries through;
* :mod:`repro.engine.telemetry`  — the live observability layer:
  :class:`SpanTracer` (Chrome trace-event export, fleet-merged
  timelines), :class:`MetricsRegistry` (Prometheus exposition behind
  ``repro serve --metrics-port``), and the one lock-guarded stderr
  writer.
"""

from .backends import (
    Backend,
    BackendUnavailable,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkGroup,
    resolve_backend,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
)
from .journal import (
    JOURNAL_SCHEMA,
    JOURNAL_VERSION,
    RunJournal,
    read_journal,
    unit_key,
)
from .cache import (
    TraceCache,
    clear_disk_tier,
    frame_fingerprint,
    scan_disk_tier,
    shared_trace_cache,
    spec_fingerprint,
)
from .manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    RunManifest,
    RunObserver,
    git_revision,
    manifest_path_for,
    spec_hash,
)
from .micro import GatherDramSim, MappingSim
from .registry import (
    BACKENDS,
    FRAME_PROVIDERS,
    SIMULATORS,
    Registry,
    UnknownNameError,
    register_backend,
    register_frame_provider,
    register_simulator,
)
from .result import (
    RESULT_COLUMNS,
    ExperimentTable,
    SimResult,
    mean_result,
)
from .runner import (
    DEFAULT_SCENARIO,
    ExperimentRunner,
    FrameProvider,
    Scenario,
    validate_scenario,
)
from .telemetry import (
    MetricsRegistry,
    SpanTracer,
    log_line,
    metrics,
    serve_metrics,
    tracing,
)
from .settings import (
    BACKEND_ENV_VAR,
    CACHE_DIR_ENV_VAR,
    DEGRADE_ENV_VAR,
    DELTA_THRESHOLD_ENV_VAR,
    DELTA_TRACE_ENV_VAR,
    ENGINE_ENV_VARS,
    FAULTS_ENV_VAR,
    RULEGEN_SHARDS_ENV_VAR,
    TRACE_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    EngineSettings,
    TelemetrySettings,
)
from .simulators import (
    DenseAccSimulator,
    PlatformSim,
    PointAccSim,
    Simulator,
    SpadeNoOverlapSim,
    SpadeSimulator,
    SpConv2DSim,
    TraceStatsSim,
    build_simulator,
    resolve_simulators,
)
from .spec import (
    SPEC_VERSION,
    ExperimentSpec,
    cell_filter_from_rules,
)

# Imported last: the dist subsystem builds on the spec layer and
# registers the "dist" backend as an import side effect; the service
# builds on dist in turn.
from .dist import (  # noqa: E402
    Coordinator,
    DistBackend,
    DistRunError,
    DistStartTimeout,
    Worker,
)
from .service import (  # noqa: E402
    ExperimentService,
    RunScheduler,
    RunStore,
    ServiceClient,
    ServiceError,
)

__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "CACHE_DIR_ENV_VAR",
    "DEFAULT_SCENARIO",
    "DEGRADE_ENV_VAR",
    "DELTA_THRESHOLD_ENV_VAR",
    "DELTA_TRACE_ENV_VAR",
    "ENGINE_ENV_VARS",
    "FAULTS_ENV_VAR",
    "FRAME_PROVIDERS",
    "JOURNAL_SCHEMA",
    "JOURNAL_VERSION",
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "RESULT_COLUMNS",
    "RULEGEN_SHARDS_ENV_VAR",
    "SIMULATORS",
    "SPEC_VERSION",
    "TRACE_WORKERS_ENV_VAR",
    "WORKERS_ENV_VAR",
    "Backend",
    "BackendUnavailable",
    "Coordinator",
    "DenseAccSimulator",
    "DistBackend",
    "DistRunError",
    "DistStartTimeout",
    "EngineSettings",
    "ExperimentRunner",
    "ExperimentService",
    "ExperimentSpec",
    "ExperimentTable",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FrameProvider",
    "GatherDramSim",
    "InjectedFault",
    "MappingSim",
    "MetricsRegistry",
    "PlatformSim",
    "PointAccSim",
    "ProcessBackend",
    "Registry",
    "RunJournal",
    "RunManifest",
    "RunObserver",
    "RunScheduler",
    "RunStore",
    "Scenario",
    "SerialBackend",
    "ServiceClient",
    "ServiceError",
    "SimResult",
    "Simulator",
    "SpanTracer",
    "SpConv2DSim",
    "SpadeNoOverlapSim",
    "SpadeSimulator",
    "TelemetrySettings",
    "ThreadBackend",
    "TraceCache",
    "TraceStatsSim",
    "UnknownNameError",
    "WorkGroup",
    "Worker",
    "build_simulator",
    "cell_filter_from_rules",
    "clear_disk_tier",
    "frame_fingerprint",
    "git_revision",
    "log_line",
    "manifest_path_for",
    "scan_disk_tier",
    "mean_result",
    "metrics",
    "read_journal",
    "spec_hash",
    "register_backend",
    "register_frame_provider",
    "register_simulator",
    "resolve_backend",
    "resolve_simulators",
    "serve_metrics",
    "shared_trace_cache",
    "spec_fingerprint",
    "tracing",
    "unit_key",
    "validate_scenario",
]
