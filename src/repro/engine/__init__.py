"""Unified simulation engine: one seam for every simulator in the repo.

* :mod:`repro.engine.result`     — the common :class:`SimResult` schema
  and the tidy :class:`ExperimentTable`;
* :mod:`repro.engine.simulators` — adapters wrapping SPADE, DenseAcc,
  PointAcc, SpConv2D-Acc and the platform models behind one
  :class:`Simulator` interface;
* :mod:`repro.engine.cache`      — the content-keyed :class:`TraceCache`
  (rulegen once per (model, frame), shared across simulators and runs);
* :mod:`repro.engine.runner`     — the parallel multi-scenario
  :class:`ExperimentRunner`.
"""

from .cache import (
    TraceCache,
    frame_fingerprint,
    shared_trace_cache,
    spec_fingerprint,
)
from .result import RESULT_COLUMNS, ExperimentTable, SimResult
from .runner import (
    DEFAULT_SCENARIO,
    ExperimentRunner,
    FrameProvider,
    Scenario,
)
from .simulators import (
    DenseAccSimulator,
    PlatformSim,
    PointAccSim,
    Simulator,
    SpConv2DSim,
    SpadeSimulator,
    build_simulator,
    resolve_simulators,
)

__all__ = [
    "DEFAULT_SCENARIO",
    "RESULT_COLUMNS",
    "DenseAccSimulator",
    "ExperimentRunner",
    "ExperimentTable",
    "FrameProvider",
    "PlatformSim",
    "PointAccSim",
    "Scenario",
    "SimResult",
    "Simulator",
    "SpConv2DSim",
    "SpadeSimulator",
    "TraceCache",
    "build_simulator",
    "frame_fingerprint",
    "resolve_simulators",
    "shared_trace_cache",
    "spec_fingerprint",
]
