"""Unified simulation engine: one seam for every simulator in the repo.

* :mod:`repro.engine.result`     — the common :class:`SimResult` schema
  and the tidy :class:`ExperimentTable`;
* :mod:`repro.engine.simulators` — adapters wrapping SPADE, DenseAcc,
  PointAcc, SpConv2D-Acc and the platform models behind one
  :class:`Simulator` interface;
* :mod:`repro.engine.micro`      — substrate micro-simulators (mapping
  hardware, gather dataflows) behind the same interface;
* :mod:`repro.engine.cache`      — the content-keyed :class:`TraceCache`
  (rulegen once per (model, frame), shared across simulators and runs);
* :mod:`repro.engine.backends`   — pluggable execution backends
  (serial / thread / process) with chunked IPC and per-worker caches;
* :mod:`repro.engine.runner`     — the multi-scenario, multi-backend
  :class:`ExperimentRunner` with frame batching.
"""

from .backends import (
    BACKEND_ENV_VAR,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkGroup,
    resolve_backend,
)
from ..sparse.rulegen import RULEGEN_SHARDS_ENV_VAR
from .cache import (
    CACHE_DIR_ENV_VAR,
    TraceCache,
    frame_fingerprint,
    shared_trace_cache,
    spec_fingerprint,
)
from .micro import GatherDramSim, MappingSim
from .result import (
    RESULT_COLUMNS,
    ExperimentTable,
    SimResult,
    mean_result,
)
from .runner import (
    DEFAULT_SCENARIO,
    TRACE_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    ExperimentRunner,
    FrameProvider,
    Scenario,
)
from .simulators import (
    DenseAccSimulator,
    PlatformSim,
    PointAccSim,
    Simulator,
    SpadeNoOverlapSim,
    SpadeSimulator,
    SpConv2DSim,
    build_simulator,
    resolve_simulators,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "CACHE_DIR_ENV_VAR",
    "DEFAULT_SCENARIO",
    "RESULT_COLUMNS",
    "RULEGEN_SHARDS_ENV_VAR",
    "TRACE_WORKERS_ENV_VAR",
    "WORKERS_ENV_VAR",
    "Backend",
    "DenseAccSimulator",
    "ExperimentRunner",
    "ExperimentTable",
    "FrameProvider",
    "GatherDramSim",
    "MappingSim",
    "PlatformSim",
    "PointAccSim",
    "ProcessBackend",
    "Scenario",
    "SerialBackend",
    "SimResult",
    "Simulator",
    "SpConv2DSim",
    "SpadeNoOverlapSim",
    "SpadeSimulator",
    "ThreadBackend",
    "TraceCache",
    "WorkGroup",
    "build_simulator",
    "frame_fingerprint",
    "mean_result",
    "resolve_backend",
    "resolve_simulators",
    "shared_trace_cache",
    "spec_fingerprint",
]
