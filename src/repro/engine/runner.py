"""Parallel multi-scenario experiment runner.

:class:`ExperimentRunner` executes a grid of scenarios x models x
simulators and returns a tidy :class:`~repro.engine.result.ExperimentTable`.
Work is organized so the expensive part — geometric tracing with rule
generation — happens exactly once per (scenario, model) through a shared
:class:`~repro.engine.cache.TraceCache`, no matter how many simulators
consume the trace or how many times the grid re-runs.  Simulation then
fans out over ``concurrent.futures`` threads (the simulators are numpy-
bound and release the GIL in their hot loops).

Frames come from a :class:`FrameProvider` — by default the repo's
deterministic synthetic scenes, seeded per scenario — or from any
callable the caller supplies, so benchmarks can feed their session
fixtures straight in.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..analysis.sparsity import ModelTrace
from ..data.pillars import voxelize
from ..data.synthetic import KITTI_SCENE, SceneGenerator, nuscenes_scene_config
from ..models.specs import ModelSpec, build_model_spec
from ..models.zoo import TABLE1_PAPER, grid_for, scene_config_for
from .cache import TraceCache, shared_trace_cache
from .result import ExperimentTable, SimResult
from .simulators import resolve_simulators


@dataclass(frozen=True)
class Scenario:
    """One experiment condition: which frame(s) feed the models.

    Attributes:
        name: Row label in the result table.
        seed: Scene-generator seed; different seeds are different drives
            through the same synthetic world.
    """

    name: str = "default"
    seed: int = 0


DEFAULT_SCENARIO = Scenario()


class FrameProvider:
    """Builds and caches one pillar frame per (scenario, grid).

    Models sharing a grid within a scenario share the frame — matching
    how the benchmark suite has always fed one KITTI frame to all SPP
    variants and one nuScenes frame to all SCP variants.  Generation is
    serialized behind a lock so parallel trace workers cannot duplicate
    the (expensive) scene synthesis for a shared grid.
    """

    def __init__(self):
        self._frames = {}
        self._inflight = {}
        self._lock = threading.Lock()

    @staticmethod
    def _grid_and_config(model):
        """(grid, scene config) feeding one model.

        Any :class:`ModelSpec` is keyed by *its own* grid — never the
        zoo's name lookup, which would silently pick the wrong world for
        a custom spec (unknown names default to nuScenes, and a renamed
        spec may carry a different grid than its namesake).  For the
        built-in Table I specs the spec's grid and the zoo pairing are
        identical, so the behaviour matches the published setup.  A bare
        string must be a Table I name; anything else has no grid at all
        and is rejected rather than guessed.
        """
        if isinstance(model, ModelSpec):
            grid = model.grid
            if grid.name == "kitti":
                return grid, KITTI_SCENE
            return grid, nuscenes_scene_config(grid)
        if model not in TABLE1_PAPER:
            raise KeyError(
                f"unknown model name {model!r}: pass a ModelSpec (its grid "
                f"decides the frame) or one of {sorted(TABLE1_PAPER)}"
            )
        return grid_for(model), scene_config_for(model)

    def frame_for(self, scenario: Scenario, model):
        """The (cached) pillar frame for one model under one scenario.

        ``model`` is a Table I name or a :class:`ModelSpec`.  Concurrent
        callers for the same key wait on the first builder instead of
        duplicating the scene synthesis; builds for distinct keys run
        concurrently.
        """
        grid, scene_config = self._grid_and_config(model)
        key = (scenario.name, scenario.seed, grid.name)
        while True:
            with self._lock:
                if key in self._frames:
                    return self._frames[key]
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    break
            event.wait()
        try:
            generator = SceneGenerator(scene_config, seed=scenario.seed)
            frame = voxelize(generator.generate(), grid)
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise
        with self._lock:
            self._frames[key] = frame
            self._inflight.pop(key).set()
        return frame


class ExperimentRunner:
    """Run every (scenario, model, simulator) combination of a grid.

    Args:
        simulators: :class:`~repro.engine.simulators.Simulator` instances
            or spec strings accepted by
            :func:`~repro.engine.simulators.build_simulator`.
        models: Table I model names or :class:`ModelSpec` instances.
        scenarios: Experiment conditions; defaults to one seed-0 scenario.
        cache: Trace cache to share; defaults to the process-wide cache.
        trace_provider: Optional ``(scenario, model_name) -> ModelTrace``
            override that bypasses frame generation entirely (used by the
            benchmark suite to feed its session-scoped traces).
        frame_provider: Optional frame source; ignored when
            ``trace_provider`` is given.
        cell_filter: Optional ``(scenario, model_name, simulator) -> bool``
            predicate; cells returning ``False`` are skipped entirely
            (not traced, not simulated, absent from the table).  Use it
            when only some model/simulator pairings of a grid are
            meaningful — e.g. SPADE on sparse models but DenseAcc on
            their dense counterparts.
        max_workers: Thread-pool width for parallel runs.
    """

    def __init__(self, simulators, models, scenarios=None,
                 cache: TraceCache = None, trace_provider=None,
                 frame_provider: FrameProvider = None,
                 cell_filter=None, max_workers: int = None):
        self.simulators = resolve_simulators(simulators)
        self.models = list(models)
        self.scenarios = list(scenarios) if scenarios else [DEFAULT_SCENARIO]
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(
                f"scenario names must be unique (table rows are looked up "
                f"by name), got {names}"
            )
        model_names = [self._model_name(model) for model in self.models]
        if len(set(model_names)) != len(model_names):
            raise ValueError(
                f"model names must be unique (traces and table rows are "
                f"keyed by name), got {model_names}"
            )
        simulator_names = [simulator.name for simulator in self.simulators]
        if len(set(simulator_names)) != len(simulator_names):
            raise ValueError(
                f"simulator names must be unique (table rows are looked "
                f"up by name), got {simulator_names}"
            )
        self.cell_filter = cell_filter
        self.cache = cache if cache is not None else shared_trace_cache()
        self.trace_provider = trace_provider
        self.frame_provider = frame_provider or FrameProvider()
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._specs = {}

    def _spec_for(self, model) -> ModelSpec:
        if isinstance(model, ModelSpec):
            return model
        if model not in self._specs:
            self._specs[model] = build_model_spec(model)
        return self._specs[model]

    @staticmethod
    def _model_name(model) -> str:
        return model.name if isinstance(model, ModelSpec) else model

    def trace_for(self, scenario: Scenario, model) -> ModelTrace:
        """The (cached) trace feeding one grid cell."""
        if self.trace_provider is not None:
            return self.trace_provider(scenario, self._model_name(model))
        frame = self.frame_provider.frame_for(scenario, model)
        return self.cache.get_trace(
            self._spec_for(model),
            frame.coords,
            frame.point_counts.astype(float),
        )

    def run(self, parallel: bool = True) -> ExperimentTable:
        """Execute the full grid.

        Args:
            parallel: Fan out over a thread pool; ``False`` runs the same
                jobs serially (identical results, useful for debugging
                and for measuring the parallel speedup).

        Returns:
            An :class:`ExperimentTable` in deterministic
            scenarios x models x simulators order.
        """
        sim_jobs = [
            (scenario, model, simulator)
            for scenario in self.scenarios
            for model in self.models
            for simulator in self.simulators
            if self.cell_filter is None
            or self.cell_filter(scenario, self._model_name(model), simulator)
        ]

        # Trace only the (scenario, model) pairs some simulator consumes,
        # each exactly once.  Scenarios key by identity (frozen dataclass),
        # so distinct seeds never collide.
        trace_jobs = []
        for scenario, model, _ in sim_jobs:
            if (scenario, model) not in trace_jobs:
                trace_jobs.append((scenario, model))
        if parallel and self.max_workers > 1 and len(trace_jobs) > 1:
            with ThreadPoolExecutor(self.max_workers) as pool:
                traces = list(pool.map(
                    lambda job: self.trace_for(*job), trace_jobs
                ))
        else:
            traces = [self.trace_for(*job) for job in trace_jobs]
        trace_of = {
            (scenario, self._model_name(model)): trace
            for (scenario, model), trace in zip(trace_jobs, traces)
        }

        def execute(job) -> SimResult:
            scenario, model, simulator = job
            result = simulator.run(
                trace_of[(scenario, self._model_name(model))]
            )
            result.scenario = scenario.name
            return result

        if parallel and self.max_workers > 1 and len(sim_jobs) > 1:
            with ThreadPoolExecutor(self.max_workers) as pool:
                results = list(pool.map(execute, sim_jobs))
        else:
            results = [execute(job) for job in sim_jobs]
        return ExperimentTable(results=results)
