"""Parallel multi-scenario experiment runner.

:class:`ExperimentRunner` executes a grid of scenarios x models x
simulators and returns a tidy :class:`~repro.engine.result.ExperimentTable`.
Work is organized so the expensive part — geometric tracing with rule
generation — happens exactly once per (scenario, model, frame) through a
shared :class:`~repro.engine.cache.TraceCache`, no matter how many
simulators consume the trace or how many times the grid re-runs.
Execution then goes through a pluggable
:class:`~repro.engine.backends.Backend` — serial, thread pool (default)
or process pool — selected per runner, per call, or via the
``REPRO_ENGINE_BACKEND`` environment variable.

A :class:`Scenario` can carry one frame (the default) or a batch of
``frames`` seeded frames: the batch is traced in a single rulegen pass
per model and the result table gains per-frame rows plus a ``"mean"``
aggregate row per cell.

Frames come from a :class:`FrameProvider` — by default the repo's
deterministic synthetic scenes, seeded per (scenario, frame) — or from
any provider subclass the caller supplies, so benchmarks can feed their
session fixtures straight in.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..analysis.sparsity import ModelTrace
from ..data.pillars import voxelize
from ..data.synthetic import KITTI_SCENE, SceneGenerator, nuscenes_scene_config
from ..models.specs import ModelSpec, build_model_spec
from ..models.zoo import TABLE1_PAPER, grid_for, scene_config_for
from . import faults as _faults
from . import telemetry
from .backends import (
    BackendUnavailable,
    ProcessBackend,
    ProgressReporter,
    SerialBackend,
    ThreadBackend,
    WorkGroup,
    default_backend_name,
    resolve_backend,
)
from .cache import TraceCache, shared_trace_cache
from .journal import RunJournal, unit_key
from .registry import register_frame_provider
from .result import ExperimentTable
from .settings import (
    TRACE_WORKERS_ENV_VAR,
    WORKERS_ENV_VAR,
    resolve_degrade,
    resolve_delta_threshold,
    resolve_delta_trace,
    resolve_faults,
    resolve_rulegen_shards,
    resolve_trace_workers,
    resolve_workers,
)
from .simulators import resolve_simulators


def validate_scenario(name, seed, frames) -> None:
    """The one scenario validator, shared by every construction path.

    :class:`Scenario` calls it from ``__post_init__`` (kwarg-built
    scenarios) and :class:`~repro.engine.spec.ExperimentSpec` builds its
    scenarios through :class:`Scenario`, so a dict in a JSON spec file
    and a keyword argument produce the *same* error for the same
    mistake — no drift between the two paths.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"scenario name must be a non-empty string, got {name!r}"
        )
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValueError(
            f"scenario {name!r} needs an integer seed, got {seed!r}"
        )
    if not isinstance(frames, int) or isinstance(frames, bool) \
            or frames < 1:
        raise ValueError(
            f"scenario {name!r} needs frames >= 1, got {frames!r}"
        )


@dataclass(frozen=True)
class Scenario:
    """One experiment condition: which frame(s) feed the models.

    Attributes:
        name: Row label in the result table.
        seed: Scene-generator seed; different seeds are different drives
            through the same synthetic world.
        frames: Number of seeded frames in this scenario's batch.  Frame
            ``i`` uses seed ``seed + i``, so a batch of N frames is
            numerically identical to N single-frame scenarios at
            consecutive seeds.  Batched scenarios produce per-frame rows
            plus one ``"mean"`` aggregate row per grid cell.
    """

    name: str = "default"
    seed: int = 0
    frames: int = 1

    def __post_init__(self):
        validate_scenario(self.name, self.seed, self.frames)


DEFAULT_SCENARIO = Scenario()


class FrameProvider:
    """Builds and caches one pillar frame per (scenario, grid, frame).

    Models sharing a grid within a scenario share the frame — matching
    how the benchmark suite has always fed one KITTI frame to all SPP
    variants and one nuScenes frame to all SCP variants.  Generation is
    serialized behind a lock so parallel trace workers cannot duplicate
    the (expensive) scene synthesis for a shared grid.
    """

    def __init__(self):
        self._frames = {}
        self._inflight = {}
        self._lock = threading.Lock()

    @staticmethod
    def _grid_and_config(model):
        """(grid, scene config) feeding one model.

        Any :class:`ModelSpec` is keyed by *its own* grid — never the
        zoo's name lookup, which would silently pick the wrong world for
        a custom spec (unknown names default to nuScenes, and a renamed
        spec may carry a different grid than its namesake).  For the
        built-in Table I specs the spec's grid and the zoo pairing are
        identical, so the behaviour matches the published setup.  A bare
        string must be a Table I name; anything else has no grid at all
        and is rejected rather than guessed.
        """
        if isinstance(model, ModelSpec):
            grid = model.grid
            if grid.name == "kitti":
                return grid, KITTI_SCENE
            return grid, nuscenes_scene_config(grid)
        if model not in TABLE1_PAPER:
            raise KeyError(
                f"unknown model name {model!r}: pass a ModelSpec (its grid "
                f"decides the frame) or one of {sorted(TABLE1_PAPER)}"
            )
        return grid_for(model), scene_config_for(model)

    def frame_for(self, scenario: Scenario, model, frame: int = 0):
        """The (cached) pillar frame for one model under one scenario.

        ``model`` is a Table I name or a :class:`ModelSpec`; ``frame``
        indexes into a batched scenario (frame ``i`` is seeded
        ``scenario.seed + i``, so frame 0 reproduces the single-frame
        path exactly).  Concurrent callers for the same key wait on the
        first builder instead of duplicating the scene synthesis; builds
        for distinct keys run concurrently.
        """
        grid, scene_config = self._grid_and_config(model)
        seed = scenario.seed + frame
        key = (scenario.name, seed, grid.name)
        while True:
            with self._lock:
                if key in self._frames:
                    return self._frames[key]
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    break
            event.wait()
        try:
            generator = SceneGenerator(scene_config, seed=seed)
            built = voxelize(generator.generate(), grid)
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise
        with self._lock:
            self._frames[key] = built
            self._inflight.pop(key).set()
        return built


#: The default provider under its registry name: declarative spec files
#: select it with ``"frame_provider": "synthetic"`` (the default), and
#: third-party providers registered via ``@register_frame_provider``
#: slot in the same way.
register_frame_provider("synthetic", FrameProvider)


class ExperimentRunner:
    """Run every (scenario, model, simulator) combination of a grid.

    Args:
        simulators: :class:`~repro.engine.simulators.Simulator` instances
            or spec strings accepted by
            :func:`~repro.engine.simulators.build_simulator`.
        models: Table I model names or :class:`ModelSpec` instances.
        scenarios: Experiment conditions; defaults to one seed-0 scenario.
        cache: Trace cache to share; defaults to the process-wide cache.
        trace_provider: Optional ``(scenario, model_name) -> ModelTrace``
            override that bypasses frame generation entirely (used by the
            benchmark suite to feed its session-scoped traces).  It is
            single-frame: combine it with batched scenarios or the
            process backend and the runner raises.
        frame_provider: Optional frame source; ignored when
            ``trace_provider`` is given.
        cell_filter: Optional ``(scenario, model_name, simulator) -> bool``
            predicate; cells returning ``False`` are skipped entirely
            (not traced, not simulated, absent from the table).  Use it
            when only some model/simulator pairings of a grid are
            meaningful — e.g. SPADE on sparse models but DenseAcc on
            their dense counterparts.
        backend: Execution backend — a
            :class:`~repro.engine.backends.Backend` instance or one of
            ``"serial"`` / ``"thread"`` / ``"process"``.  Defaults to the
            ``REPRO_ENGINE_BACKEND`` environment variable, else
            ``"thread"``.
        max_workers: Pool width for parallel backends; the
            ``REPRO_ENGINE_WORKERS`` environment variable overrides the
            default when no explicit value is given.
        trace_workers: Pool width of the dedicated *trace stage* (the
            rulegen-heavy first phase every parallel backend runs before
            simulating); defaults to ``REPRO_ENGINE_TRACE_WORKERS``,
            else to ``max_workers``.
        rulegen_shards: Row-band count for within-trace parallel rule
            generation (:func:`~repro.sparse.rulegen.build_rules_sharded`);
            defaults to ``REPRO_ENGINE_RULEGEN_SHARDS``, else 1 (fused
            unsharded rulegen).  Sharded rules are bit-identical, so the
            table never changes — only trace speed.
        delta_trace: When True, batched scenarios trace as sequential
            delta chains: frame 0 builds rules in full and frames
            1..N-1 patch their predecessor's rules
            (:func:`~repro.sparse.rulegen.build_rules_delta`).  Delta
            rules are bit-identical and the cache keys never change, so
            the table, cache hits and shipped artifacts are unaffected —
            only trace speed.  Defaults to ``REPRO_ENGINE_DELTA_TRACE``,
            else off.
        delta_threshold: Fraction of a frame the diff may touch before
            the delta path falls back to a full rebuild; defaults to
            ``REPRO_ENGINE_DELTA_THRESHOLD``, else 0.5.
    """

    def __init__(self, simulators, models, scenarios=None,
                 cache: TraceCache = None, trace_provider=None,
                 frame_provider: FrameProvider = None,
                 cell_filter=None, backend=None, max_workers: int = None,
                 trace_workers: int = None, rulegen_shards: int = None,
                 delta_trace: bool = None, delta_threshold: float = None,
                 faults: str = None, degrade: bool = None):
        self.simulators = resolve_simulators(simulators)
        self.models = list(models)
        self.scenarios = list(scenarios) if scenarios else [DEFAULT_SCENARIO]
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(
                f"scenario names must be unique (table rows are looked up "
                f"by name), got {names}"
            )
        model_names = [self._model_name(model) for model in self.models]
        if len(set(model_names)) != len(model_names):
            raise ValueError(
                f"model names must be unique (traces and table rows are "
                f"keyed by name), got {model_names}"
            )
        simulator_names = [simulator.name for simulator in self.simulators]
        if len(set(simulator_names)) != len(simulator_names):
            raise ValueError(
                f"simulator names must be unique (table rows are looked "
                f"up by name), got {simulator_names}"
            )
        self.cell_filter = cell_filter
        self.cache = cache if cache is not None else shared_trace_cache()
        self.trace_provider = trace_provider
        self.frame_provider = frame_provider or FrameProvider()
        # Remember whether the backend was chosen by the caller or only
        # inherited from the environment: an explicit incompatible
        # choice is an error, an environment default falls back.
        self._backend_explicit = backend is not None
        self.backend = backend if backend is not None else (
            default_backend_name()
        )
        self.max_workers = resolve_workers(max_workers)
        self.trace_workers = resolve_trace_workers(trace_workers,
                                                   self.max_workers)
        self.rulegen_shards = resolve_rulegen_shards(rulegen_shards)
        self.delta_trace = resolve_delta_trace(delta_trace)
        self.delta_threshold = resolve_delta_threshold(delta_threshold)
        self.faults = resolve_faults(faults)
        self.degrade = resolve_degrade(degrade)
        self._specs = {}
        self._progress = None
        self._observer = None
        self._journal = None
        #: The :class:`~repro.engine.spec.ExperimentSpec` this runner
        #: was built from, set by ``ExperimentSpec.build_runner``; the
        #: distributed backend serializes its work units from it.
        self.source_spec = None

    def _spec_for(self, model) -> ModelSpec:
        if isinstance(model, ModelSpec):
            return model
        if model not in self._specs:
            self._specs[model] = build_model_spec(model)
        return self._specs[model]

    @staticmethod
    def _model_name(model) -> str:
        return model.name if isinstance(model, ModelSpec) else model

    def trace_for(self, scenario: Scenario, model, frame: int = 0,
                  prev_trace: ModelTrace = None) -> ModelTrace:
        """The (cached) trace feeding one frame of one grid cell.

        ``prev_trace`` may carry the previous sequential frame's trace:
        with ``delta_trace`` enabled a cache miss is then computed by
        patching that trace's rules instead of rebuilding (content keys
        never change, so hits behave identically either way).
        """
        if self.trace_provider is not None:
            if frame != 0:
                raise ValueError(
                    "trace_provider is single-frame; batched scenarios "
                    "(frames > 1) need the frame-provider path"
                )
            return self.trace_provider(scenario, self._model_name(model))
        built = self.frame_provider.frame_for(scenario, model, frame)
        return self.cache.get_trace(
            self._spec_for(model),
            built.coords,
            built.point_counts.astype(float),
            rulegen_shards=self.rulegen_shards,
            prev_trace=prev_trace if self.delta_trace else None,
            delta_threshold=self.delta_threshold,
            label=(scenario.name, self._model_name(model)),
        )

    def trace_chain(self, scenario: Scenario, model) -> list:
        """All frame traces of one (scenario, model), in frame order.

        With ``delta_trace`` enabled this is the sequential delta chain:
        frame 0 full, every later frame seeded by its predecessor's
        trace; otherwise it is a plain per-frame loop.
        """
        traces = []
        prev = None
        for frame in range(scenario.frames):
            trace = self.trace_for(scenario, model, frame, prev_trace=prev)
            traces.append(trace)
            prev = trace if self.delta_trace else None
        return traces

    def plan(self) -> list:
        """The work groups of one sweep, in deterministic table order.

        One :class:`~repro.engine.backends.WorkGroup` per (scenario,
        model) that has at least one simulator surviving the cell
        filter; groups are scenario-major, matching the row order of the
        resulting table.
        """
        groups = []
        for scenario in self.scenarios:
            for model in self.models:
                simulators = tuple(
                    simulator
                    for simulator in self.simulators
                    if self.cell_filter is None
                    or self.cell_filter(scenario, self._model_name(model),
                                        simulator)
                )
                if simulators:
                    groups.append(WorkGroup(scenario, model, simulators))
        return groups

    def run(self, parallel: bool = True, backend=None,
            progress=False, observer=None, journal=None) -> ExperimentTable:
        """Execute the full grid.

        Args:
            parallel: ``False`` forces the serial backend (identical
                results — useful for debugging and for measuring the
                parallel speedup); ``True`` (default) uses the runner's
                configured backend.
            backend: Per-call backend override (instance or name),
                taking precedence over both ``parallel`` and the
                runner's configured backend.
            progress: ``True`` prints per-group completion
                (``done/total``, elapsed) to stderr as the sweep runs;
                a callable receives ``(done, total, elapsed_seconds)``
                instead.  Every backend reports through the same seam.
            observer: Optional
                :class:`~repro.engine.manifest.RunObserver` collecting
                per-unit timings, phase timings, cache statistics and
                streaming per-layer analytics for a
                :class:`~repro.engine.manifest.RunManifest`.  Every
                backend reports through the same seam as progress.
            journal: Optional :class:`~repro.engine.journal.RunJournal`
                (or a path for one) checkpointing every completed work
                group.  An existing journal resumes: its spec hash is
                validated, completed units are skipped, and their
                journaled rows are stitched back in plan order, so the
                resumed table is identical to an uninterrupted run.

        Returns:
            An :class:`ExperimentTable` in deterministic
            scenarios x models x simulators order (per-frame rows plus a
            ``"mean"`` row per cell for batched scenarios).
        """
        if backend is not None:
            chosen = resolve_backend(backend)
        elif not parallel:
            chosen = SerialBackend()
        else:
            chosen = resolve_backend(self.backend)
            if (not self._backend_explicit
                    and chosen.incompatibility(self) is not None):
                # The backend default came from REPRO_ENGINE_BACKEND but
                # this runner fails its preconditions (in-process
                # trace/frame plumbing for the process pool, a
                # spec-built runner for the distributed backend) — fall
                # back to threads rather than failing a runner the
                # caller never asked to put on that backend.
                chosen = ThreadBackend()
        if self.trace_provider is not None and any(
            scenario.frames > 1 for scenario in self.scenarios
        ):
            raise ValueError(
                "trace_provider is single-frame; batched scenarios "
                "(frames > 1) need the frame-provider path"
            )
        groups = self.plan()
        done = set()
        pending = groups
        if journal is not None:
            if not isinstance(journal, RunJournal):
                journal = RunJournal(journal)
            journal.open_for_run(self, groups)
            done = journal.completed_keys()
            pending = [group for group in groups
                       if self._group_key(group) not in done]
        if progress:
            sink = progress if callable(progress) else None
            self._progress = ProgressReporter(len(pending), sink=sink)
        if observer is not None:
            self._observer = observer
            observer.attach(self)
            # Replay resumed units so the manifest's unit log and
            # streaming analytics cover the whole sweep, not just the
            # groups executed after the resume point.
            for group in groups:
                key = self._group_key(group)
                if key in done:
                    observer.record_unit(
                        group.scenario.name,
                        self._model_name(group.model),
                        journal.seconds_for(key),
                        results=journal.rows_for(key),
                        worker=journal.worker_for(key),
                    )
        self._journal = journal
        try:
            with _faults.scoped(self.faults):
                if not pending:
                    nested = []
                else:
                    try:
                        nested = chosen.execute(self, pending)
                    except BackendUnavailable as error:
                        if not self.degrade:
                            raise
                        fallback = self._degraded_backend(error)
                        telemetry.log_line(
                            f"warning: {chosen.name} backend unavailable "
                            f"({error}); degrading to {fallback.name}"
                        )
                        nested = fallback.execute(self, pending)
        finally:
            self._progress = None
            self._journal = None
            if journal is not None:
                journal.close()
            if observer is not None:
                # A traced run snapshots its span counts and the
                # metrics registry into the manifest's `telemetry`
                # key; untraced manifests don't carry the key at all.
                if telemetry.active_tracer() is not None:
                    observer.record_telemetry(
                        telemetry.telemetry_snapshot())
                observer.finish(self)
                self._observer = None
        if done:
            # Stitch journaled rows back in plan order around the rows
            # the backend just produced for the pending groups.
            live = iter(nested)
            nested = [
                journal.rows_for(key) if key in done else next(live)
                for key in map(self._group_key, groups)
            ]
        return ExperimentTable(
            results=[row for rows in nested for row in rows]
        )

    def _group_key(self, group) -> str:
        """The journal unit key of one work group."""
        return unit_key(group.scenario.name, self._model_name(group.model))

    def _degraded_backend(self, error):
        """The first compatible backend on ``error``'s fallback ladder."""
        for name in getattr(error, "fallbacks", ("process", "serial")):
            candidate = resolve_backend(name)
            if candidate.incompatibility(self) is None:
                return candidate
        return SerialBackend()
