"""Adapters putting every simulator family behind one interface.

A :class:`Simulator` consumes a :class:`~repro.analysis.sparsity.ModelTrace`
(one frame's per-layer rules and counts) and returns a
:class:`~repro.engine.result.SimResult`.  The adapters wrap the legacy
simulators without changing their numbers: each one calls the same code
the pre-engine benchmarks called directly and copies the outcome into the
unified schema, keeping the original result object in ``SimResult.raw``.

``build_simulator`` turns short spec strings ("spade-he", "dense-le",
"pointacc-he", "spconv2d", "platform:A6000") into configured instances so
experiment grids can be declared as plain data.  Resolution goes through
the :mod:`~repro.engine.registry` simulator registry: the first token of
the spec string names a registered *family factory* and the remaining
dash/colon-separated tokens are its arguments, so third-party simulators
registered via ``@register_simulator`` plug into runners, declarative
spec files and the ``repro`` CLI without touching this module.  Unknown
or malformed spec strings raise a :class:`ValueError` listing the
registered names.
"""

from __future__ import annotations

from ..analysis.sparsity import ModelTrace
from ..baselines.platforms import (
    HIGH_END_PLATFORMS,
    LOW_END_PLATFORMS,
    PlatformModel,
    PlatformSpec,
)
from ..baselines.pointacc import PointAccSimulator
from ..baselines.spconv2d_acc import SpConv2DAccModel
from ..core.accelerator import ModelResult, SpadeAccelerator
from ..core.config import SPADE_HE, SPADE_LE, SpadeConfig
from ..core.dense import DenseAccelerator
from .registry import SIMULATORS, UnknownNameError, register_simulator
from .result import SimResult


class Simulator:
    """Interface every engine simulator implements.

    Attributes:
        name: Stable display name; the runner uses it as the row label.
    """

    name: str = "simulator"

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        raise NotImplementedError


def _cycles_to_ms(cycles: int, clock_ghz: float) -> float:
    return cycles / (clock_ghz * 1e9) * 1e3


def _fps(latency_ms: float) -> float:
    return 1e3 / latency_ms if latency_ms else 0.0


def _from_model_result(simulator_name: str, result: ModelResult,
                       config: SpadeConfig) -> SimResult:
    """SPADE and DenseAcc share :class:`ModelResult`; adapt it once."""
    per_layer = [
        {
            "name": layer.trace.spec.name,
            "cycles": layer.schedule.total_cycles,
            "macs": layer.schedule.macs,
            "dram_bytes": layer.schedule.dram_bytes,
            "energy_pj": layer.energy.total_pj,
            "overhead_fraction": layer.schedule.overhead_fraction,
            "effective_ta": layer.schedule.effective_ta,
        }
        for layer in result.layers
    ]
    return SimResult(
        simulator=simulator_name,
        model=result.model_name,
        cycles=result.total_cycles,
        latency_ms=result.latency_ms,
        fps=result.fps,
        energy_mj=result.energy_mj,
        dram_bytes=result.total_dram_bytes,
        utilization=result.utilization(config),
        per_layer=per_layer,
        extras={
            "breakdown": dict(result.breakdown()),
            "energy_breakdown": result.energy,
            "total_macs": result.total_macs,
        },
        raw=result,
    )


class SpadeSimulator(Simulator):
    """The SPADE cycle simulator behind the unified interface."""

    def __init__(self, config: SpadeConfig, optimize: bool = True,
                 name: str = None):
        self.config = config
        self.optimize = optimize
        self._accelerator = SpadeAccelerator(config, optimize=optimize)
        self.name = name or (
            f"SPADE.{config.name}" + ("" if optimize else " (no opt)")
        )

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        result = self._accelerator.run_trace(trace)
        sim_result = _from_model_result(self.name, result, self.config)
        return sim_result


class DenseAccSimulator(Simulator):
    """DenseAcc baseline: every layer of the given trace, densified."""

    def __init__(self, config: SpadeConfig, name: str = None):
        self.config = config
        self._accelerator = DenseAccelerator(config)
        self.name = name or f"DenseAcc.{config.name}"

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        result = self._accelerator.run_trace(trace)
        return _from_model_result(self.name, result, self.config)


class PointAccSim(Simulator):
    """PointAcc-style sort-based accelerator (paper Sec. IV-B4)."""

    def __init__(self, config: SpadeConfig, name: str = None, **kwargs):
        self.config = config
        self._simulator = PointAccSimulator(config, **kwargs)
        self.name = name or f"PointAcc.{config.name}"

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        result = self._simulator.run_trace(trace)
        latency_ms = _cycles_to_ms(result.total_cycles, self.config.clock_ghz)
        per_layer = [
            {
                "name": layer.name,
                "cycles": layer.total_cycles,
                "mapping_cycles": layer.mapping_cycles,
                "gather_scatter_cycles": layer.gather_scatter_cycles,
                "mxu_cycles": layer.mxu_cycles,
                "dram_bytes": layer.dram_bytes,
            }
            for layer in result.layers
        ]
        return SimResult(
            simulator=self.name,
            model=result.model_name,
            cycles=result.total_cycles,
            latency_ms=latency_ms,
            fps=_fps(latency_ms),
            energy_mj=None,            # no energy model published
            dram_bytes=result.total_dram_bytes,
            utilization=None,
            per_layer=per_layer,
            extras={"phases": result.phase_totals()},
            raw=result,
        )


class SpadeNoOverlapSim(Simulator):
    """SPADE with dataflow phases fully serialized (paper Sec. IV-B4).

    The Fig. 14/15 comparison setup: no overlap between mapping,
    gather/scatter and MXU phases, matching the conditions under which
    the paper compares against the PointAcc simulator.  Phase cycle
    totals land in ``extras["phases"]`` with the same keys the
    :class:`PointAccSim` adapter reports.
    """

    def __init__(self, config: SpadeConfig, name: str = None):
        self.config = config
        self.name = name or f"SPADE.{config.name} (no overlap)"

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        from ..baselines.pointacc import spade_no_overlap

        result = spade_no_overlap(trace, self.config)
        latency_ms = _cycles_to_ms(result.total_cycles, self.config.clock_ghz)
        return SimResult(
            simulator=self.name,
            model=result.model_name,
            cycles=result.total_cycles,
            latency_ms=latency_ms,
            fps=_fps(latency_ms),
            energy_mj=None,            # the comparison is latency/DRAM only
            dram_bytes=result.dram_bytes,
            utilization=None,
            per_layer=[],
            extras={"phases": result.phase_totals()},
            raw=result,
        )


class SpConv2DSim(Simulator):
    """SpConv2D-Acc (SCNN-style) baseline over the frame's sparse layers.

    Dense layers carry no element-sparsity story and are skipped, exactly
    as the legacy Fig. 2 benchmarks did; their count lands in ``extras``.
    """

    name = "SpConv2D-Acc"

    def __init__(self, pe_rows: int = 16, pe_cols: int = 16,
                 num_banks: int = 16, clock_ghz: float = 1.0,
                 name: str = None):
        self._model = SpConv2DAccModel(pe_rows=pe_rows, pe_cols=pe_cols,
                                       num_banks=num_banks)
        self.pe_rows = pe_rows
        self.clock_ghz = clock_ghz
        if name:
            self.name = name

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        per_layer = []
        total_cycles = 0
        total_macs = 0
        weighted_util = 0.0
        skipped_dense = 0
        for layer in trace.layers:
            if layer.rules is None:
                skipped_dense += 1
                continue
            report = self._model.run_rules(
                layer.rules, layer.spec.in_channels, layer.spec.out_channels
            )
            per_layer.append({
                "name": layer.spec.name,
                "cycles": report.cycles,
                "macs": report.macs,
                "utilization": report.utilization,
                "bank_conflict_rate": report.bank_conflict_rate,
            })
            total_cycles += report.cycles
            total_macs += report.macs
            weighted_util += report.utilization * report.cycles
        latency_ms = _cycles_to_ms(total_cycles, self.clock_ghz)
        return SimResult(
            simulator=self.name,
            model=trace.spec.name,
            cycles=total_cycles,
            latency_ms=latency_ms,
            fps=_fps(latency_ms),
            energy_mj=None,
            dram_bytes=None,
            utilization=(weighted_util / total_cycles) if total_cycles
            else None,
            per_layer=per_layer,
            extras={"skipped_dense_layers": skipped_dense,
                    "total_macs": total_macs},
            raw=None,
        )


class PlatformSim(Simulator):
    """Analytic GPU / CPU / Jetson platform model."""

    def __init__(self, spec: PlatformSpec, name: str = None):
        self.spec = spec
        self._model = PlatformModel(spec)
        self.name = name or spec.name

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        result = self._model.run_trace(trace)
        return SimResult(
            simulator=self.name,
            model=result.model_name,
            cycles=None,               # analytic model: no cycle notion
            latency_ms=result.latency_ms,
            fps=result.fps,
            energy_mj=result.energy_mj,
            dram_bytes=None,
            utilization=None,
            per_layer=[],
            extras={"phases": result.phases(), "power_w": result.power_w},
            raw=result,
        )


class TraceStatsSim(Simulator):
    """Workload statistics of the trace itself — no hardware model.

    Reports the geometric quantities Table I and the sparsity studies
    are built from (total MACs/ops, active input count, layer count) so
    workload characterization sweeps run through the same engine grid as
    the cycle simulators instead of hand-walking traces.
    """

    name = "TraceStats"

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        per_layer = [
            {
                "name": layer.spec.name,
                "macs": int(layer.sparse_macs),
                "inputs": int(layer.in_count),
                "outputs": int(layer.out_count),
            }
            for layer in trace.layers
        ]
        return SimResult(
            simulator=self.name,
            model=trace.spec.name,
            cycles=None,
            latency_ms=None,
            fps=None,
            energy_mj=None,
            dram_bytes=None,
            utilization=None,
            per_layer=per_layer,
            extras={
                "total_macs": int(trace.total_macs),
                "total_ops": int(trace.total_ops),
                "input_active": int(trace.input_active),
                "layers": len(trace.layers),
            },
            raw=None,
        )


# ---------------------------------------------------------------------------
# Spec-string resolution through the simulator registry
# ---------------------------------------------------------------------------

_PLATFORMS = {
    spec.name.lower(): spec
    for spec in HIGH_END_PLATFORMS + LOW_END_PLATFORMS
}

_CONFIGS = {"he": SPADE_HE, "le": SPADE_LE}


def _spade_config(family: str, args: tuple) -> SpadeConfig:
    """The HE/LE config token every SPADE-family factory requires."""
    if not args or args[0] not in _CONFIGS:
        raise UnknownNameError(
            f"simulator spec {family!r} needs a config token: "
            f"{sorted(_CONFIGS)} (e.g. {family}-he)"
        )
    return _CONFIGS[args[0]]


@register_simulator("spade")
def _build_spade(*args) -> Simulator:
    """SPADE cycle simulator: ``spade-he``, ``spade-le``, ``spade-he-noopt``."""
    return SpadeSimulator(_spade_config("spade", args),
                          optimize="noopt" not in args)


@register_simulator("dense")
def _build_dense(*args) -> Simulator:
    """Ideal dense accelerator: ``dense-he``, ``dense-le``."""
    return DenseAccSimulator(_spade_config("dense", args))


@register_simulator("pointacc")
def _build_pointacc(*args) -> Simulator:
    """PointAcc sort-based baseline: ``pointacc-he``, ``pointacc-le``."""
    return PointAccSim(_spade_config("pointacc", args))


@register_simulator("spconv2d")
def _build_spconv2d() -> Simulator:
    """SpConv2D-Acc (SCNN-style) element-sparsity baseline: ``spconv2d``."""
    return SpConv2DSim()


@register_simulator("platform")
def _build_platform(*args) -> Simulator:
    """Analytic platform model: ``platform:A6000`` (any platform name)."""
    if len(args) != 1 or not args[0]:
        raise UnknownNameError(
            f"platform spec needs exactly one platform name "
            f"(e.g. platform:A6000); choices: {sorted(_PLATFORMS)}"
        )
    platform = args[0]
    if platform not in _PLATFORMS:
        raise UnknownNameError(
            f"unknown platform {platform!r}; choices: {sorted(_PLATFORMS)}"
        )
    return PlatformSim(_PLATFORMS[platform])


@register_simulator("stats")
def _build_stats() -> Simulator:
    """Trace workload statistics (GOPs, active inputs): ``stats``."""
    return TraceStatsSim()


def build_simulator(spec: str) -> Simulator:
    """Instantiate a simulator from a short declarative string.

    Built-in forms: ``"spade-he"``, ``"spade-le"``, ``"spade-he-noopt"``,
    ``"dense-he"``, ``"dense-le"``, ``"pointacc-he"``, ``"pointacc-le"``,
    ``"spconv2d"``, ``"stats"``, ``"platform:A6000"`` (any platform
    name) — plus any family added via
    :func:`~repro.engine.registry.register_simulator`.  The first token
    (before ``-`` or ``:``) names the registered family; the remaining
    tokens are the factory's arguments.

    Raises:
        ValueError: for an unknown family (listing every registered
            name) or a malformed argument list (listing the valid
            choices); also a :class:`KeyError` for backward
            compatibility.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise UnknownNameError(
            f"simulator spec must be a non-empty string, got {spec!r}; "
            f"registered families: {SIMULATORS.names()}"
        )
    token = spec.strip().lower()
    if ":" in token:
        family, _, arg = token.partition(":")
        args = (arg,)
    else:
        parts = token.split("-")
        family, args = parts[0], tuple(parts[1:])
    factory = SIMULATORS.get(family)
    try:
        return factory(*args)
    except TypeError:
        # A factory fed arguments its signature rejects ("spconv2d-he",
        # "stats-x") keeps the spec-string error contract: a ValueError
        # naming the family's usage, never a bare traceback.
        usage = SIMULATORS.describe(family)
        raise UnknownNameError(
            f"simulator spec {spec!r} has arguments the {family!r} "
            f"family does not accept"
            + (f"; usage: {usage}" if usage else "")
        ) from None


def resolve_simulators(simulators) -> list:
    """Normalize a mixed list of instances / spec strings to instances."""
    resolved = []
    for item in simulators:
        if isinstance(item, str):
            resolved.append(build_simulator(item))
        elif isinstance(item, Simulator):
            resolved.append(item)
        else:
            raise TypeError(
                f"expected Simulator or spec string, got {type(item)!r}"
            )
    return resolved
