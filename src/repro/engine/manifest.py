"""Run manifests: how a result table was produced, as an artifact.

A result sink (``results.json`` / ``results.csv``) records *what* came
out of a sweep; the :class:`RunManifest` written next to it records
*how* — the resolved experiment spec and its content hash, the git
revision of the tree, the resolved engine settings, which backend (and,
for distributed runs, which workers) executed the plan, per-unit and
per-phase timings, trace-cache hit/miss/disk statistics, delta-tracing
utilization, and streaming per-layer sparsity analytics.  Together with
the table it makes a run a self-contained, diffable reproduction
artifact: ``repro report`` renders both, and two manifests can be
compared field-for-field to explain why two tables differ.

The data flows in through a :class:`RunObserver` — a thread-safe hook
the :class:`~repro.engine.runner.ExperimentRunner` carries for the
duration of one ``run()`` call.  Backends report through module helpers
in :mod:`~repro.engine.backends` (the same pattern as progress
reporting): each finished work group contributes one *unit* record
(scenario, model, wall seconds, row count, executing worker), each
backend stage contributes a *phase* timing, and every streamed row's
per-layer detail feeds a
:class:`~repro.analysis.sparsity.SparsityAnalyzer` incrementally, so
observation never retains tables or traces.

Coverage by backend: the serial and thread backends time units
in-process; the process backend times them inside its worker processes
and ships the seconds back with the rows; the distributed backend's
workers time each group and return timings in the existing row-stream
``result`` message, so unit records stay complete even when units are
requeued across worker failures (the first accepted result carries the
timings).  Trace-cache statistics are the *coordinating* process's
cache delta — for process and distributed runs the per-worker caches
live elsewhere, so those manifests record the local trace-stage
activity only.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import subprocess
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from ..analysis.sparsity import SparsityAnalyzer

#: Schema identifier stamped into every manifest file.
MANIFEST_SCHEMA = "repro.RunManifest"

#: Manifest layout version; bumped on breaking changes so old files
#: fail loudly instead of misparsing.
MANIFEST_VERSION = 1

#: Numeric cache-statistics keys that are *deltas* over one run (the
#: remaining keys — entry count, directory — are end-of-run state).
_CACHE_DELTA_KEYS = ("hits", "misses", "disk_hits", "disk_writes",
                     "delta_layers", "full_layers", "quarantined")


def spec_hash(spec_dict: dict) -> str:
    """Content hash of one resolved experiment-spec dict.

    The digest is taken over the canonical JSON form (sorted keys,
    minimal separators), so two specs that serialize to the same
    document hash identically regardless of key order or formatting.
    """
    canonical = json.dumps(spec_dict, sort_keys=True,
                           separators=(",", ":"), default=str)
    return hashlib.sha1(canonical.encode()).hexdigest()


def git_revision(root=None) -> str:
    """The checked-out git revision of ``root`` (or the cwd), or None.

    Best effort by design: a missing ``git`` binary, a non-repository
    directory or any other failure yields ``None`` rather than an
    error — manifests must be writable from deployment environments
    that never see the repository.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def manifest_path_for(out) -> Path:
    """The manifest path written alongside one result sink.

    ``results.json`` maps to ``results.manifest.json`` (likewise for
    ``.csv`` or any other suffix); the manifest always lands next to
    the table it describes.
    """
    path = Path(out)
    return path.with_name(path.stem + ".manifest.json")


class RunObserver:
    """Streaming collector of one run's execution statistics.

    Attach one to :meth:`ExperimentRunner.run(observer=...)
    <repro.engine.runner.ExperimentRunner.run>`; every backend then
    reports per-unit timings, phase timings and streamed rows through
    it (see :func:`~repro.engine.backends.observe_unit_done`).  All
    methods are thread-safe — parallel backends call them from pool
    threads and the distributed backend from connection handlers.

    Attributes:
        units: One dict per finished work group: ``{"scenario",
            "model", "seconds", "rows", "worker"}`` (``worker`` is the
            executing distributed worker's id, else None).
        phases: One ``{"name", "seconds"}`` dict per recorded stage
            (trace stage, total run, ...), in completion order.
        analyzer: The :class:`~repro.analysis.sparsity.SparsityAnalyzer`
            fed every streamed row's per-layer detail.
        cache_stats: Trace-cache statistics delta over the observed run
            (populated by :meth:`finish`).
        dist: Distributed-run detail (coordinator stats, worker roster,
            resolved dist settings), or None for local backends.
        telemetry: Span counts + metrics-registry snapshot from
            :mod:`repro.engine.telemetry` for traced runs, or None
            (untraced manifests don't carry the key).
    """

    def __init__(self, analyzer: SparsityAnalyzer = None):
        self.units = []
        self.phases = []
        self.analyzer = analyzer if analyzer is not None \
            else SparsityAnalyzer()
        self.cache_stats = {}
        self.dist = None
        self.telemetry = None
        self._lock = threading.Lock()
        self._started = None
        self._cache_before = None

    # -- lifecycle (driven by ExperimentRunner.run) ------------------------

    def attach(self, runner) -> None:
        """Snapshot pre-run state; called as the run starts."""
        with self._lock:
            self._started = time.monotonic()
            self._cache_before = runner.cache.stats()

    def finish(self, runner) -> None:
        """Record the total wall time and the cache-stats delta."""
        with self._lock:
            if self._started is not None:
                self.phases.append({
                    "name": "run",
                    "seconds": time.monotonic() - self._started,
                })
            after = runner.cache.stats()
            before = self._cache_before or {}
            delta = {
                key: after.get(key, 0) - before.get(key, 0)
                for key in _CACHE_DELTA_KEYS
            }
            delta["entries"] = after.get("entries", 0)
            delta["disk_dir"] = after.get("disk_dir")
            self.cache_stats = delta

    # -- streaming hooks (driven by backends) ------------------------------

    def record_unit(self, scenario: str, model: str, seconds: float,
                    results=(), worker: str = None) -> None:
        """One finished work group: timing plus its streamed rows."""
        rows = 0
        for result in results:
            rows += 1
            self.analyzer.ingest_result(result)
        with self._lock:
            self.units.append({
                "scenario": str(scenario),
                "model": str(model),
                "seconds": float(seconds),
                "rows": rows,
                "worker": worker,
            })

    def record_phase(self, name: str, seconds: float) -> None:
        """One named backend stage's wall time."""
        with self._lock:
            self.phases.append({
                "name": str(name),
                "seconds": float(seconds),
            })

    @contextlib.contextmanager
    def phase(self, name: str):
        """Context manager timing one stage into :attr:`phases`."""
        started = time.monotonic()
        try:
            yield self
        finally:
            self.record_phase(name, time.monotonic() - started)

    def record_dist(self, stats: dict, workers: list,
                    settings: dict = None) -> None:
        """Distributed-run detail from the coordinator, post-serve."""
        with self._lock:
            self.dist = {
                "stats": dict(stats or {}),
                "workers": list(workers or []),
                "settings": dict(settings) if settings else None,
            }

    def record_telemetry(self, snapshot: dict) -> None:
        """The traced run's telemetry snapshot (span counts +
        metrics); set once by the runner as a traced run finishes."""
        with self._lock:
            self.telemetry = snapshot

    # -- snapshot ----------------------------------------------------------

    def unit_seconds(self) -> float:
        """Total seconds across recorded units (not wall time)."""
        with self._lock:
            return sum(unit["seconds"] for unit in self.units)

    def as_dict(self) -> dict:
        """JSON-safe snapshot of everything observed so far."""
        with self._lock:
            return {
                "units": [dict(unit) for unit in self.units],
                "phases": [dict(phase) for phase in self.phases],
                "cache": dict(self.cache_stats),
                "dist": (None if self.dist is None
                         else json.loads(json.dumps(self.dist))),
                "analysis": self.analyzer.summary(),
                "telemetry": (None if self.telemetry is None
                              else json.loads(
                                  json.dumps(self.telemetry))),
            }


@dataclass
class RunManifest:
    """Everything recorded about how one result table was produced.

    Attributes:
        name: The experiment spec's name (or the runner's description).
        created: ISO-8601 UTC timestamp of manifest assembly.
        spec: The full resolved :class:`~repro.engine.spec.ExperimentSpec`
            dict, or None for hand-built runners without a source spec.
        spec_hash: SHA-1 of the canonical spec JSON (None without one).
        git_rev: Checked-out git revision, when resolvable.
        backend: Name of the backend that executed the plan.
        settings: Resolved engine-knob snapshot (the runner's actual
            values, not just the environment's).
        table: Result-table shape summary: row count and the scenario /
            model / simulator axes.
        phases: Per-stage wall timings (trace stage, total run, ...).
        units: Per-work-group records (scenario, model, seconds, rows,
            executing worker).
        cache: Trace-cache statistics delta over the run, including
            delta-tracing utilization (``delta_layers`` rule-patched vs
            ``full_layers`` rebuilt, for traces computed locally).
        dist: Distributed-run detail (coordinator stats, worker roster,
            resolved dist settings), or None.
        analysis: Streaming per-layer sparsity/overhead aggregates from
            the run's :class:`~repro.analysis.sparsity.SparsityAnalyzer`.
        journal: Run-journal summary (path, spec hash, resumed vs
            appended unit counts, torn/dropped line recovery), or None
            when the run was not journaled.
        telemetry: Span counts + metrics-registry snapshot from
            :mod:`repro.engine.telemetry`; only present (in the dict
            form) for traced runs, so untraced manifests are unchanged.
    """

    name: str
    created: str
    spec: dict = None
    spec_hash: str = None
    git_rev: str = None
    backend: str = None
    settings: dict = field(default_factory=dict)
    table: dict = field(default_factory=dict)
    phases: list = field(default_factory=list)
    units: list = field(default_factory=list)
    cache: dict = field(default_factory=dict)
    dist: dict = None
    analysis: dict = field(default_factory=dict)
    journal: dict = None
    telemetry: dict = None

    @classmethod
    def collect(cls, runner, table, observer: RunObserver = None,
                backend: str = None, journal=None) -> "RunManifest":
        """Assemble the manifest of one finished run.

        Args:
            runner: The :class:`~repro.engine.runner.ExperimentRunner`
                that executed (its knobs and source spec are recorded).
            table: The resulting
                :class:`~repro.engine.result.ExperimentTable`.
            observer: The :class:`RunObserver` passed to ``run()``;
                None yields a manifest without timings/analytics.
            backend: Override for the recorded backend name; defaults
                to the runner's configured backend.
            journal: The run's
                :class:`~repro.engine.journal.RunJournal` (or its
                ``summary()`` dict); None for unjournaled runs.
        """
        source = getattr(runner, "source_spec", None)
        spec_dict = None
        digest = None
        if source is not None:
            try:
                spec_dict = source.to_dict()
                digest = spec_hash(spec_dict)
            except ValueError:
                spec_dict = None       # unserializable programmatic spec
        if backend is None:
            configured = runner.backend
            backend = configured if isinstance(configured, str) \
                else configured.name
        observed = observer.as_dict() if observer is not None else {}
        cache_dir = getattr(runner.cache, "disk_dir", None)
        return cls(
            name=(spec_dict or {}).get("name")
                 or getattr(source, "name", None) or "run",
            created=datetime.now(timezone.utc).isoformat(),
            spec=spec_dict,
            spec_hash=digest,
            git_rev=git_revision(),
            backend=backend,
            settings={
                "backend": backend,
                "workers": runner.max_workers,
                "trace_workers": runner.trace_workers,
                "rulegen_shards": runner.rulegen_shards,
                "cache_dir": str(cache_dir) if cache_dir else None,
                "delta_trace": runner.delta_trace,
                "delta_threshold": runner.delta_threshold,
                "faults": runner.faults,
                "degrade": runner.degrade,
            },
            table={
                "rows": len(table),
                "scenarios": list(table.scenarios),
                "models": list(table.models),
                "simulators": list(table.simulators),
            },
            phases=observed.get("phases", []),
            units=observed.get("units", []),
            cache=observed.get("cache", {}),
            dist=observed.get("dist"),
            analysis=observed.get("analysis", {}),
            journal=(journal.summary()
                     if hasattr(journal, "summary") else journal),
            telemetry=observed.get("telemetry"),
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """The manifest as a JSON-safe dict (schema-stamped)."""
        out = {
            "schema": MANIFEST_SCHEMA,
            "version": MANIFEST_VERSION,
            "name": self.name,
            "created": self.created,
            "spec": self.spec,
            "spec_hash": self.spec_hash,
            "git_rev": self.git_rev,
            "backend": self.backend,
            "settings": self.settings,
            "table": self.table,
            "phases": self.phases,
            "units": self.units,
            "cache": self.cache,
            "dist": self.dist,
            "analysis": self.analysis,
            "journal": self.journal,
        }
        # Untraced manifests stay byte-compatible with earlier
        # versions: the key exists only when telemetry was recorded.
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from its dict form, validating the schema."""
        if not isinstance(data, dict) \
                or data.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"not a {MANIFEST_SCHEMA} document "
                f"(schema={data.get('schema') if isinstance(data, dict) else None!r})"
            )
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported {MANIFEST_SCHEMA} version "
                f"{data.get('version')!r} (this build reads "
                f"{MANIFEST_VERSION})"
            )
        return cls(**{
            key: data.get(key)
            for key in ("name", "created", "spec", "spec_hash",
                        "git_rev", "backend", "settings", "table",
                        "phases", "units", "cache", "dist", "analysis",
                        "journal", "telemetry")
        })

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON document string."""
        return json.dumps(self.to_dict(), indent=indent, default=str) \
            + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Parse a manifest from its JSON document string."""
        return cls.from_dict(json.loads(text))

    def write(self, path) -> Path:
        """Write the manifest file; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path) -> "RunManifest":
        """Read a manifest file back."""
        return cls.from_json(Path(path).read_text())
