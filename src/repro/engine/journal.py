"""Durable per-run write-ahead journal for resumable sweeps.

A :class:`RunJournal` is a JSONL file: one header line identifying the
run (schema, version, spec hash, spec name), then one line per
*completed work group* — the unit key (``scenario/model``), the wall
seconds the group took, the worker that ran it, and the full row
payload in the engine's wire-record format (the same
:func:`~repro.engine.result.ExperimentTable.to_records` encoding the
dist backend streams over TCP).  Records are flushed and fsynced as
they land, so the journal is exactly as durable as the filesystem.

Resume (``repro run spec.json --resume run.journal``) re-opens the
file, drops a torn trailing record (a partial line with no newline —
the signature of a crash mid-write), validates the header's spec hash
against the spec being run, and hands the runner the set of completed
unit keys plus their decoded rows.  The runner executes only the
pending groups and stitches journal rows back in plan order, so the
resumed output is byte-identical to an uninterrupted run: the record
round-trip used here is the same one the dist parity tests already
pin down.

Unit keys are ``f"{scenario.name}/{model_name}"`` — unique within a
run because the runner rejects duplicate scenario and model names.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from . import faults
from .manifest import spec_hash
from .result import _record_to_result, _result_to_record

__all__ = [
    "JOURNAL_SCHEMA",
    "JOURNAL_VERSION",
    "RunJournal",
    "read_journal",
    "unit_key",
]

JOURNAL_SCHEMA = "repro.RunJournal"
JOURNAL_VERSION = 1


def unit_key(scenario_name, model_name):
    """Return the journal key for a work group: ``scenario/model``."""
    return f"{scenario_name}/{model_name}"


def _scan(data):
    """Scan raw journal bytes into (header, units, dropped, valid_end).

    ``units`` maps unit key -> the decoded record dict, first write
    wins.  ``dropped`` counts complete-but-invalid interior lines
    (skipped, not removed).  ``valid_end`` is the byte offset just past
    the last newline — anything beyond it is a torn trailing record
    that a crash left behind, and is safe to truncate away.
    """
    header = None
    units = {}
    dropped = 0
    offset = 0
    valid_end = 0
    while True:
        newline = data.find(b"\n", offset)
        if newline == -1:
            break
        line = data[offset:newline]
        valid_end = newline + 1
        offset = newline + 1
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            dropped += 1
            continue
        if not isinstance(record, dict):
            dropped += 1
            continue
        if record.get("schema") == JOURNAL_SCHEMA:
            if header is None:
                header = record
            continue
        key = record.get("unit")
        if not isinstance(key, str) or not isinstance(record.get("rows"), list):
            dropped += 1
            continue
        if key not in units:
            units[key] = record
    torn = len(data) - valid_end
    return header, units, dropped, valid_end, torn


def read_journal(path):
    """Read a journal file without opening it for writing.

    Returns a dict with ``header``, ``units`` (list of unit records in
    file order), ``dropped`` (invalid interior lines), ``torn_bytes``
    (length of a torn trailing record, 0 for a clean file), and
    ``path``.  Raises :class:`FileNotFoundError` if the file does not
    exist and :class:`ValueError` if it has no recognizable header.
    """
    path = Path(path)
    data = path.read_bytes()
    header, units, dropped, _valid_end, torn = _scan(data)
    if header is None:
        raise ValueError(
            f"{path} is not a run journal (no {JOURNAL_SCHEMA} header line)"
        )
    return {
        "path": str(path),
        "header": header,
        "units": list(units.values()),
        "dropped": dropped,
        "torn_bytes": torn,
    }


class RunJournal:
    """A write-ahead log of completed work groups for one run.

    Create with a path, then :meth:`open_for_run` against a runner and
    its planned groups: an existing journal is validated (spec hash)
    and its completed units become the resume set; a missing or empty
    file starts fresh.  During the run the backend seam calls
    :meth:`record_unit` once per completed group.
    """

    def __init__(self, path):
        """Bind the journal to ``path`` (not opened until a run starts)."""
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self._completed = {}  # unit key -> raw journal record
        self._decoded = {}  # unit key -> [SimResult], decoded lazily
        self.resumed_units = 0
        self.appended_units = 0
        self.dropped_lines = 0
        self.torn_bytes = 0
        self.spec_hash = None
        self.name = None

    def open_for_run(self, runner, groups):
        """Validate any existing journal against this run and open it.

        The fingerprint is :func:`~repro.engine.manifest.spec_hash` of
        the runner's source spec (or, for spec-less runners, a hash of
        the planned unit keys).  A hash mismatch, a foreign header, or
        completed units that are not in this run's plan all raise
        :class:`ValueError` — resuming the wrong journal must fail
        loudly, not stitch silently-wrong rows.
        """
        fingerprint, name = self._fingerprint(runner, groups)
        plan_keys = {
            unit_key(group.scenario.name, runner._model_name(group.model))
            for group in groups
        }
        data = b""
        if self.path.exists():
            data = self.path.read_bytes()
        if data:
            header, units, dropped, valid_end, torn = _scan(data)
            if header is None:
                raise ValueError(
                    f"--resume: {self.path} is not a run journal "
                    f"(no {JOURNAL_SCHEMA} header line)"
                )
            if header.get("version") != JOURNAL_VERSION:
                raise ValueError(
                    f"--resume: {self.path} has journal version "
                    f"{header.get('version')!r}; this build reads "
                    f"version {JOURNAL_VERSION}"
                )
            if header.get("spec_hash") != fingerprint:
                raise ValueError(
                    f"--resume: {self.path} was written for spec "
                    f"{header.get('name')!r} (hash {header.get('spec_hash')!r}) "
                    f"but this run is {name!r} (hash {fingerprint!r}); "
                    "refusing to stitch rows from a different experiment"
                )
            unknown = sorted(set(units) - plan_keys)
            if unknown:
                raise ValueError(
                    f"--resume: {self.path} holds completed units not in "
                    f"this run's plan: {', '.join(unknown[:5])}"
                    + (" ..." if len(unknown) > 5 else "")
                )
            self._completed = units
            self.resumed_units = len(units)
            self.dropped_lines = dropped
            self.torn_bytes = torn
            handle = open(self.path, "r+b")
            handle.truncate(valid_end)
            handle.seek(0, os.SEEK_END)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = open(self.path, "wb")
            header = {
                "schema": JOURNAL_SCHEMA,
                "version": JOURNAL_VERSION,
                "spec_hash": fingerprint,
                "name": name,
            }
            handle.write(_encode(header))
            handle.flush()
            os.fsync(handle.fileno())
        self.spec_hash = fingerprint
        self.name = name
        self._handle = handle
        return self

    @staticmethod
    def _fingerprint(runner, groups):
        """Return (hash, name) identifying the run this journal belongs to."""
        spec = getattr(runner, "source_spec", None)
        if spec is not None:
            return spec_hash(spec.to_dict()), spec.name
        keys = sorted(
            unit_key(group.scenario.name, runner._model_name(group.model))
            for group in groups
        )
        return spec_hash({"plan": keys}), "<unnamed run>"

    def completed_keys(self):
        """Return the set of unit keys already recorded (the resume set)."""
        return set(self._completed)

    def rows_for(self, key):
        """Decode and return the journaled :class:`SimResult` rows of a unit."""
        if key not in self._decoded:
            record = self._completed[key]
            self._decoded[key] = [
                _record_to_result(row) for row in record["rows"]
            ]
        return self._decoded[key]

    def seconds_for(self, key):
        """Return the recorded wall seconds of a completed unit."""
        return float(self._completed[key].get("seconds") or 0.0)

    def worker_for(self, key):
        """Return the worker id recorded for a completed unit (or None)."""
        return self._completed[key].get("worker")

    def record_unit(self, scenario_name, model_name, seconds, results, worker=None):
        """Append one completed work group; durable once this returns.

        ``results`` may be :class:`SimResult` rows or already-encoded
        record dicts (the dist path).  The write is a single line plus
        flush + fsync, so a crash leaves at worst one torn trailing
        record, which :meth:`open_for_run` truncates on resume.  The
        ``journal.record`` fault site lives here: ``kill_run`` exits
        after the durable write, ``truncate_journal`` writes half the
        line and exits.
        """
        key = unit_key(scenario_name, model_name)
        rows = [
            row if isinstance(row, dict) else _result_to_record(row)
            for row in results
        ]
        record = {
            "unit": key,
            "seconds": float(seconds),
            "worker": worker,
            "rows": rows,
        }
        line = _encode(record)
        with self._lock:
            if self._handle is None or key in self._completed:
                return
            action = faults.check("journal.record", unit=key)
            if action == "truncate_journal":
                self._handle.write(line[: max(1, len(line) // 2)])
                self._handle.flush()
                os.fsync(self._handle.fileno())
                os._exit(23)
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._completed[key] = record
            self.appended_units += 1
            if action == "kill_run":
                os._exit(137)

    def close(self):
        """Close the file handle; the journal object stays readable."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def summary(self):
        """Return manifest-ready counters for this journal."""
        return {
            "path": str(self.path),
            "spec_hash": self.spec_hash,
            "resumed_units": self.resumed_units,
            "appended_units": self.appended_units,
            "dropped_lines": self.dropped_lines,
            "torn_bytes": self.torn_bytes,
        }


def _encode(record):
    """Serialize one journal record to a compact JSONL line (bytes).

    Keys keep their insertion order — sorting would silently reorder
    the nested row dicts (``per_layer`` detail) and break the resumed
    table's byte-identity with an uninterrupted run's JSON output.
    """
    return (
        json.dumps(record, separators=(",", ":")) + "\n"
    ).encode("utf-8")
