"""Live telemetry: span tracer, metrics registry, and fleet exposition.

Three cooperating pieces, all engineered to cost nothing when off:

* :class:`SpanTracer` — a low-overhead tracer of counted, nested spans
  (``trace`` / ``delta-patch`` / ``simulate`` / ``serialize`` /
  ``cache-get`` / ``cache-put`` / ``protocol-send`` / ``protocol-recv``
  / ``queue-wait``).  Each thread keeps its own span stack; completed
  spans become Chrome trace-event dicts (``ph: "X"``) that
  :meth:`SpanTracer.export` writes as a Perfetto-loadable
  ``{"traceEvents": [...]}`` JSON file.  Distributed workers trace
  locally and ship their span batches back inside the existing result
  stream; the coordinator :meth:`ingests <SpanTracer.ingest>` accepted
  batches with ``pid``/``tid`` mapped to worker ids, so one timeline
  covers the whole fleet.  The module-level :func:`span` helper is the
  instrumentation seam every layer calls: when no tracer is active it
  returns a shared no-op context manager — one global read, no
  allocation.

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket latency
  histograms (cache hits/misses/quarantines, rows streamed,
  heartbeats, requeues, scheduler queue depth per band, unit-seconds
  per (scenario, model, simulator)).  The process-wide instance from
  :func:`metrics` is what runner/cache/backends/dist/journal/service
  all increment; it renders to Prometheus text exposition format
  (:meth:`MetricsRegistry.render_prometheus`) and to a JSON-safe
  snapshot stored in the :class:`~repro.engine.manifest.RunManifest`
  under ``telemetry``.

* :func:`log_line` + :func:`serve_metrics` — the one line-buffered,
  lock-guarded stderr writer progress lines and worker warnings both
  route through (no more interleaved half-lines under concurrent dist
  groups), and the tiny stdlib HTTP endpoint behind
  ``repro serve --metrics-port N``.

Tracing is activated per run — ``repro run spec.json --trace-out
run.trace.json`` or ``REPRO_ENGINE_TELEMETRY=1`` — via
:func:`activate`; see ``docs/observability.md``.
"""

from __future__ import annotations

import json
import sys
import threading
import time

#: Span categories used by the engine's instrumentation sites; purely
#: informative (Perfetto colors by category), not an enum contract.
SPAN_CATEGORIES = (
    "engine", "cache", "protocol", "dist", "service",
)

#: Upper edges (seconds) of the fixed latency-histogram buckets; the
#: implicit final bucket is +Inf.  Spans from micro cache probes to
#: multi-minute simulate units all land usefully.
LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 300.0,
)


class _NoopSpan:
    """The shared do-nothing context manager :func:`span` hands out
    when tracing is off — one instance, zero per-call allocation."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()

#: The process-wide active tracer (None = tracing off).  A plain module
#: attribute on purpose: the disabled fast path is a single load.
_ACTIVE_TRACER = None


class _Span:
    """One open span on a thread's stack (context-manager form)."""

    __slots__ = ("tracer", "name", "cat", "args", "ts", "start")

    def __init__(self, tracer, name, cat, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.ts = 0
        self.start = 0

    def __enter__(self):
        self.ts = time.time_ns() // 1_000
        self.start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc):
        duration = (time.perf_counter_ns() - self.start) // 1_000
        self.tracer._record(self.name, self.cat, self.ts, duration,
                            self.args)
        return False


class SpanTracer:
    """Collects counted, nested spans into Chrome trace-event JSON.

    Spans open and close per thread (``tid`` is the OS thread id of the
    emitting thread), timestamps are wall-clock microseconds (so
    batches from loopback workers merge onto one consistent timeline),
    and every completed span bumps a per-name counter.  All mutation of
    the shared event list happens under one lock; the per-span cost is
    two clock reads plus one locked append.

    Args:
        process: ``pid`` label for locally-emitted spans (the
            coordinator/runner process; workers get their own pids via
            :meth:`ingest`).
    """

    def __init__(self, process: str = "repro"):
        self.process = process
        self._lock = threading.Lock()
        self._events = []
        self._counts = {}
        self._micros = {}
        self._processes = {0: process}
        self._next_pid = 1

    # -- recording ----------------------------------------------------------

    def span(self, name: str, cat: str = "engine", **args) -> _Span:
        """An open-span context manager recording on ``with`` exit."""
        return _Span(self, name, cat, args or None)

    def _record(self, name, cat, ts, duration, args) -> None:
        event = {"name": name, "cat": cat, "ph": "X", "ts": ts,
                 "dur": duration, "pid": 0,
                 "tid": threading.get_ident()}
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)
            self._counts[name] = self._counts.get(name, 0) + 1
            self._micros[name] = self._micros.get(name, 0) + duration

    def ingest(self, spans, worker: str) -> None:
        """Merge one worker's shipped span batch into the timeline.

        Each distinct ``worker`` id gets its own stable ``pid`` (named
        in the exported metadata), so Perfetto renders one row group
        per fleet member under the coordinator's.
        """
        if not spans:
            return
        with self._lock:
            pid = next(
                (p for p, name in self._processes.items()
                 if name == worker), None,
            )
            if pid is None:
                pid = self._next_pid
                self._next_pid += 1
                self._processes[pid] = worker
            for event in spans:
                if not isinstance(event, dict):
                    continue
                merged = dict(event)
                merged["pid"] = pid
                self._events.append(merged)
                name = merged.get("name")
                self._counts[name] = self._counts.get(name, 0) + 1
                self._micros[name] = (self._micros.get(name, 0)
                                      + int(merged.get("dur") or 0))

    # -- export -------------------------------------------------------------

    def drain(self) -> list:
        """Remove and return the locally-recorded events (worker side:
        the batch shipped back inside a ``result`` message)."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def counts(self) -> dict:
        """``{span name: completed count}`` so far (all processes)."""
        with self._lock:
            return dict(self._counts)

    def phase_profile(self) -> dict:
        """``{span name: {"count", "micros"}}`` — the per-phase totals
        the manifest stores and the HTML report's timeline renders."""
        with self._lock:
            return {
                name: {"count": count,
                       "micros": self._micros.get(name, 0)}
                for name, count in sorted(self._counts.items())
            }

    def trace_events(self) -> dict:
        """The Chrome trace-event document (``traceEvents`` + process
        metadata), JSON-safe and Perfetto-loadable."""
        with self._lock:
            events = list(self._events)
            processes = dict(self._processes)
        meta = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": name}}
            for pid, name in sorted(processes.items())
        ]
        return {"traceEvents": meta + events,
                "displayTimeUnit": "ms"}

    def export(self, path) -> str:
        """Write :meth:`trace_events` as JSON; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.trace_events(), handle)
        return str(path)


def activate(tracer) -> None:
    """Make ``tracer`` the process-wide active tracer (None turns
    tracing off); instrumentation sites pick it up via :func:`span`."""
    global _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer


def active_tracer():
    """The currently active :class:`SpanTracer`, or ``None``."""
    return _ACTIVE_TRACER


def drain_spans() -> list:
    """Drain the active tracer's local events (``[]`` when tracing is
    off) — the batch a dist worker ships inside its ``result``."""
    tracer = _ACTIVE_TRACER
    if tracer is None:
        return []
    return tracer.drain()


def span(name: str, cat: str = "engine", **args):
    """A span context manager on the active tracer — or the shared
    no-op when tracing is off (the disabled cost: one global read)."""
    tracer = _ACTIVE_TRACER
    if tracer is None:
        return _NOOP
    return tracer.span(name, cat, **args)


class _TracerScope:
    """``with tracing(tracer):`` — activate on enter, restore on exit."""

    def __init__(self, tracer):
        self.tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = _ACTIVE_TRACER
        activate(self.tracer)
        return self.tracer

    def __exit__(self, *exc):
        activate(self._previous)
        return False


def tracing(tracer) -> _TracerScope:
    """Scope ``tracer`` as the active tracer for a ``with`` block."""
    return _TracerScope(tracer)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Process-wide counters, gauges and fixed-bucket histograms.

    Instruments never need pre-registration: the first
    :meth:`count` / :meth:`gauge` / :meth:`observe` call for a
    ``(name, labels)`` pair creates the series.  ``collectors`` are
    zero-argument callables run before every snapshot/render — the
    service registers one that refreshes fleet gauges (worker count,
    queue depth per priority band) from live state, so scrapes are
    always current without per-transition bookkeeping.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}     # name -> {label key -> value}
        self._gauges = {}       # name -> {label key -> value}
        self._histograms = {}   # name -> {label key -> [counts, sum]}
        self._collectors = []

    # -- instruments --------------------------------------------------------

    def count(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (default 1) to a monotonic counter."""
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to ``value``."""
        with self._lock:
            self._gauges.setdefault(name, {})[_label_key(labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a fixed-bucket histogram."""
        key = _label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            entry = series.get(key)
            if entry is None:
                entry = series[key] = [
                    [0] * (len(LATENCY_BUCKETS) + 1), 0.0,
                ]
            counts, _ = entry
            for index, edge in enumerate(LATENCY_BUCKETS):
                if value <= edge:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            entry[1] += value

    def add_collector(self, collector) -> None:
        """Register a callable run before every snapshot/render."""
        with self._lock:
            self._collectors.append(collector)

    def remove_collector(self, collector) -> None:
        """Deregister a collector (absent collectors are ignored)."""
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def reset(self) -> None:
        """Drop every series and collector (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._collectors.clear()

    # -- exposition ---------------------------------------------------------

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:  # noqa: BLE001 — scrapes must not crash
                pass

    def snapshot(self) -> dict:
        """A JSON-safe dump of every series (the ``metrics`` service
        verb reply, and the manifest's ``telemetry.metrics``)."""
        self._run_collectors()
        with self._lock:
            out = {"counters": {}, "gauges": {}, "histograms": {}}
            for kind, source in (("counters", self._counters),
                                 ("gauges", self._gauges)):
                for name, series in sorted(source.items()):
                    out[kind][name] = [
                        {"labels": dict(key), "value": value}
                        for key, value in sorted(series.items())
                    ]
            for name, series in sorted(self._histograms.items()):
                out["histograms"][name] = [
                    {
                        "labels": dict(key),
                        "buckets": list(LATENCY_BUCKETS),
                        "counts": list(entry[0]),
                        "sum": entry[1],
                        "count": sum(entry[0]),
                    }
                    for key, entry in sorted(series.items())
                ]
            return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        self._run_collectors()
        with self._lock:
            lines = []
            for name, series in sorted(self._counters.items()):
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{_label_text(key)} "
                                 f"{_format_value(value)}")
            for name, series in sorted(self._gauges.items()):
                lines.append(f"# TYPE {name} gauge")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{_label_text(key)} "
                                 f"{_format_value(value)}")
            for name, series in sorted(self._histograms.items()):
                lines.append(f"# TYPE {name} histogram")
                for key, entry in sorted(series.items()):
                    counts, total = entry
                    cumulative = 0
                    for edge, count in zip(LATENCY_BUCKETS, counts):
                        cumulative += count
                        lines.append(
                            f"{name}_bucket"
                            f"{_label_text(key, le=repr(float(edge)))} "
                            f"{cumulative}"
                        )
                    cumulative += counts[-1]
                    lines.append(
                        f"{name}_bucket{_label_text(key, le='+Inf')} "
                        f"{cumulative}"
                    )
                    lines.append(f"{name}_sum{_label_text(key)} "
                                 f"{_format_value(total)}")
                    lines.append(f"{name}_count{_label_text(key)} "
                                 f"{cumulative}")
            return "\n".join(lines) + "\n"


def _format_value(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _label_text(key: tuple, **extra) -> str:
    pairs = list(key) + sorted(extra.items())
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + inner + "}"


_METRICS = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` every layer shares."""
    return _METRICS


def telemetry_snapshot() -> dict:
    """The manifest's ``telemetry`` value: the per-phase span profile
    (when a tracer is active) plus the metrics snapshot."""
    out = {"metrics": _METRICS.snapshot()}
    tracer = _ACTIVE_TRACER
    if tracer is not None:
        out["spans"] = tracer.phase_profile()
    return out


# ---------------------------------------------------------------------------
# the one stderr writer (progress lines + worker warnings)
# ---------------------------------------------------------------------------

_STDERR_LOCK = threading.Lock()


def log_line(text: str) -> None:
    """Write one whole line to stderr, lock-guarded and line-buffered.

    Progress reporters and dist worker/coordinator logs all route
    through here, so concurrent emitters can never interleave
    mid-line: each line is a single ``write`` under one process-wide
    lock, flushed before the lock drops.
    """
    with _STDERR_LOCK:
        sys.stderr.write(text + "\n")
        sys.stderr.flush()


# ---------------------------------------------------------------------------
# Prometheus HTTP endpoint (`repro serve --metrics-port N`)
# ---------------------------------------------------------------------------


def serve_metrics(port: int, host: str = "127.0.0.1",
                  registry: MetricsRegistry = None):
    """Serve ``registry`` (default: the shared one) at ``/metrics``.

    A stdlib ``ThreadingHTTPServer`` on a daemon thread; returns the
    started server (``server.server_address[1]`` is the bound port —
    pass ``port=0`` for ephemeral; ``server.shutdown()`` stops it).
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    target = registry if registry is not None else _METRICS

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 — http.server API
            if self.path.rstrip("/") not in ("", "/metrics"):
                self.send_error(404)
                return
            body = target.render_prometheus().encode()
            self.send_response(200)
            self.send_header(
                "Content-Type",
                "text/plain; version=0.0.4; charset=utf-8",
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # silence per-request chatter
            pass

    server = ThreadingHTTPServer((host, int(port)), _Handler)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-metrics-http", daemon=True)
    thread.start()
    return server
