"""The experiment-service client: one framed request per connection.

:class:`ServiceClient` speaks the same length-prefixed JSON-TCP
protocol as the workers (:mod:`repro.engine.dist.protocol`), answering
the server's HMAC ``challenge`` from the shared
``REPRO_ENGINE_DIST_TOKEN`` when one is configured.  Every request
opens a fresh connection, sends one message, reads one reply, and
closes — the service is stateless per client, so there is nothing to
keep alive, and a daemon restart between two requests is invisible.

An ``error`` reply raises :class:`ServiceError` with the server's
message; connectivity problems surface as the underlying
:class:`OSError` (the CLI turns both into exit code 2).
"""

from __future__ import annotations

import socket
import time

from ..dist.protocol import (
    answer_challenge,
    message,
    recv_message,
    send_message,
)
from ..settings import (
    resolve_dist_token,
    resolve_service_host,
    resolve_service_port,
)
from .store import TERMINAL_STATES


class ServiceError(RuntimeError):
    """The service rejected a request (its ``error`` reply's message)."""


class ServiceClient:
    """Talk to a ``repro serve`` daemon.

    Args:
        host: Service host; ``None`` resolves
            ``REPRO_ENGINE_SERVICE_HOST``.
        port: Service port; ``None`` resolves
            ``REPRO_ENGINE_SERVICE_PORT``.
        token: Shared auth secret; ``None`` resolves
            ``REPRO_ENGINE_DIST_TOKEN``.
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(self, host: str = None, port: int = None,
                 token: str = None, timeout: float = 30.0):
        self.host = resolve_service_host(host)
        self.port = resolve_service_port(port)
        self.token = token if token is not None else resolve_dist_token()
        self.timeout = float(timeout)

    def request(self, kind: str, **fields) -> dict:
        """Send one request; return the server's (non-error) reply."""
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as sock:
            send_message(sock, message(kind, **fields))
            reply = answer_challenge(sock, recv_message(sock),
                                     self.token)
        if reply.get("type") == "error":
            raise ServiceError(str(reply.get("error")))
        return reply

    # -- verbs -------------------------------------------------------------

    def submit(self, spec: dict, priority: int = 0,
               submitter: str = "anon") -> dict:
        """Submit one ExperimentSpec dict; returns its queued state."""
        return self.request("submit", spec=spec, priority=int(priority),
                            submitter=str(submitter))

    def status(self, run_id: str = None) -> dict:
        """One run's state record, or the service summary without an id."""
        if run_id is None:
            return self.request("status")
        return self.request("status", run=str(run_id))

    def results(self, run_id: str) -> dict:
        """A finished run's stored CSV/JSON/manifest texts, verbatim."""
        return self.request("results", run=str(run_id))

    def cancel(self, run_id: str) -> dict:
        """Cancel one queued or inflight run."""
        return self.request("cancel", run=str(run_id))

    def queue(self) -> dict:
        """The scheduler's queue snapshot, in dispatch order."""
        return self.request("queue")

    def metrics(self) -> dict:
        """The service's metrics-registry snapshot (counters, gauges,
        histograms — the same numbers the Prometheus endpoint serves)."""
        return self.request("metrics")

    def wait(self, run_id: str, timeout: float = None,
             poll: float = 0.2) -> dict:
        """Poll until one run reaches a terminal state; return it.

        Raises:
            TimeoutError: the run was still pending/running after
                ``timeout`` seconds (``None`` waits forever).
        """
        deadline = (None if timeout is None
                    else time.monotonic() + float(timeout))
        while True:
            state = self.status(run_id)
            if state.get("state") in TERMINAL_STATES:
                return state
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"run {run_id} still {state.get('state')!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll)
