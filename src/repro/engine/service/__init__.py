"""The persistent experiment service (``repro serve``).

One daemon owns the listening socket and a worker fleet that stays
attached across runs; clients submit :class:`~repro.engine.spec.
ExperimentSpec` JSON over the same length-prefixed JSON-TCP protocol
the workers use, and a priority/fair-share scheduler dispatches queued
runs onto the shared fleet.  Every accepted submission is durably
recorded in an on-disk run store, so a daemon restart recovers the
queue and resumes interrupted runs through their journals.

* :mod:`repro.engine.service.store`     — :class:`RunStore`, the
  durable ``runs/<run-id>/`` layout (spec, state, journal, results,
  manifest);
* :mod:`repro.engine.service.scheduler` — :class:`RunScheduler`, the
  pure pending/ready/inflight state machine with priority bands and
  per-submitter fair sharing;
* :mod:`repro.engine.service.server`    — :class:`ExperimentService`
  (the daemon) and :class:`FleetCoordinator` (the run-outliving
  coordinator subclass);
* :mod:`repro.engine.service.client`    — :class:`ServiceClient`, the
  one-request-per-connection client the CLI verbs use.
"""

from .client import ServiceClient, ServiceError
from .scheduler import RunScheduler
from .server import (
    ExperimentService,
    FleetCoordinator,
    RunCancelled,
    ServiceStopped,
)
from .store import (
    RECOVERABLE_STATES,
    RUN_STATES,
    TERMINAL_STATES,
    RunStore,
)

__all__ = [
    "RECOVERABLE_STATES",
    "RUN_STATES",
    "TERMINAL_STATES",
    "ExperimentService",
    "FleetCoordinator",
    "RunCancelled",
    "RunScheduler",
    "RunStore",
    "ServiceClient",
    "ServiceError",
    "ServiceStopped",
]
