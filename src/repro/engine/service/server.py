"""The experiment service: a fleet coordinator plus a run dispatcher.

Two cooperating pieces:

:class:`FleetCoordinator` subclasses the run-scoped
:class:`~repro.engine.dist.coordinator.Coordinator` into a *persistent*
one.  It owns the single listening socket — workers and clients both
connect to it, routed by their first message — and never "completes":
idle workers receive ``wait`` and stay attached across runs, keeping
their warm :class:`~repro.engine.cache.TraceCache` tiers.  Units of
many concurrent runs share its queue (unit ids are
``<run-id>:<n>``, group indices globally offset per run), and all the
inherited assignment / heartbeat / requeue / attempt-cap machinery
works unchanged; only failure is re-scoped — a unit exhausting its
attempts fails *its run*, not the fleet.

:class:`ExperimentService` owns the durable side: the
:class:`~repro.engine.service.store.RunStore`, the
:class:`~repro.engine.service.scheduler.RunScheduler`, and one
executor thread per inflight run.  Each dispatched run executes
through the ordinary ``runner.run(backend=..., observer=...,
journal=...)`` path with a :class:`_FleetRunBackend` that feeds the
shared fleet — so journaled resume, manifests, and byte-identical
CSV/JSON output all ride the same tested machinery a standalone
``repro run`` uses.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from .. import telemetry
from ..backends import (
    Backend,
    _model_name,
    observe_phase,
    observe_unit_done,
    report_group_done,
)
from ..dist.coordinator import Coordinator, DistBackend, build_units
from ..dist.protocol import ProtocolError, message, send_message
from ..journal import RunJournal
from ..manifest import RunManifest, RunObserver
from ..settings import (
    DistSettings,
    ServiceSettings,
    resolve_cache_dir,
)
from ..spec import ExperimentSpec
from .scheduler import RunScheduler
from .store import RunStore, TERMINAL_STATES


class RunCancelled(RuntimeError):
    """An inflight run was cancelled by a client request."""


class ServiceStopped(RuntimeError):
    """The service is shutting down; the run is journaled and resumable."""


class ActiveRun:
    """Fleet-side state of one executing run."""

    def __init__(self, run_id: str):
        self.run_id = run_id
        self.runner = None            # set before units are enqueued
        self.groups = ()              # this run's pending work groups
        self.base_index = None        # global offset of group indices
        self.unit_ids = set()
        self.observed = 0             # groups booked to journal/observer
        self.failure = None           # exception ending the run early


class FleetCoordinator(Coordinator):
    """A coordinator that outlives any single run.

    Constructed with *no* units; runs add theirs via :meth:`add_run`
    and collect rows with :meth:`wait_run`.  Client connections (first
    message not ``hello``) are handed to the owning service.
    """

    def __init__(self, settings: DistSettings, cache_dir: str,
                 service=None, on_group_done=None):
        super().__init__([], settings, cache_dir=cache_dir,
                         on_group_done=on_group_done)
        self.service = service
        self._closing = False
        self._runs = {}               # run id -> ActiveRun
        self._next_index = 0

    # -- base-class seams --------------------------------------------------

    def _completed(self) -> bool:
        """The fleet is 'complete' only when closing — idle workers
        get ``wait`` between runs instead of ``shutdown``."""
        return self._closing

    def _register_failure(self, unit_id, error) -> None:
        """Scope an attempt-cap exhaustion to the unit's own run."""
        run = self._runs.get(str(unit_id).split(":", 1)[0])
        if run is None:
            return
        self._withdraw_locked(run, error)

    def _handle_peer(self, conn, first: dict) -> None:
        """Route an authenticated non-worker connection to the service."""
        if self.service is None:
            conn.close()
            return
        self.service.handle_client(conn, first)

    # -- run lifecycle -----------------------------------------------------

    def allocate_indices(self, count: int) -> int:
        """Reserve a block of global group indices; return its base."""
        with self._cond:
            base = self._next_index
            self._next_index += count
            return base

    def add_run(self, run: ActiveRun, units: list) -> None:
        """Enqueue one run's (already id-rewritten) units on the fleet."""
        with self._cond:
            self._runs[run.run_id] = run
            self.stats["units"] += len(units)
            for unit in units:
                unit_id = unit["unit"]
                self._units[unit_id] = unit
                self._attempts[unit_id] = 0
                self._history[unit_id] = []
                self._pending.append(unit_id)
            self._cond.notify_all()

    def wait_run(self, run: ActiveRun) -> dict:
        """Block until one run's units are all done; return its rows.

        Returns ``{global group index: [SimResult, ...]}`` and retires
        the run's bookkeeping.  Raises the run's failure (attempt-cap
        exhaustion, cancellation, or :class:`ServiceStopped`) instead.
        """
        total = len(run.groups)
        with self._cond:
            while (run.failure is None and not self._closing
                   and not (run.unit_ids <= self._done
                            and run.observed >= total)):
                self._cond.wait(0.2)
            if run.failure is None and self._closing \
                    and not run.unit_ids <= self._done:
                self._withdraw_locked(
                    run, ServiceStopped(
                        "service shutting down; completed units are "
                        "journaled and the run resumes on restart"
                    ),
                )
            if run.failure is not None:
                self._runs.pop(run.run_id, None)
                raise run.failure
            rows = {
                index: self._rows.pop(index)
                for index in range(run.base_index,
                                   run.base_index + total)
            }
            self._retire_locked(run)
            return rows

    def cancel_run(self, run: ActiveRun, error) -> None:
        """Withdraw one run's units and fail it with ``error``."""
        with self._cond:
            self._withdraw_locked(run, error)

    def run_for_index(self, index: int):
        """The active run owning one global group index, or None."""
        with self._cond:
            for run in self._runs.values():
                if run.base_index is not None and \
                        run.base_index <= index \
                        < run.base_index + len(run.groups):
                    return run
        return None

    def close_fleet(self) -> None:
        """Start answering worker requests with ``shutdown``."""
        with self._cond:
            self._closing = True
            self._cond.notify_all()

    # -- internals (condition lock held) -----------------------------------

    def _retire_locked(self, run: ActiveRun) -> None:
        self._runs.pop(run.run_id, None)
        for unit_id in run.unit_ids:
            self._units.pop(unit_id, None)
            self._attempts.pop(unit_id, None)
            self._history.pop(unit_id, None)
            self._done.discard(unit_id)

    def _withdraw_locked(self, run: ActiveRun, error) -> None:
        """Pull one run's units out of every queue and fail it.

        Results still streaming in for withdrawn units are ignored by
        the base handler (the unit id is no longer registered), so a
        worker mid-execution simply finishes into the void and pulls
        fresh work.
        """
        survivors = [unit_id for unit_id in self._pending
                     if unit_id not in run.unit_ids]
        self._pending.clear()
        self._pending.extend(survivors)
        for unit_id in run.unit_ids:
            self._units.pop(unit_id, None)
            self._attempts.pop(unit_id, None)
            self._history.pop(unit_id, None)
            self._inflight.pop(unit_id, None)
            self._done.discard(unit_id)
        if run.base_index is not None:
            for index in range(run.base_index,
                               run.base_index + len(run.groups)):
                self._rows.pop(index, None)
        if run.failure is None:
            run.failure = error
        self._cond.notify_all()


class _FleetRunBackend(Backend):
    """Execute one run's plan on the service's shared worker fleet.

    A per-run, single-use :class:`Backend`: serialize the plan into
    globally-unique units, stage traces into the service cache dir,
    enqueue on the fleet, and block until the run's rows are in.
    """

    name = "service-fleet"

    def __init__(self, service, run: ActiveRun):
        self.service = service
        self.run = run

    def execute(self, runner, groups: list) -> list:
        """Stage, enqueue and await this run's groups on the fleet."""
        if not groups:
            return []
        fleet = self.service.fleet
        run = self.run
        units = build_units(runner, groups, fleet.settings.chunksize)
        base = fleet.allocate_indices(len(groups))
        run.runner = runner
        run.groups = list(groups)
        run.base_index = base
        for unit in units:
            unit["unit"] = f"{run.run_id}:{unit['unit']}"
            for entry in unit["groups"]:
                entry["index"] += base
        run.unit_ids = {unit["unit"] for unit in units}
        trace_started = time.monotonic()
        DistBackend._trace_stage(runner, groups, self.service.cache_dir)
        observe_phase(runner, "trace", time.monotonic() - trace_started)
        fleet.add_run(run, units)
        rows_by_index = fleet.wait_run(run)
        return [rows_by_index[base + offset]
                for offset in range(len(groups))]


class ExperimentService:
    """The ``repro serve`` daemon: socket, fleet, queue and store.

    Args:
        settings: Resolved :class:`ServiceSettings`; ``None`` resolves
            from the environment.
        dist: Resolved :class:`DistSettings` for the fleet's protocol
            knobs (timeouts, chunksize, auth token, batching); ``None``
            resolves from the environment.  The fleet always binds the
            *service* host/port, and its start timeout is disabled —
            queued runs wait for workers instead of failing.
    """

    def __init__(self, settings: ServiceSettings = None,
                 dist: DistSettings = None):
        self.settings = settings or ServiceSettings.resolve()
        self.store = RunStore(self.settings.store_dir)
        cache_dir = resolve_cache_dir()
        if cache_dir is None:
            cache_dir = str(self.store.root / "trace-cache")
        self.cache_dir = cache_dir
        base = dist or DistSettings.resolve()
        self.dist = dataclasses.replace(
            base, host=self.settings.host, port=self.settings.port,
            start_timeout=365 * 24 * 3600.0,
        )
        self.scheduler = RunScheduler(
            max_inflight=self.settings.max_inflight,
            submitter_cap=self.settings.submitter_cap,
        )
        self.fleet = FleetCoordinator(
            self.dist, cache_dir, service=self,
            on_group_done=self._group_done,
        )
        self._lock = threading.Lock()       # scheduler + store moves
        self._wake = threading.Event()      # kicks the dispatch loop
        self._stopping = threading.Event()  # ends the dispatch loop
        self._stop_signal = threading.Event()
        self._draining = False
        self._active = {}                   # run id -> ActiveRun
        self._threads = {}                  # run id -> executor thread
        self._dispatcher = None
        self._gauge_bands = set()           # priority bands seen by scrapes
        telemetry.metrics().add_collector(self._collect_fleet_gauges)

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; differs when port 0)."""
        return self.fleet.port

    def start(self) -> None:
        """Bind the socket, recover the stored queue, start dispatch."""
        self.fleet.start()
        self.recover()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    def recover(self) -> int:
        """Re-queue every non-terminal stored run; return the count.

        ``running`` records (a daemon killed mid-run) come back as
        ``interrupted``; their journals make re-dispatch a resume.
        """
        recovered = self.store.recoverable()
        with self._lock:
            for state in recovered:
                self.scheduler.submit(
                    state["run"],
                    priority=int(state.get("priority") or 0),
                    submitter=str(state.get("submitter") or "anon"),
                )
        if recovered:
            self.fleet._log(
                f"recovered {len(recovered)} run(s) from "
                f"{self.store.root}"
            )
        self._wake.set()
        return len(recovered)

    def request_stop(self) -> None:
        """Signal-handler-safe shutdown request (see :meth:`serve_forever`)."""
        self._stop_signal.set()

    def serve_forever(self) -> int:
        """Block until :meth:`request_stop`, then drain and stop."""
        while not self._stop_signal.wait(0.2):
            pass
        self.stop(drain=True)
        return 0

    def stop(self, drain: bool = True, timeout: float = None) -> None:
        """Shut the service down.

        With ``drain`` (the SIGTERM path): refuse new submissions, let
        inflight runs keep executing up to ``timeout`` (default
        ``drain_timeout``) — every completed unit is already journaled
        — then interrupt whatever remains, mark it resumable, and send
        the workers ``shutdown``.  Queued runs stay ``queued`` in the
        store, so a restarted daemon picks the whole queue back up.

        Without ``drain`` (the hard path, and what a kill approximates):
        interrupt immediately.
        """
        with self._lock:
            self._draining = True
        self._stopping.set()
        self._wake.set()
        if drain:
            budget = (timeout if timeout is not None
                      else self.settings.drain_timeout)
            deadline = time.monotonic() + budget
            while time.monotonic() < deadline and self._active:
                time.sleep(0.05)
        for run in list(self._active.values()):
            self.fleet.cancel_run(run, ServiceStopped(
                "service shutting down; completed units are journaled "
                "and the run resumes on restart"
            ))
        for thread in list(self._threads.values()):
            thread.join(timeout=5.0)
        self.fleet.close_fleet()
        # Give attached workers a request cycle to pull the shutdown
        # reply and exit 0 rather than seeing a dropped socket.
        deadline = time.monotonic() + 3.0
        while time.monotonic() < deadline \
                and self.fleet.worker_snapshot():
            time.sleep(0.1)
        self.fleet.shutdown()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=2.0)
        telemetry.metrics().remove_collector(self._collect_fleet_gauges)

    # -- intake ------------------------------------------------------------

    def submit(self, spec: dict, priority: int = 0,
               submitter: str = "anon") -> dict:
        """Validate, durably record and queue one submission."""
        validated = ExperimentSpec.from_dict(spec).to_dict()
        with self._lock:
            if self._draining:
                raise ValueError(
                    "service is shutting down; not accepting submissions"
                )
            state = self.store.create(validated, priority=priority,
                                      submitter=submitter)
            self.scheduler.submit(state["run"], priority=priority,
                                  submitter=submitter)
        self._wake.set()
        return state

    def cancel(self, run_id: str) -> dict:
        """Cancel one run wherever it is; return its updated state."""
        with self._lock:
            stored = self.store.state(run_id)     # KeyError on unknown
            where = self.scheduler.cancel(run_id)
            if where == "queued":
                return self.store.update(run_id, state="cancelled")
            run = self._active.get(run_id)
        if where == "inflight" and run is not None:
            self.fleet.cancel_run(run, RunCancelled(
                f"run {run_id} cancelled while inflight"
            ))
            return dict(stored, state="cancelling")
        if stored.get("state") in TERMINAL_STATES:
            raise ValueError(
                f"run {run_id} is already {stored['state']}"
            )
        raise ValueError(f"run {run_id} is not cancellable right now")

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            self._wake.wait(0.2)
            self._wake.clear()
            while True:
                with self._lock:
                    if self._draining:
                        break
                    run_id = self.scheduler.next()
                    if run_id is None:
                        break
                    self.scheduler.start(run_id)
                    thread = threading.Thread(
                        target=self._execute, args=(run_id,),
                        name=f"repro-service-run-{run_id}", daemon=True,
                    )
                    self._threads[run_id] = thread
                thread.start()

    def _execute(self, run_id: str) -> None:
        """Run one dispatched submission end to end (its own thread)."""
        outcome = "failed"
        run = ActiveRun(run_id)
        self._active[run_id] = run
        try:
            self.store.update(run_id, state="running")
            spec = ExperimentSpec.from_dict(self.store.spec(run_id))
            runner = spec.build_runner(cache_dir=self.cache_dir)
            journal = RunJournal(self.store.journal_path(run_id))
            observer = RunObserver()
            table = runner.run(backend=_FleetRunBackend(self, run),
                               observer=observer, journal=journal)
            table.to_json(path=self.store.results_path(run_id, "json"))
            table.to_csv(path=self.store.results_path(run_id, "csv"))
            observer.record_dist(dict(self.fleet.stats),
                                 list(self.fleet.roster),
                                 settings=self.dist.as_dict())
            manifest = RunManifest.collect(runner, table,
                                           observer=observer,
                                           journal=journal,
                                           backend="dist")
            manifest.write(self.store.manifest_path(run_id))
            self.store.update(
                run_id, state="done", rows=len(table),
                resumed_units=journal.resumed_units,
                appended_units=journal.appended_units,
            )
            outcome = "done"
        except RunCancelled:
            self.store.update(run_id, state="cancelled")
            outcome = "cancelled"
        except ServiceStopped:
            # Drained shutdown: the journal holds every completed unit
            # and the stored state re-queues on the next daemon start.
            self.store.update(run_id, state="interrupted")
            outcome = "interrupted"
        except Exception as error:  # noqa: BLE001 — booked to the store
            self.store.update(run_id, state="failed", error=str(error))
            self.fleet._log(f"run {run_id} failed: {error}")
        finally:
            self._active.pop(run_id, None)
            self._threads.pop(run_id, None)
            with self._lock:
                self.scheduler.finish(run_id, outcome)
            self._wake.set()

    def _group_done(self, index: int, rows, seconds: float,
                    worker_id: str) -> None:
        """Fleet callback: book one accepted group to its run.

        Rides the same :func:`observe_unit_done` seam as every other
        backend — the journal write happens here, durably, *before*
        the run can complete, which is what makes a drained or killed
        daemon resumable with no lost units.
        """
        run = self.fleet.run_for_index(index)
        if run is None or run.runner is None:
            return
        group = run.groups[index - run.base_index]
        observe_unit_done(run.runner, group.scenario.name,
                          _model_name(group.model), seconds, rows,
                          worker=worker_id)
        report_group_done(run.runner)
        with self.fleet._cond:
            run.observed += 1
            self.fleet._cond.notify_all()

    # -- client connections ------------------------------------------------

    def handle_client(self, conn, first: dict) -> None:
        """Answer one (already authenticated) client request and close."""
        try:
            reply = self._client_reply(first)
        except KeyError as error:
            reply = message("error", error=str(error.args[0])
                            if error.args else str(error))
        except ValueError as error:
            reply = message("error", error=str(error))
        try:
            send_message(conn, reply)
        except (ProtocolError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _client_reply(self, msg: dict) -> dict:
        kind = msg.get("type")
        if kind == "submit":
            state = self.submit(
                msg.get("spec"),
                priority=int(msg.get("priority") or 0),
                submitter=str(msg.get("submitter") or "anon"),
            )
            return message("submitted", **state)
        if kind == "status":
            run_id = msg.get("run")
            if run_id is None:
                return self._summary_reply()
            state = self.store.state(run_id)
            seconds = self._journal_seconds(run_id)
            if seconds is not None:
                state.setdefault("unit_seconds", seconds)
            return message("status", **state)
        if kind == "results":
            return self._results_reply(msg.get("run"))
        if kind == "cancel":
            return message("cancelled", **self.cancel(msg.get("run")))
        if kind == "queue":
            with self._lock:
                return message("queue", **self.scheduler.snapshot())
        if kind == "metrics":
            return message("metrics", **telemetry.metrics().snapshot())
        raise ValueError(f"unknown request type {kind!r}")

    def _summary_reply(self) -> dict:
        with self._lock:
            snapshot = self.scheduler.snapshot()
        return message(
            "status",
            service={
                "host": self.settings.host,
                "port": self.port,
                "store_dir": str(self.store.root),
                "draining": self._draining,
            },
            queue=snapshot,
            workers=self.fleet.worker_snapshot(),
        )

    def _journal_seconds(self, run_id: str) -> float:
        """Total journaled unit seconds for one run, or ``None``.

        The same total ``repro journal inspect --timings`` computes
        from the run's journal file — surfaced in the run's status
        reply so operators see it without store access.
        """
        path = self.store.journal_path(run_id)
        if not path.exists():
            return None
        from ..journal import read_journal

        try:
            info = read_journal(path)
        except (OSError, ValueError):
            return None
        return round(sum(float(record.get("seconds") or 0.0)
                         for record in info["units"]), 6)

    def _collect_fleet_gauges(self) -> None:
        """Registry collector: live fleet/queue gauges, set at scrape time.

        Runs under the registry's collector pass (metrics verb,
        Prometheus scrape, manifest snapshot), so the gauges always
        reflect the moment of observation instead of per-transition
        bookkeeping.  Bands seen once keep reporting (as zero) so a
        drained band's series drops to 0 rather than going stale.
        """
        registry = telemetry.metrics()
        with self._lock:
            snapshot = self.scheduler.snapshot()
        depth = {}
        for entry in snapshot.get("queued") or []:
            band = int(entry.get("priority") or 0)
            depth[band] = depth.get(band, 0) + 1
        self._gauge_bands.update(depth)
        for band in self._gauge_bands:
            registry.gauge("repro_queue_depth", depth.get(band, 0),
                           band=str(band))
        registry.gauge("repro_inflight_runs",
                       len(snapshot.get("inflight") or []))
        registry.gauge("repro_workers_connected",
                       len(self.fleet.worker_snapshot()))

    def _results_reply(self, run_id: str) -> dict:
        state = self.store.state(run_id)          # KeyError on unknown
        if state.get("state") != "done":
            raise ValueError(
                f"run {run_id} is {state.get('state')!r}; results are "
                f"available once it is done"
            )
        manifest_path = self.store.manifest_path(run_id)
        return message(
            "results",
            run=run_id,
            state=state,
            csv=self.store.results_path(run_id, "csv").read_text(),
            json=self.store.results_path(run_id, "json").read_text(),
            manifest=(manifest_path.read_text()
                      if manifest_path.exists() else None),
        )
