"""The durable run store: one directory per accepted submission.

Every run the service accepts gets ``<store_dir>/<run-id>/`` holding

=========================== ===============================================
``spec.json``               the submitted ExperimentSpec dict, verbatim
``state.json``              the run's lifecycle record (state, priority,
                            submitter, timestamps, error) — rewritten
                            atomically on every transition
``run.journal``             the PR-8 write-ahead log of completed work
                            groups (appears once execution starts)
``results.csv`` /           the finished table, both serializations —
``results.json``            what ``repro results`` returns byte-for-byte
``results.manifest.json``   the run's provenance manifest
=========================== ===============================================

The store *is* the queue's durability: a restarted daemon rescans it,
re-queues every run whose state is not terminal, and the journal path
makes interrupted runs resume instead of re-executing.  State files are
written via a temp file + :func:`os.replace`, so a crash mid-write
leaves the previous state, never a torn one.

Run ids are ``r0001``-style counters allocated by scanning the store —
monotonic across daemon restarts, and their lexicographic order *is*
submission order (the scheduler's FIFO tiebreak).
"""

from __future__ import annotations

import json
import os
import threading
from datetime import datetime, timezone
from pathlib import Path

#: Lifecycle states a run's ``state.json`` may carry.  ``queued`` /
#: ``running`` / ``interrupted`` are recoverable (a restarted daemon
#: re-queues them); ``done`` / ``failed`` / ``cancelled`` are terminal.
RUN_STATES = ("queued", "running", "interrupted",
              "done", "failed", "cancelled")

#: The states a daemon restart feeds back into the scheduler.
RECOVERABLE_STATES = ("queued", "running", "interrupted")

#: The states that end a run (``repro submit --wait`` stops polling).
TERMINAL_STATES = ("done", "failed", "cancelled")


def _utc_now() -> str:
    """Wall-clock timestamp for state transitions (ISO-8601, UTC)."""
    return datetime.now(timezone.utc).isoformat(timespec="milliseconds")


class RunStore:
    """The on-disk run store rooted at one directory.

    All methods are thread-safe (one process-wide lock — state files
    are tiny and transitions rare), but the store is single-writer by
    design: exactly one daemon owns a store directory at a time.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- paths -------------------------------------------------------------

    def run_dir(self, run_id: str) -> Path:
        """The run's directory (not necessarily existing yet)."""
        return self.root / str(run_id)

    def spec_path(self, run_id: str) -> Path:
        """The run's submitted-spec file."""
        return self.run_dir(run_id) / "spec.json"

    def state_path(self, run_id: str) -> Path:
        """The run's lifecycle-record file."""
        return self.run_dir(run_id) / "state.json"

    def journal_path(self, run_id: str) -> Path:
        """The run's write-ahead journal (the resume seam)."""
        return self.run_dir(run_id) / "run.journal"

    def results_path(self, run_id: str, fmt: str = "csv") -> Path:
        """The run's finished table (``fmt`` is ``csv`` or ``json``)."""
        return self.run_dir(run_id) / f"results.{fmt}"

    def manifest_path(self, run_id: str) -> Path:
        """The run's provenance manifest."""
        return self.run_dir(run_id) / "results.manifest.json"

    # -- lifecycle ---------------------------------------------------------

    def create(self, spec: dict, priority: int = 0,
               submitter: str = "anon") -> dict:
        """Persist one accepted submission; return its state record.

        Allocates the next ``rNNNN`` id, writes the spec verbatim and
        an initial ``queued`` state.  The directory exists (with both
        files fsync-replaced into place) before this returns — an
        accepted submission survives an immediate crash.
        """
        with self._lock:
            taken = [
                int(path.name[1:])
                for path in self.root.iterdir()
                if path.is_dir() and path.name.startswith("r")
                and path.name[1:].isdigit()
            ]
            run_id = f"r{max(taken, default=0) + 1:04d}"
            run_dir = self.run_dir(run_id)
            run_dir.mkdir(parents=True)
            self._write_json(self.spec_path(run_id), spec)
            state = {
                "run": run_id,
                "state": "queued",
                "priority": int(priority),
                "submitter": str(submitter),
                "submitted_at": _utc_now(),
            }
            self._write_json(self.state_path(run_id), state)
            return state

    def spec(self, run_id: str) -> dict:
        """The run's submitted spec dict (raises on unknown ids)."""
        path = self.spec_path(run_id)
        if not path.exists():
            raise KeyError(f"no run {run_id!r} in store {self.root}")
        return json.loads(path.read_text())

    def state(self, run_id: str) -> dict:
        """The run's current lifecycle record (raises on unknown ids)."""
        path = self.state_path(run_id)
        if not path.exists():
            raise KeyError(f"no run {run_id!r} in store {self.root}")
        return json.loads(path.read_text())

    def update(self, run_id: str, **fields) -> dict:
        """Merge ``fields`` into the run's state record, atomically.

        A ``state`` transition is timestamped (``<state>_at``)
        automatically; unknown states are rejected to keep the store's
        vocabulary closed.
        """
        new_state = fields.get("state")
        if new_state is not None and new_state not in RUN_STATES:
            raise ValueError(
                f"unknown run state {new_state!r} "
                f"(one of {', '.join(RUN_STATES)})"
            )
        with self._lock:
            state = json.loads(self.state_path(run_id).read_text())
            state.update(fields)
            if new_state is not None:
                state[f"{new_state}_at"] = _utc_now()
            self._write_json(self.state_path(run_id), state)
            return state

    def scan(self) -> list:
        """Every run's state record, in run-id (= submission) order."""
        records = []
        for path in sorted(self.root.iterdir()):
            state_file = path / "state.json"
            if path.is_dir() and state_file.exists():
                records.append(json.loads(state_file.read_text()))
        return records

    def recoverable(self) -> list:
        """State records a restarted daemon must re-queue, in order.

        ``running`` runs (the daemon died mid-execution) come back as
        ``interrupted`` — their journal holds the completed units, so
        re-dispatch resumes instead of re-executing.
        """
        found = []
        for state in self.scan():
            if state.get("state") not in RECOVERABLE_STATES:
                continue
            if state.get("state") == "running":
                state = self.update(state["run"], state="interrupted")
            found.append(state)
        return found

    @staticmethod
    def _write_json(path: Path, payload: dict) -> None:
        """Write ``payload`` to ``path`` atomically (tmp + replace)."""
        tmp = path.with_suffix(path.suffix + ".tmp")
        data = json.dumps(payload, indent=2, sort_keys=True)
        with open(tmp, "w") as handle:
            handle.write(data + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
