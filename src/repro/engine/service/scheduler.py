"""The run scheduler: a pure state machine over submitted runs.

Modelled on the centralized controllers of multi-tenant training
schedulers: every submitted run moves through explicit sets —

    pending -> ready -> inflight -> done | failed | cancelled

``pending`` holds runs whose submitter is at their fair-share cap;
``ready`` runs are dispatchable.  :meth:`next` picks the highest
``priority`` band first, and *within* a band round-robins across
submitters (fair sharing: two users submitting batches interleave
instead of the first monopolizing the fleet), FIFO within one
submitter.  Global concurrency is capped by ``max_inflight``; each
submitter additionally by ``submitter_cap``.

The class does no I/O and takes no locks — the service drives it under
its own lock and persists transitions to the :class:`RunStore`, which
is what makes the queue recoverable: a daemon restart replays the
store's non-terminal records through :meth:`submit` and the machine is
back where it was.
"""

from __future__ import annotations

from itertools import count


class _Entry:
    """Scheduler-side record of one submitted run."""

    def __init__(self, run_id: str, priority: int, submitter: str,
                 seq: int):
        self.run_id = run_id
        self.priority = priority
        self.submitter = submitter
        self.seq = seq


class RunScheduler:
    """Priority + fair-share dispatch over a shared worker fleet.

    Args:
        max_inflight: How many runs may execute concurrently.
        submitter_cap: How many of one submitter's runs may be
            inflight at once.
    """

    def __init__(self, max_inflight: int = 1, submitter_cap: int = 1):
        self.max_inflight = int(max_inflight)
        self.submitter_cap = int(submitter_cap)
        self._queued = {}             # run id -> _Entry (pending+ready)
        self._inflight = {}           # run id -> _Entry
        self._finished = {}           # run id -> outcome string
        self._seq = count()
        # priority band -> the submitter served last, so the next pick
        # in that band starts *after* them (round-robin fairness).
        self._last_served = {}

    # -- intake ------------------------------------------------------------

    def submit(self, run_id: str, priority: int = 0,
               submitter: str = "anon") -> None:
        """Queue one run (idempotent against double submission)."""
        if run_id in self._queued or run_id in self._inflight:
            return
        self._finished.pop(run_id, None)
        self._queued[run_id] = _Entry(str(run_id), int(priority),
                                      str(submitter), next(self._seq))

    # -- dispatch ----------------------------------------------------------

    def _ready(self) -> list:
        """Queued entries whose submitter is under the fair-share cap."""
        busy = {}
        for entry in self._inflight.values():
            busy[entry.submitter] = busy.get(entry.submitter, 0) + 1
        return [
            entry for entry in self._queued.values()
            if busy.get(entry.submitter, 0) < self.submitter_cap
        ]

    def next(self) -> str:
        """The run id to dispatch now, or ``None``.

        Highest priority band first; within the band, the submitter
        round-robin position advances past whoever was served last, and
        that submitter's oldest run in the band goes out.  Does not
        mark the run inflight — call :meth:`start` once execution
        actually begins.
        """
        if len(self._inflight) >= self.max_inflight:
            return None
        ready = self._ready()
        if not ready:
            return None
        top = max(entry.priority for entry in ready)
        band = [entry for entry in ready if entry.priority == top]
        submitters = sorted({entry.submitter for entry in band})
        last = self._last_served.get(top)
        if last in submitters:
            pivot = submitters.index(last) + 1
            submitters = submitters[pivot:] + submitters[:pivot]
        chosen = submitters[0]
        entry = min(
            (e for e in band if e.submitter == chosen),
            key=lambda e: e.seq,
        )
        return entry.run_id

    def start(self, run_id: str) -> None:
        """Move one queued run to inflight (books the fair-share turn)."""
        entry = self._queued.pop(run_id)
        self._inflight[run_id] = entry
        self._last_served[entry.priority] = entry.submitter

    def finish(self, run_id: str, outcome: str = "done") -> None:
        """Retire an inflight (or queued) run with a terminal outcome."""
        entry = self._inflight.pop(run_id, None)
        if entry is None:
            self._queued.pop(run_id, None)
        self._finished[run_id] = outcome

    def cancel(self, run_id: str) -> str:
        """Cancel one run; returns where it was caught.

        ``"queued"`` — removed before dispatch, nothing else to do;
        ``"inflight"`` — the caller must interrupt the execution (the
        entry stays inflight until :meth:`finish`); ``None`` — unknown
        or already finished.
        """
        if run_id in self._queued:
            del self._queued[run_id]
            self._finished[run_id] = "cancelled"
            return "queued"
        if run_id in self._inflight:
            return "inflight"
        return None

    # -- introspection -----------------------------------------------------

    def queued_ids(self) -> list:
        """Queued run ids in dispatch order (priority desc, then FIFO)."""
        return [
            entry.run_id
            for entry in sorted(self._queued.values(),
                                key=lambda e: (-e.priority, e.seq))
        ]

    def inflight_ids(self) -> list:
        """Currently executing run ids, oldest first."""
        return [
            entry.run_id
            for entry in sorted(self._inflight.values(),
                                key=lambda e: e.seq)
        ]

    def snapshot(self) -> dict:
        """The machine's sets as a JSON-safe dict (the ``queue`` reply)."""
        ready_ids = {entry.run_id for entry in self._ready()}
        return {
            "queued": [
                {
                    "run": entry.run_id,
                    "priority": entry.priority,
                    "submitter": entry.submitter,
                    "ready": entry.run_id in ready_ids,
                }
                for entry in sorted(self._queued.values(),
                                    key=lambda e: (-e.priority, e.seq))
            ],
            "inflight": self.inflight_ids(),
            "finished": dict(self._finished),
            "max_inflight": self.max_inflight,
            "submitter_cap": self.submitter_cap,
        }
