"""Pluggable execution backends for the :class:`ExperimentRunner`.

The runner plans a grid of *work groups* — one per (scenario, model),
carrying every simulator that consumes that trace — and hands the plan to
a :class:`Backend` for execution:

* :class:`SerialBackend`   — one thread, no pool; the debugging and
  baseline-measurement path;
* :class:`ThreadBackend`   — the default; traces and simulations fan out
  over ``concurrent.futures`` threads (the simulators are numpy-bound and
  release the GIL in their hot loops);
* :class:`ProcessBackend`  — a process pool for many-scenario sweeps:
  work groups are pickled to workers in contiguous chunks (amortizing
  IPC), each worker process keeps its own :class:`TraceCache` and
  :class:`FrameProvider` seeded on first use, and results come back with
  the heavyweight ``raw`` legacy objects stripped so a row costs
  kilobytes, not megabytes, to ship.

Parallel execution is a **split trace/simulate pipeline**: every unique
(scenario, model, frame) is traced exactly once as a first-class work
unit — fanned out over ``runner.trace_workers`` — before any simulator
runs.  The process backend shares the finished traces across its workers
through the :class:`TraceCache` disk tier (``REPRO_TRACE_CACHE_DIR``,
or a run-scoped temporary directory when unset), so a cold sweep no
longer re-traces the same frame once per worker.  Backends whose
resolved worker count is 1 fall back to plain serial execution — a
width-1 pool is pure overhead.

Backends are selected by :class:`ExperimentRunner(backend=...)`, by the
``REPRO_ENGINE_BACKEND`` environment variable (``serial`` / ``thread`` /
``process``), or per call via ``runner.run(backend=...)``.

Every backend produces the identical :class:`ExperimentTable` — same
rows, same deterministic scenarios x models x simulators order — because
frames are seeded deterministically and traces are content-keyed.
"""

from __future__ import annotations

import contextlib
import shutil
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

from . import telemetry
from .cache import TraceCache
from .registry import BACKENDS, register_backend
from .result import mean_result
from .settings import (
    BACKEND_ENV_VAR,
    resolve_backend_name,
    resolve_cache_dir,
)


def _model_name(model) -> str:
    return getattr(model, "name", model)


@dataclass(frozen=True)
class WorkGroup:
    """One trace-sharing unit of a runner plan.

    Attributes:
        scenario: The experiment condition (seeds the frames).
        model: Table I name or :class:`~repro.models.specs.ModelSpec`.
        simulators: The simulators consuming this (scenario, model)'s
            trace(s), in configured order.
    """

    scenario: object
    model: object
    simulators: tuple


def execute_cell(scenario, simulator, traces) -> list:
    """Run one simulator over one group's frame traces.

    Returns the cell's rows in table order: one per frame (labelled with
    its index when the scenario is batched) plus the mean aggregate row
    for batched scenarios.
    """
    batched = scenario.frames > 1
    per_frame = []
    started = time.perf_counter()
    with telemetry.span("simulate", "engine", scenario=scenario.name,
                        simulator=simulator.name):
        for index, trace in enumerate(traces):
            result = simulator.run(trace)
            result.scenario = scenario.name
            if batched:
                result.frame = index
            per_frame.append(result)
    telemetry.metrics().observe(
        "repro_simulate_seconds", time.perf_counter() - started,
        scenario=scenario.name, simulator=simulator.name,
    )
    rows = list(per_frame)
    if batched:
        rows.append(mean_result(per_frame))
    return rows


def execute_group(group: WorkGroup, trace_lookup) -> list:
    """Serially execute every cell of one work group.

    ``trace_lookup(scenario, model, frame, prev_trace)`` supplies the
    (cached) trace of each frame; the batch is traced sequentially here —
    each frame's trace is offered to the next lookup as its predecessor,
    which is what lets delta-enabled runners patch instead of rebuild —
    and every simulator of the group then reuses the in-memory traces.
    Lookups that don't do delta tracing simply ignore the fourth
    argument.
    """
    traces = []
    prev = None
    for frame in range(group.scenario.frames):
        trace = trace_lookup(group.scenario, group.model, frame, prev)
        traces.append(trace)
        prev = trace
    results = []
    for simulator in group.simulators:
        results.extend(execute_cell(group.scenario, simulator, traces))
    return results


@contextlib.contextmanager
def run_scoped_cache_dir(prefix: str = "repro-trace-cache-"):
    """The shared trace-artifact directory of one run, as a context.

    Yields ``(cache_dir, is_run_scoped)``: the configured
    ``REPRO_TRACE_CACHE_DIR`` when one is set (``is_run_scoped=False``,
    nothing is ever deleted), otherwise a freshly created run-scoped
    temporary directory (``is_run_scoped=True``) that is removed on
    exit **whether or not the run succeeded** — the ``try/finally``
    lives here, once, so every backend that shares traces through a
    directory (the process pool, the distributed coordinator) gets
    leak-free cleanup instead of re-implementing it.
    """
    cache_dir = resolve_cache_dir()
    if cache_dir is not None:
        yield cache_dir, False
        return
    temp_dir = tempfile.mkdtemp(prefix=prefix)
    try:
        yield temp_dir, True
    finally:
        shutil.rmtree(temp_dir, ignore_errors=True)


def chunk_payload(payload: list, workers: int,
                  chunksize: int = None) -> list:
    """Split work units into contiguous chunks for dispatch.

    The default chunk size splits the payload roughly twice per worker —
    large enough to amortize per-dispatch overhead (IPC for the process
    pool, a protocol round trip for the distributed backend), small
    enough that a straggler can be balanced by the other workers.  This
    is the one chunking policy both backends share.
    """
    if not payload:
        return []
    chunksize = chunksize or max(
        1, (len(payload) + 2 * workers - 1) // (2 * workers)
    )
    return [
        payload[start:start + chunksize]
        for start in range(0, len(payload), chunksize)
    ]


class ProgressReporter:
    """Per-group completion ticker for long sweeps (stderr by default).

    Thread-safe: parallel backends advance it from pool threads and the
    distributed coordinator from connection handlers.  ``sink`` may be a
    callable ``(done, total, elapsed_seconds)`` for programmatic
    consumers (tests, dashboards); the default prints
    ``groups done/total (elapsed)`` lines to ``stderr`` — through
    :func:`repro.engine.telemetry.log_line`, the one lock-guarded
    line-buffered writer worker warnings also use, so concurrent
    emitters never interleave mid-line — and ``--out -`` tables stay
    clean.
    """

    def __init__(self, total: int, sink=None, label: str = "groups"):
        self.total = total
        self.done = 0
        self.label = label
        self._sink = sink
        self._lock = threading.Lock()
        self._started = time.monotonic()

    def advance(self, count: int = 1) -> None:
        """Report ``count`` more finished groups to the sink."""
        # The sink runs under the lock so concurrent group completions
        # report in monotone order (and interleaved lines never tear).
        with self._lock:
            self.done += count
            elapsed = time.monotonic() - self._started
            if self._sink is not None:
                self._sink(self.done, self.total, elapsed)
            else:
                telemetry.log_line(
                    f"[repro] {self.label} {self.done}/{self.total} "
                    f"({elapsed:.1f}s)"
                )


def report_group_done(runner, count: int = 1) -> None:
    """Advance the runner's active progress reporter, if any.

    Backends call this after finishing each work group; it is a no-op
    unless the caller asked for progress (``runner.run(progress=...)``),
    so the hot path costs one attribute read.
    """
    reporter = getattr(runner, "_progress", None)
    if reporter is not None:
        reporter.advance(count)


def observer_of(runner):
    """The runner's active :class:`RunObserver`, or None.

    Set by ``runner.run(observer=...)`` for the duration of one run —
    the same seam as progress reporting, so a backend that supports
    progress supports manifests with the same call sites.
    """
    return getattr(runner, "_observer", None)


def journal_of(runner):
    """The runner's active :class:`~repro.engine.journal.RunJournal`.

    Set by ``runner.run(journal=...)`` for the duration of one run —
    the journal rides the same per-group seam as the observer, so every
    backend that streams rows checkpoints them for free.
    """
    return getattr(runner, "_journal", None)


def observe_unit_done(runner, scenario_name: str, model_name: str,
                      seconds: float, results=(),
                      worker: str = None) -> None:
    """Report one finished work group to the runner's observer, if any.

    ``results`` are the group's streamed rows (fed to the observer's
    per-layer analyzer); ``worker`` identifies the executing distributed
    worker.  When a run journal is active the group is also appended to
    it here — durably, before the call returns — which is what makes
    every backend resumable through the one seam.  A no-op without an
    active observer or journal, so the hot path costs two attribute
    reads.
    """
    journal = journal_of(runner)
    if journal is not None:
        journal.record_unit(scenario_name, model_name, seconds,
                            results=results, worker=worker)
    observer = observer_of(runner)
    if observer is not None:
        observer.record_unit(scenario_name, model_name, seconds,
                             results=results, worker=worker)
    telemetry.metrics().observe("repro_unit_seconds", float(seconds),
                                scenario=scenario_name,
                                model=model_name)


def observe_phase(runner, name: str, seconds: float) -> None:
    """Report one named backend stage's wall time to the observer."""
    observer = observer_of(runner)
    if observer is not None:
        observer.record_phase(name, seconds)


class BackendUnavailable(RuntimeError):
    """A backend cannot start at all (as opposed to failing mid-run).

    Raised, for example, by the dist coordinator when no worker
    connects within the start timeout.  When the runner's ``degrade``
    knob is on, :meth:`ExperimentRunner.run` catches this and retries
    the plan on the next backend in :attr:`fallbacks` (the degradation
    ladder) instead of failing the sweep.
    """

    #: Backend names to try next, most capable first.
    fallbacks = ("process", "serial")


class Backend:
    """Interface every execution backend implements.

    ``execute`` receives the runner (for its trace/frame plumbing) and
    the planned work groups, and returns one list of
    :class:`~repro.engine.result.SimResult` rows per group, in plan
    order.  Backends with preconditions on the runner override
    :meth:`incompatibility`; when the backend was only an environment
    default (not an explicit choice) the runner falls back to threads
    instead of failing.
    """

    name: str = "backend"

    @staticmethod
    def incompatibility(runner) -> str:
        """Why this runner cannot use this backend, or ``None``."""
        return None

    def execute(self, runner, groups: list) -> list:
        """Run every group's cells; nested rows in ``groups`` order."""
        raise NotImplementedError


@register_backend("serial")
class SerialBackend(Backend):
    """Everything on the calling thread, in plan order."""

    name = "serial"

    def execute(self, runner, groups: list) -> list:
        """Run each group in turn on the calling thread."""
        nested = []
        for group in groups:
            started = time.monotonic()
            rows = execute_group(group, runner.trace_for)
            observe_unit_done(runner, group.scenario.name,
                              _model_name(group.model),
                              time.monotonic() - started, rows)
            nested.append(rows)
            report_group_done(runner)
        return nested


@register_backend("thread")
class ThreadBackend(Backend):
    """Thread-pool fan-out (the default, and PR-1 behaviour).

    The trace stage parallelizes over (scenario, model, frame) jobs
    first — ``runner.trace_workers`` wide, with the shared
    :class:`TraceCache` suppressing duplicates — then simulation fans
    out over (group, simulator) cells at ``max_workers``.  A resolved
    width of 1 skips the pools entirely and runs the plan serially.

    Args:
        max_workers: Pool width for both stages; defaults to the
            runner's ``max_workers`` (simulate) and ``trace_workers``
            (trace).
    """

    name = "thread"

    def __init__(self, max_workers: int = None):
        self.max_workers = max_workers

    def execute(self, runner, groups: list) -> list:
        """Trace-then-simulate the plan through thread pools."""
        workers = self.max_workers or runner.max_workers
        trace_workers = self.max_workers or runner.trace_workers
        if workers == 1 and trace_workers == 1:
            # A width-1 pool is pure overhead (baseline: 1.30 s through
            # the pool vs 0.87-1.11 s serial on one CPU) — run the plan
            # exactly like the serial backend.
            return SerialBackend().execute(runner, groups)
        trace_started = time.monotonic()
        if getattr(runner, "delta_trace", False):
            # Delta chains are sequential within a (scenario, model) —
            # frame N patches frame N-1 — so the fan-out unit becomes
            # the whole chain; distinct chains still run concurrently.
            chain_jobs = [(group.scenario, group.model)
                          for group in groups]
            if trace_workers > 1 and len(chain_jobs) > 1:
                with ThreadPoolExecutor(trace_workers) as pool:
                    chains = list(pool.map(
                        lambda job: runner.trace_chain(*job), chain_jobs
                    ))
            else:
                chains = [runner.trace_chain(*job) for job in chain_jobs]
            # Model specs are mutable (unhashable); key by model name.
            trace_of = {
                (scenario, _model_name(model), frame): trace
                for (scenario, model), chain in zip(chain_jobs, chains)
                for frame, trace in enumerate(chain)
            }
        else:
            trace_jobs = [
                (group.scenario, group.model, frame)
                for group in groups
                for frame in range(group.scenario.frames)
            ]
            if trace_workers > 1 and len(trace_jobs) > 1:
                with ThreadPoolExecutor(trace_workers) as pool:
                    traces = list(pool.map(
                        lambda job: runner.trace_for(*job), trace_jobs
                    ))
            else:
                traces = [runner.trace_for(*job) for job in trace_jobs]
            trace_of = {
                (scenario, _model_name(model), frame): trace
                for (scenario, model, frame), trace
                in zip(trace_jobs, traces)
            }
        observe_phase(runner, "trace", time.monotonic() - trace_started)

        def group_traces(group):
            """The finished traces backing one group's frames."""
            return [
                trace_of[(group.scenario, _model_name(group.model), frame)]
                for frame in range(group.scenario.frames)
            ]

        cells = [(group, simulator)
                 for group in groups
                 for simulator in group.simulators]
        remaining = {id(group): len(group.simulators) for group in groups}
        remaining_lock = threading.Lock()
        # Per-group observer accounting: a group's unit record carries
        # the *sum* of its cells' seconds (the work done, not the wall
        # span of interleaved cells) plus every row it streamed.
        observing = (observer_of(runner) is not None
                     or journal_of(runner) is not None)
        group_seconds = {id(group): 0.0 for group in groups}
        group_rows = {id(group): [] for group in groups}

        def run_cell(cell):
            """Simulate one (group, simulator) cell; book its timing."""
            group, simulator = cell
            started = time.monotonic()
            rows = execute_cell(group.scenario, simulator,
                                group_traces(group))
            elapsed = time.monotonic() - started
            with remaining_lock:
                remaining[id(group)] -= 1
                finished = remaining[id(group)] == 0
                if observing:
                    group_seconds[id(group)] += elapsed
                    group_rows[id(group)].extend(rows)
            if finished:
                observe_unit_done(runner, group.scenario.name,
                                  _model_name(group.model),
                                  group_seconds[id(group)],
                                  group_rows[id(group)])
                report_group_done(runner)
            return rows

        if workers > 1 and len(cells) > 1:
            with ThreadPoolExecutor(workers) as pool:
                cell_rows = list(pool.map(run_cell, cells))
        else:
            cell_rows = [run_cell(cell) for cell in cells]

        nested = []
        cursor = 0
        for group in groups:
            rows = []
            for _ in group.simulators:
                rows.extend(cell_rows[cursor])
                cursor += 1
            nested.append(rows)
        return nested


# ---------------------------------------------------------------------------
# Process pool
# ---------------------------------------------------------------------------

#: Per-worker state, created lazily on first chunk: each worker process
#: keeps a two-tier :class:`TraceCache` — the memory tier is
#: worker-local, while the disk tier (the directory the parent's
#: :class:`ProcessBackend` hands to :func:`_init_worker`) is shared by
#: every worker of the pool, so a frame traced during the trace stage is
#: loaded, not re-traced, wherever its simulate chunks land.
_WORKER_CACHE = None
_WORKER_FRAMES = None
_WORKER_CACHE_DIR = None


def _init_worker(cache_dir) -> None:
    """Pool initializer: pin this worker to its run's shared disk tier.

    The directory arrives as an explicit initializer argument — never
    via environment mutation in the parent, which would race when two
    process-backend runs overlap in one process.
    """
    global _WORKER_CACHE_DIR
    _WORKER_CACHE_DIR = cache_dir


def _worker_state():
    global _WORKER_CACHE, _WORKER_FRAMES
    if _WORKER_CACHE is None:
        from .runner import FrameProvider

        _WORKER_CACHE = TraceCache(maxsize=16, disk_dir=_WORKER_CACHE_DIR)
        _WORKER_FRAMES = FrameProvider()
    return _WORKER_CACHE, _WORKER_FRAMES


def _worker_trace(cache, frames, scenario, model, frame,
                  rulegen_shards=None, prev_trace=None,
                  delta_threshold=None):
    from ..models.specs import ModelSpec, build_model_spec

    pillar_frame = frames.frame_for(scenario, model, frame)
    spec = model if isinstance(model, ModelSpec) else build_model_spec(model)
    return cache.get_trace(
        spec,
        pillar_frame.coords,
        pillar_frame.point_counts.astype(float),
        rulegen_shards=rulegen_shards,
        prev_trace=prev_trace,
        delta_threshold=delta_threshold,
        label=(scenario.name, _model_name(model)),
    )


def _trace_chunk(chunk: list, rulegen_shards=None, delta_trace=False,
                 delta_threshold=None) -> None:
    """Trace-stage work unit: warm the shared tiers with unique frames.

    Each job is one (scenario, model, frame) — or, in delta mode, one
    (scenario, model, frame_count) *chain* traced sequentially so each
    frame patches its predecessor.  The finished traces land in this
    worker's memory tier *and* the shared disk tier, making them
    available to every simulate-stage worker.
    """
    cache, frames = _worker_state()
    if delta_trace:
        for scenario, model, frame_count in chunk:
            prev = None
            for frame in range(frame_count):
                prev = _worker_trace(
                    cache, frames, scenario, model, frame, rulegen_shards,
                    prev_trace=prev, delta_threshold=delta_threshold,
                )
        return
    for scenario, model, frame in chunk:
        _worker_trace(cache, frames, scenario, model, frame,
                      rulegen_shards)


def _run_chunk(chunk: list, rulegen_shards=None, delta_trace=False,
               delta_threshold=None) -> dict:
    """Execute one pickled chunk of (scenario, model, simulators) units.

    Returns ``{"rows": [row list per group], "seconds": [wall seconds
    per group]}`` — groups are timed *here*, in the worker process,
    because the parent only observes chunk completions.
    """
    cache, frames = _worker_state()
    nested = []
    seconds = []
    for scenario, model, simulators in chunk:
        group = WorkGroup(scenario, model, tuple(simulators))
        started = time.monotonic()
        rows = execute_group(
            group,
            lambda s, m, f, prev=None: _worker_trace(
                cache, frames, s, m, f, rulegen_shards,
                prev_trace=prev if delta_trace else None,
                delta_threshold=delta_threshold,
            ),
        )
        seconds.append(time.monotonic() - started)
        for row in rows:
            # The legacy result objects retain whole rule arrays; never
            # ship them back over IPC.
            row.raw = None
        nested.append(rows)
    return {"rows": nested, "seconds": seconds}


@register_backend("process")
class ProcessBackend(Backend):
    """Process-pool fan-out for many-scenario sweeps.

    Execution is a two-stage pipeline.  The **trace stage** distributes
    every unique (scenario, model, frame) across the pool exactly once;
    finished traces persist to the :class:`TraceCache` disk tier — the
    ``REPRO_TRACE_CACHE_DIR`` directory, or a run-scoped temporary
    directory the backend creates (and removes) when the variable is
    unset.  The **simulate stage** then ships (scenario, model,
    simulators) work units in contiguous chunks; workers load the shared
    traces from disk instead of each re-tracing its own copy (the cold
    per-worker re-trace was the committed baseline's regression: 1.51 s
    process vs 1.11 s serial).  Contiguous chunks keep IPC count low and
    let a worker's local :class:`FrameProvider` reuse a scenario's
    frames across the models that share a grid.

    A resolved worker count of 1 skips the pool entirely and runs the
    plan in-process (still stripping ``raw``, preserving the backend's
    result contract).

    Restrictions: the runner must be on the default frame path — a
    ``trace_provider`` closure or a custom frame-provider instance cannot
    be shipped to worker processes.  ``SimResult.raw`` is ``None`` on
    every returned row (the legacy objects are worker-local); all other
    fields are bit-identical to the serial backend's.

    Args:
        max_workers: Pool width; defaults to the runner's
            ``max_workers``.
        chunksize: Work-group count per IPC submission; defaults to
            splitting the plan roughly twice per worker for load balance.
    """

    name = "process"

    def __init__(self, max_workers: int = None, chunksize: int = None):
        self.max_workers = max_workers
        self.chunksize = chunksize

    @staticmethod
    def incompatibility(runner) -> str:
        """Why this runner cannot go through worker processes (or None).

        Lets the runner fall back to threads when the process backend
        was only an environment default rather than an explicit choice.
        """
        from .runner import FrameProvider

        if runner.trace_provider is not None:
            return (
                "ProcessBackend cannot ship a trace_provider closure to "
                "worker processes; use the serial or thread backend, or "
                "let workers trace through the default frame path"
            )
        if type(runner.frame_provider) is not FrameProvider:
            return (
                "ProcessBackend re-creates the default FrameProvider "
                f"inside each worker; a custom "
                f"{type(runner.frame_provider).__name__} instance would "
                "be silently ignored — use the serial or thread backend"
            )
        return None

    def execute(self, runner, groups: list) -> list:
        """Trace into the shared store, then fan chunks out to a pool."""
        reason = self.incompatibility(runner)
        if reason is not None:
            raise ValueError(reason)
        if not groups:
            return []
        workers = self.max_workers or runner.max_workers
        if workers == 1:
            # Pure pool overhead at width 1: run in-process through the
            # runner's own cache, keeping the raw-stripping contract.
            nested = SerialBackend().execute(runner, groups)
            for rows in nested:
                for row in rows:
                    row.raw = None
            return nested

        shards = runner.rulegen_shards
        delta = getattr(runner, "delta_trace", False)
        threshold = getattr(runner, "delta_threshold", None)
        payload = [
            (group.scenario, group.model, tuple(group.simulators))
            for group in groups
        ]
        chunks = chunk_payload(payload, workers, self.chunksize)

        # Trace stage: every unique (scenario, model, frame) exactly
        # once, round-robin across the pool.  In delta mode the unit is
        # the whole sequential chain of a (scenario, model) instead —
        # frames patch their predecessor, so they cannot round-robin.
        seen = set()
        trace_jobs = []
        if delta:
            for group in groups:
                key = (group.scenario.name, _model_name(group.model))
                if key not in seen:
                    seen.add(key)
                    trace_jobs.append(
                        (group.scenario, group.model,
                         group.scenario.frames)
                    )
        else:
            for group in groups:
                for frame in range(group.scenario.frames):
                    key = (group.scenario.name, _model_name(group.model),
                           frame)
                    if key not in seen:
                        seen.add(key)
                        trace_jobs.append(
                            (group.scenario, group.model, frame)
                        )
        trace_width = min(workers, runner.trace_workers, len(trace_jobs))
        trace_chunks = [
            trace_jobs[start::trace_width] for start in range(trace_width)
        ]

        # Workers share traces through the disk tier, handed to each
        # worker by the pool initializer; when the environment names no
        # cache directory, a run-scoped temporary one stands in (and is
        # cleaned up by the context manager even when the run fails).
        with run_scoped_cache_dir() as (cache_dir, _):
            width = min(workers, max(len(chunks), len(trace_chunks)))
            with ProcessPoolExecutor(max_workers=width,
                                     initializer=_init_worker,
                                     initargs=(cache_dir,)) as pool:
                trace_started = time.monotonic()
                list(pool.map(
                    partial(_trace_chunk, rulegen_shards=shards,
                            delta_trace=delta, delta_threshold=threshold),
                    trace_chunks,
                ))
                observe_phase(runner, "trace",
                              time.monotonic() - trace_started)
                chunk_results = []
                for chunk, outcome in zip(
                    chunks,
                    pool.map(
                        partial(_run_chunk, rulegen_shards=shards,
                                delta_trace=delta,
                                delta_threshold=threshold),
                        chunks,
                    ),
                ):
                    chunk_results.append(outcome["rows"])
                    for (scenario, model, _), rows, seconds in zip(
                            chunk, outcome["rows"], outcome["seconds"]):
                        observe_unit_done(runner, scenario.name,
                                          _model_name(model), seconds,
                                          rows)
                    report_group_done(runner, count=len(chunk))
        return [rows for chunk in chunk_results for rows in chunk]


def resolve_backend(spec) -> Backend:
    """Normalize a backend name or instance to a :class:`Backend`.

    Names resolve through the backend registry — ``"serial"`` /
    ``"thread"`` / ``"process"`` built in, case insensitive, plus
    anything third-party code added via
    :func:`~repro.engine.registry.register_backend`.  Instances pass
    through untouched; unknown names raise a
    :class:`~repro.engine.registry.UnknownNameError` listing the
    registered choices.
    """
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        return BACKENDS.create(spec)
    raise TypeError(
        f"expected a Backend instance or name string, got {type(spec)!r}"
    )


def default_backend_name() -> str:
    """The backend new runners use when none is given explicitly."""
    return resolve_backend_name()
