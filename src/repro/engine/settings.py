"""The single resolver for every engine environment knob.

Before this module, each engine layer read its own ``os.environ``:
the runner parsed ``REPRO_ENGINE_WORKERS`` / ``REPRO_ENGINE_TRACE_WORKERS``,
the backends read ``REPRO_ENGINE_BACKEND``, the trace cache read
``REPRO_TRACE_CACHE_DIR`` and rulegen read
``REPRO_ENGINE_RULEGEN_SHARDS`` — five copies of the same
argument > environment > default resolution with subtly duplicated
validation.  :class:`EngineSettings` (and the per-knob ``resolve_*``
helpers it is built from) is now the *one* place those variables are
read; the runner, the backends, the cache and rulegen all delegate
here, and declarative :class:`~repro.engine.spec.ExperimentSpec` files
resolve through the identical code path, so a spec, a keyword argument
and an environment override can never disagree about precedence or
error wording.

Every knob resolves explicit value > environment variable > default,
and a malformed value — wherever it came from — raises a
:class:`ValueError` naming the offending source (the keyword argument
or the environment variable, verbatim).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Environment variable naming the default execution backend.
BACKEND_ENV_VAR = "REPRO_ENGINE_BACKEND"

#: Environment variable overriding the simulate-stage pool width.
WORKERS_ENV_VAR = "REPRO_ENGINE_WORKERS"

#: Environment variable overriding the trace-stage pool width
#: (defaults to the simulate-stage width when unset).
TRACE_WORKERS_ENV_VAR = "REPRO_ENGINE_TRACE_WORKERS"

#: Environment variable giving the default row-band count for sharded
#: rule generation.
RULEGEN_SHARDS_ENV_VAR = "REPRO_ENGINE_RULEGEN_SHARDS"

#: Environment variable naming the trace cache's persistent disk tier.
CACHE_DIR_ENV_VAR = "REPRO_TRACE_CACHE_DIR"

#: Every environment variable the engine reads, in one tuple — the
#: contract tested by ``tests/test_engine_settings.py``.
ENGINE_ENV_VARS = (
    BACKEND_ENV_VAR,
    WORKERS_ENV_VAR,
    TRACE_WORKERS_ENV_VAR,
    RULEGEN_SHARDS_ENV_VAR,
    CACHE_DIR_ENV_VAR,
)

#: Sentinel distinguishing "no value given, consult the environment"
#: from an explicit ``None`` (which for ``cache_dir`` means "disable the
#: disk tier even when the environment names a directory").
UNSET = object()


def positive_int(value, source: str) -> int:
    """Validate any count-like knob into a positive int.

    Non-integer and non-positive values raise a clear
    :class:`ValueError` naming the offending source — a keyword
    argument (``"max_workers"``) or an environment variable
    (``"REPRO_ENGINE_WORKERS"``) — instead of propagating an opaque
    failure out of an executor or a worker process.
    """
    try:
        count = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer, got {value!r}"
        ) from None
    if count <= 0:
        raise ValueError(
            f"{source} must be a positive integer, got {value!r}"
        )
    return count


def resolve_backend_name(value=None) -> str:
    """Backend name: explicit value > ``REPRO_ENGINE_BACKEND`` > thread."""
    if value is not None:
        return value
    return os.environ.get(BACKEND_ENV_VAR, "thread")


def resolve_workers(value=None, source: str = "max_workers") -> int:
    """Simulate-stage width: value > ``REPRO_ENGINE_WORKERS`` > cpus."""
    if value is not None:
        return positive_int(value, source)
    env = os.environ.get(WORKERS_ENV_VAR)
    if env is not None:
        return positive_int(env, WORKERS_ENV_VAR)
    return min(8, os.cpu_count() or 1)


def resolve_trace_workers(value=None, workers: int = None,
                          source: str = "trace_workers") -> int:
    """Trace-stage width: value > ``REPRO_ENGINE_TRACE_WORKERS`` >
    the simulate-stage width (resolved here when not supplied)."""
    if value is not None:
        return positive_int(value, source)
    env = os.environ.get(TRACE_WORKERS_ENV_VAR)
    if env is not None:
        return positive_int(env, TRACE_WORKERS_ENV_VAR)
    return workers if workers is not None else resolve_workers()


def resolve_rulegen_shards(value=None,
                           source: str = "rulegen_shards") -> int:
    """Rulegen row bands: value > ``REPRO_ENGINE_RULEGEN_SHARDS`` > 1."""
    if value is None:
        value = os.environ.get(RULEGEN_SHARDS_ENV_VAR)
        if value is None:
            return 1
        source = RULEGEN_SHARDS_ENV_VAR
    return positive_int(value, source)


def resolve_cache_dir(value=UNSET):
    """Disk-tier directory: value > ``REPRO_TRACE_CACHE_DIR`` > None.

    An explicit ``None`` (or empty string) disables the disk tier even
    when the environment names a directory; pass nothing to inherit the
    environment.
    """
    if value is UNSET:
        value = os.environ.get(CACHE_DIR_ENV_VAR)
    return str(value) if value else None


@dataclass(frozen=True)
class EngineSettings:
    """One fully-resolved snapshot of every engine knob.

    Attributes:
        backend: Execution backend name (``"serial"`` / ``"thread"`` /
            ``"process"`` or any registered third-party backend).
        workers: Simulate-stage pool width.
        trace_workers: Trace-stage pool width.
        rulegen_shards: Row bands per rule-generation pass.
        cache_dir: Persistent trace-cache directory, or ``None`` for a
            memory-only cache.
    """

    backend: str = "thread"
    workers: int = 1
    trace_workers: int = 1
    rulegen_shards: int = 1
    cache_dir: str = None

    @classmethod
    def resolve(cls, backend=None, workers=None, trace_workers=None,
                rulegen_shards=None, cache_dir=UNSET) -> "EngineSettings":
        """Resolve every knob: explicit argument > environment > default.

        This is the constructor the runner and the declarative spec
        layer share; each argument may be ``None`` (inherit the
        environment) or an explicit override, and malformed values from
        either source raise a :class:`ValueError` naming the offender.
        """
        workers = resolve_workers(workers)
        return cls(
            backend=resolve_backend_name(backend),
            workers=workers,
            trace_workers=resolve_trace_workers(trace_workers, workers),
            rulegen_shards=resolve_rulegen_shards(rulegen_shards),
            cache_dir=resolve_cache_dir(cache_dir),
        )

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "trace_workers": self.trace_workers,
            "rulegen_shards": self.rulegen_shards,
            "cache_dir": self.cache_dir,
        }
