"""The single resolver for every engine environment knob.

Before this module, each engine layer read its own ``os.environ``:
the runner parsed ``REPRO_ENGINE_WORKERS`` / ``REPRO_ENGINE_TRACE_WORKERS``,
the backends read ``REPRO_ENGINE_BACKEND``, the trace cache read
``REPRO_TRACE_CACHE_DIR`` and rulegen read
``REPRO_ENGINE_RULEGEN_SHARDS`` — five copies of the same
argument > environment > default resolution with subtly duplicated
validation.  :class:`EngineSettings` (and the per-knob ``resolve_*``
helpers it is built from) is now the *one* place those variables are
read; the runner, the backends, the cache and rulegen all delegate
here, and declarative :class:`~repro.engine.spec.ExperimentSpec` files
resolve through the identical code path, so a spec, a keyword argument
and an environment override can never disagree about precedence or
error wording.

Every knob resolves explicit value > environment variable > default,
and a malformed value — wherever it came from — raises a
:class:`ValueError` naming the offending source (the keyword argument
or the environment variable, verbatim).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Environment variable naming the default execution backend.
BACKEND_ENV_VAR = "REPRO_ENGINE_BACKEND"

#: Environment variable overriding the simulate-stage pool width.
WORKERS_ENV_VAR = "REPRO_ENGINE_WORKERS"

#: Environment variable overriding the trace-stage pool width
#: (defaults to the simulate-stage width when unset).
TRACE_WORKERS_ENV_VAR = "REPRO_ENGINE_TRACE_WORKERS"

#: Environment variable giving the default row-band count for sharded
#: rule generation.
RULEGEN_SHARDS_ENV_VAR = "REPRO_ENGINE_RULEGEN_SHARDS"

#: Environment variable naming the trace cache's persistent disk tier.
CACHE_DIR_ENV_VAR = "REPRO_TRACE_CACHE_DIR"

#: Whether batched scenarios trace as sequential delta chains (frame 0
#: full, later frames patched from their predecessor; "1"/"0",
#: default off).
DELTA_TRACE_ENV_VAR = "REPRO_ENGINE_DELTA_TRACE"

#: Fraction of a frame's pillars the frame-to-frame diff may touch
#: before delta rule generation falls back to a full rebuild.
DELTA_THRESHOLD_ENV_VAR = "REPRO_ENGINE_DELTA_THRESHOLD"

#: Deterministic fault-injection plan for chaos testing (grammar in
#: ``repro.engine.faults`` / docs/robustness.md; empty = disarmed).
FAULTS_ENV_VAR = "REPRO_ENGINE_FAULTS"

#: Whether a run may degrade to the next backend in the ladder
#: (dist -> process -> serial) when its backend cannot start
#: ("1"/"0", default off: fail loudly).
DEGRADE_ENV_VAR = "REPRO_ENGINE_DEGRADE"

#: Host the distributed coordinator binds its listening socket to.
DIST_HOST_ENV_VAR = "REPRO_ENGINE_DIST_HOST"

#: Port the distributed coordinator listens on (0 = ephemeral).
DIST_PORT_ENV_VAR = "REPRO_ENGINE_DIST_PORT"

#: Work groups per distributed work unit (requeue granularity).
DIST_CHUNKSIZE_ENV_VAR = "REPRO_ENGINE_DIST_CHUNKSIZE"

#: Seconds a dispatched unit may run before it is requeued elsewhere.
DIST_UNIT_TIMEOUT_ENV_VAR = "REPRO_ENGINE_DIST_UNIT_TIMEOUT"

#: Seconds between worker heartbeats (the coordinator tells workers).
DIST_HEARTBEAT_ENV_VAR = "REPRO_ENGINE_DIST_HEARTBEAT"

#: Seconds of heartbeat silence before a busy worker is declared dead.
DIST_WORKER_TIMEOUT_ENV_VAR = "REPRO_ENGINE_DIST_WORKER_TIMEOUT"

#: Maximum dispatch attempts per unit before the run fails loudly.
DIST_MAX_ATTEMPTS_ENV_VAR = "REPRO_ENGINE_DIST_MAX_ATTEMPTS"

#: Seconds the coordinator waits for (the first, or replacement)
#: workers to connect before giving up.
DIST_START_TIMEOUT_ENV_VAR = "REPRO_ENGINE_DIST_START_TIMEOUT"

#: Whether the coordinator pre-traces every unique frame into the
#: shared cache dir before dispatching ("1"/"0"; default on).
DIST_TRACE_STAGE_ENV_VAR = "REPRO_ENGINE_DIST_TRACE_STAGE"

#: Shared secret for the HMAC challenge/response handshake on the
#: coordinator's (and the experiment service's) listening socket;
#: unset disables authentication.
DIST_TOKEN_ENV_VAR = "REPRO_ENGINE_DIST_TOKEN"

#: Row-record count per worker result frame: a worker flushes a
#: ``result`` message once this many rows have accumulated; 0 (the
#: default) coalesces a whole unit's rows into one frame.
DIST_BATCH_ROWS_ENV_VAR = "REPRO_ENGINE_DIST_BATCH_ROWS"

#: Address the experiment service (``repro serve``) binds; clients and
#: workers connect to it.
SERVICE_HOST_ENV_VAR = "REPRO_ENGINE_SERVICE_HOST"

#: Port the experiment service listens on (0 = ephemeral).
SERVICE_PORT_ENV_VAR = "REPRO_ENGINE_SERVICE_PORT"

#: Root directory of the service's durable run store
#: (``<dir>/<run-id>/`` holds spec, state, journal and results).
SERVICE_DIR_ENV_VAR = "REPRO_ENGINE_SERVICE_DIR"

#: How many submitted runs the service executes concurrently on its
#: shared worker fleet.
SERVICE_MAX_INFLIGHT_ENV_VAR = "REPRO_ENGINE_SERVICE_MAX_INFLIGHT"

#: How many of one submitter's runs may be inflight at once (the
#: fair-share cap; further submissions stay pending).
SERVICE_SUBMITTER_CAP_ENV_VAR = "REPRO_ENGINE_SERVICE_SUBMITTER_CAP"

#: Seconds a SIGTERM'd ``repro serve`` waits for inflight units to
#: drain into the run journals before closing its sockets.
SERVICE_DRAIN_TIMEOUT_ENV_VAR = "REPRO_ENGINE_SERVICE_DRAIN_TIMEOUT"

#: Span tracing on/off: when truthy, every run records counted nested
#: spans (trace/simulate/cache/protocol/queue-wait) and snapshots the
#: metrics registry into its manifest's ``telemetry`` key.
TELEMETRY_ENV_VAR = "REPRO_ENGINE_TELEMETRY"

#: Default Chrome trace-event export path for traced runs (what
#: ``repro run --trace-out PATH`` overrides); unset = no export file.
TELEMETRY_TRACE_OUT_ENV_VAR = "REPRO_ENGINE_TELEMETRY_TRACE_OUT"

#: Port the Prometheus ``/metrics`` endpoint binds (``repro serve
#: --metrics-port``); 0 = ephemeral, unset = endpoint disabled.
TELEMETRY_METRICS_PORT_ENV_VAR = "REPRO_ENGINE_TELEMETRY_METRICS_PORT"

#: Every environment variable the engine reads, in one tuple — the
#: contract tested by ``tests/test_engine_settings.py``.
ENGINE_ENV_VARS = (
    BACKEND_ENV_VAR,
    WORKERS_ENV_VAR,
    TRACE_WORKERS_ENV_VAR,
    RULEGEN_SHARDS_ENV_VAR,
    CACHE_DIR_ENV_VAR,
    DELTA_TRACE_ENV_VAR,
    DELTA_THRESHOLD_ENV_VAR,
    FAULTS_ENV_VAR,
    DEGRADE_ENV_VAR,
    DIST_HOST_ENV_VAR,
    DIST_PORT_ENV_VAR,
    DIST_CHUNKSIZE_ENV_VAR,
    DIST_UNIT_TIMEOUT_ENV_VAR,
    DIST_HEARTBEAT_ENV_VAR,
    DIST_WORKER_TIMEOUT_ENV_VAR,
    DIST_MAX_ATTEMPTS_ENV_VAR,
    DIST_START_TIMEOUT_ENV_VAR,
    DIST_TRACE_STAGE_ENV_VAR,
    DIST_TOKEN_ENV_VAR,
    DIST_BATCH_ROWS_ENV_VAR,
    SERVICE_HOST_ENV_VAR,
    SERVICE_PORT_ENV_VAR,
    SERVICE_DIR_ENV_VAR,
    SERVICE_MAX_INFLIGHT_ENV_VAR,
    SERVICE_SUBMITTER_CAP_ENV_VAR,
    SERVICE_DRAIN_TIMEOUT_ENV_VAR,
    TELEMETRY_ENV_VAR,
    TELEMETRY_TRACE_OUT_ENV_VAR,
    TELEMETRY_METRICS_PORT_ENV_VAR,
)

#: Sentinel distinguishing "no value given, consult the environment"
#: from an explicit ``None`` (which for ``cache_dir`` means "disable the
#: disk tier even when the environment names a directory").
UNSET = object()


def positive_int(value, source: str) -> int:
    """Validate any count-like knob into a positive int.

    Non-integer and non-positive values raise a clear
    :class:`ValueError` naming the offending source — a keyword
    argument (``"max_workers"``) or an environment variable
    (``"REPRO_ENGINE_WORKERS"``) — instead of propagating an opaque
    failure out of an executor or a worker process.
    """
    try:
        count = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer, got {value!r}"
        ) from None
    if count <= 0:
        raise ValueError(
            f"{source} must be a positive integer, got {value!r}"
        )
    return count


def positive_float(value, source: str) -> float:
    """Validate any duration-like knob into a positive float (seconds)."""
    try:
        seconds = float(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive number of seconds, "
            f"got {value!r}"
        ) from None
    if not seconds > 0:
        raise ValueError(
            f"{source} must be a positive number of seconds, "
            f"got {value!r}"
        )
    return seconds


def boolean_flag(value, source: str) -> bool:
    """Validate an on/off knob (``1/0``, ``true/false``, ``yes/no``)."""
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("1", "true", "yes", "on"):
        return True
    if text in ("0", "false", "no", "off"):
        return False
    raise ValueError(
        f"{source} must be a boolean flag (1/0, true/false, yes/no), "
        f"got {value!r}"
    )


def fraction(value, source: str) -> float:
    """Validate a ratio-like knob into a float in ``(0, 1]``."""
    try:
        ratio = float(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a fraction in (0, 1], got {value!r}"
        ) from None
    if not 0 < ratio <= 1:
        raise ValueError(
            f"{source} must be a fraction in (0, 1], got {value!r}"
        )
    return ratio


def resolve_backend_name(value=None) -> str:
    """Backend name: explicit value > ``REPRO_ENGINE_BACKEND`` > thread."""
    if value is not None:
        return value
    return os.environ.get(BACKEND_ENV_VAR, "thread")


def resolve_workers(value=None, source: str = "max_workers") -> int:
    """Simulate-stage width: value > ``REPRO_ENGINE_WORKERS`` > cpus."""
    if value is not None:
        return positive_int(value, source)
    env = os.environ.get(WORKERS_ENV_VAR)
    if env is not None:
        return positive_int(env, WORKERS_ENV_VAR)
    return min(8, os.cpu_count() or 1)


def resolve_trace_workers(value=None, workers: int = None,
                          source: str = "trace_workers") -> int:
    """Trace-stage width: value > ``REPRO_ENGINE_TRACE_WORKERS`` >
    the simulate-stage width (resolved here when not supplied)."""
    if value is not None:
        return positive_int(value, source)
    env = os.environ.get(TRACE_WORKERS_ENV_VAR)
    if env is not None:
        return positive_int(env, TRACE_WORKERS_ENV_VAR)
    return workers if workers is not None else resolve_workers()


def resolve_rulegen_shards(value=None,
                           source: str = "rulegen_shards") -> int:
    """Rulegen row bands: value > ``REPRO_ENGINE_RULEGEN_SHARDS`` > 1."""
    if value is None:
        value = os.environ.get(RULEGEN_SHARDS_ENV_VAR)
        if value is None:
            return 1
        source = RULEGEN_SHARDS_ENV_VAR
    return positive_int(value, source)


def resolve_cache_dir(value=UNSET):
    """Disk-tier directory: value > ``REPRO_TRACE_CACHE_DIR`` > None.

    An explicit ``None`` (or empty string) disables the disk tier even
    when the environment names a directory; pass nothing to inherit the
    environment.
    """
    if value is UNSET:
        value = os.environ.get(CACHE_DIR_ENV_VAR)
    return str(value) if value else None


def _resolve_env(value, env_var: str, default, source: str, convert):
    """Shared explicit > environment > default resolution for one knob."""
    if value is None:
        value = os.environ.get(env_var)
        if value is None:
            return default
        source = env_var
    return convert(value, source)


def resolve_delta_trace(value=None, source: str = "delta_trace") -> bool:
    """Delta-chain tracing toggle: value > ``REPRO_ENGINE_DELTA_TRACE``
    > off."""
    return _resolve_env(value, DELTA_TRACE_ENV_VAR, False, source,
                        boolean_flag)


def resolve_delta_threshold(value=None,
                            source: str = "delta_threshold") -> float:
    """Delta-fallback fraction: value >
    ``REPRO_ENGINE_DELTA_THRESHOLD`` > 0.5."""
    return _resolve_env(value, DELTA_THRESHOLD_ENV_VAR, 0.5, source,
                        fraction)


def resolve_faults(value=None, source: str = "faults"):
    """Fault-injection plan text: value > ``REPRO_ENGINE_FAULTS`` > None.

    The plan is validated (but not armed) via
    :meth:`repro.engine.faults.FaultPlan.parse`; a malformed plan
    raises :class:`ValueError` naming the offending source.  Returns
    the normalized plan text, or ``None`` when no plan is set.
    """
    if value is None:
        value = os.environ.get(FAULTS_ENV_VAR)
        source = FAULTS_ENV_VAR
    if value is None:
        return None
    text = str(value).strip()
    if not text:
        return None
    from .faults import FaultPlan  # local import: faults imports this module

    try:
        FaultPlan.parse(text)
    except ValueError as error:
        raise ValueError(f"{source}: {error}") from None
    return text


def resolve_degrade(value=None, source: str = "degrade") -> bool:
    """Backend-degradation toggle: value > ``REPRO_ENGINE_DEGRADE`` >
    off."""
    return _resolve_env(value, DEGRADE_ENV_VAR, False, source,
                        boolean_flag)


def resolve_dist_host(value=None) -> str:
    """Coordinator bind host: value > ``REPRO_ENGINE_DIST_HOST`` >
    loopback."""
    if value is not None:
        return str(value)
    return os.environ.get(DIST_HOST_ENV_VAR) or "127.0.0.1"


def resolve_dist_port(value=None, source: str = "port") -> int:
    """Coordinator port: value > ``REPRO_ENGINE_DIST_PORT`` > 7463.

    0 is allowed and means "bind an ephemeral port" (the actual port is
    reported by the coordinator once bound).
    """
    if value is None:
        value = os.environ.get(DIST_PORT_ENV_VAR)
        if value is None:
            return 7463
        source = DIST_PORT_ENV_VAR
    try:
        port = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a TCP port (0-65535), got {value!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(
            f"{source} must be a TCP port (0-65535), got {value!r}"
        )
    return port


def resolve_dist_chunksize(value=None, source: str = "chunksize") -> int:
    """Groups per dispatched unit: value >
    ``REPRO_ENGINE_DIST_CHUNKSIZE`` > 1 (finest-grained stealing)."""
    return _resolve_env(value, DIST_CHUNKSIZE_ENV_VAR, 1, source,
                        positive_int)


def resolve_dist_unit_timeout(value=None,
                              source: str = "unit_timeout") -> float:
    """Per-unit execution budget in seconds: value >
    ``REPRO_ENGINE_DIST_UNIT_TIMEOUT`` > 300."""
    return _resolve_env(value, DIST_UNIT_TIMEOUT_ENV_VAR, 300.0, source,
                        positive_float)


def resolve_dist_heartbeat(value=None,
                           source: str = "heartbeat_interval") -> float:
    """Worker heartbeat period in seconds: value >
    ``REPRO_ENGINE_DIST_HEARTBEAT`` > 1."""
    return _resolve_env(value, DIST_HEARTBEAT_ENV_VAR, 1.0, source,
                        positive_float)


def resolve_dist_worker_timeout(value=None,
                                source: str = "worker_timeout") -> float:
    """Heartbeat-silence budget in seconds: value >
    ``REPRO_ENGINE_DIST_WORKER_TIMEOUT`` > 10."""
    return _resolve_env(value, DIST_WORKER_TIMEOUT_ENV_VAR, 10.0, source,
                        positive_float)


def resolve_dist_max_attempts(value=None,
                              source: str = "max_attempts") -> int:
    """Dispatch attempts per unit: value >
    ``REPRO_ENGINE_DIST_MAX_ATTEMPTS`` > 3."""
    return _resolve_env(value, DIST_MAX_ATTEMPTS_ENV_VAR, 3, source,
                        positive_int)


def resolve_dist_start_timeout(value=None,
                               source: str = "start_timeout") -> float:
    """Worker-arrival budget in seconds: value >
    ``REPRO_ENGINE_DIST_START_TIMEOUT`` > 60."""
    return _resolve_env(value, DIST_START_TIMEOUT_ENV_VAR, 60.0, source,
                        positive_float)


def resolve_dist_trace_stage(value=None,
                             source: str = "trace_stage") -> bool:
    """Coordinator pre-trace stage toggle: value >
    ``REPRO_ENGINE_DIST_TRACE_STAGE`` > on."""
    return _resolve_env(value, DIST_TRACE_STAGE_ENV_VAR, True, source,
                        boolean_flag)


def resolve_dist_token(value=None):
    """Shared auth secret: value > ``REPRO_ENGINE_DIST_TOKEN`` > None.

    An empty string (either source) means "no authentication", the
    same as leaving the variable unset.
    """
    if value is None:
        value = os.environ.get(DIST_TOKEN_ENV_VAR)
    token = str(value) if value else None
    return token or None


def nonnegative_int(value, source: str) -> int:
    """Validate a count-or-disabled knob into an int >= 0."""
    try:
        count = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a non-negative integer, got {value!r}"
        ) from None
    if count < 0:
        raise ValueError(
            f"{source} must be a non-negative integer, got {value!r}"
        )
    return count


def resolve_dist_batch_rows(value=None,
                            source: str = "batch_rows") -> int:
    """Rows per worker result frame: value >
    ``REPRO_ENGINE_DIST_BATCH_ROWS`` > 0 (one frame per unit)."""
    return _resolve_env(value, DIST_BATCH_ROWS_ENV_VAR, 0, source,
                        nonnegative_int)


def resolve_service_host(value=None) -> str:
    """Service bind host: value > ``REPRO_ENGINE_SERVICE_HOST`` >
    loopback."""
    if value is not None:
        return str(value)
    return os.environ.get(SERVICE_HOST_ENV_VAR) or "127.0.0.1"


def resolve_service_port(value=None, source: str = "port") -> int:
    """Service port: value > ``REPRO_ENGINE_SERVICE_PORT`` > 7464.

    0 is allowed and means "bind an ephemeral port" (the bound port is
    reported by the service once listening).
    """
    if value is None:
        value = os.environ.get(SERVICE_PORT_ENV_VAR)
        if value is None:
            return 7464
        source = SERVICE_PORT_ENV_VAR
    try:
        port = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a TCP port (0-65535), got {value!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(
            f"{source} must be a TCP port (0-65535), got {value!r}"
        )
    return port


def resolve_service_dir(value=None) -> str:
    """Run-store root: value > ``REPRO_ENGINE_SERVICE_DIR`` >
    ``"runs"``."""
    if value is not None:
        return str(value)
    return os.environ.get(SERVICE_DIR_ENV_VAR) or "runs"


def resolve_service_max_inflight(value=None,
                                 source: str = "max_inflight") -> int:
    """Concurrent runs on the fleet: value >
    ``REPRO_ENGINE_SERVICE_MAX_INFLIGHT`` > 1."""
    return _resolve_env(value, SERVICE_MAX_INFLIGHT_ENV_VAR, 1, source,
                        positive_int)


def resolve_service_submitter_cap(value=None,
                                  source: str = "submitter_cap") -> int:
    """Per-submitter inflight cap: value >
    ``REPRO_ENGINE_SERVICE_SUBMITTER_CAP`` > 1."""
    return _resolve_env(value, SERVICE_SUBMITTER_CAP_ENV_VAR, 1, source,
                        positive_int)


def resolve_service_drain_timeout(value=None,
                                  source: str = "drain_timeout") -> float:
    """Graceful-shutdown drain budget in seconds: value >
    ``REPRO_ENGINE_SERVICE_DRAIN_TIMEOUT`` > 30."""
    return _resolve_env(value, SERVICE_DRAIN_TIMEOUT_ENV_VAR, 30.0,
                        source, positive_float)


def resolve_telemetry_enabled(value=None,
                              source: str = "enabled") -> bool:
    """Span tracing on/off: value > ``REPRO_ENGINE_TELEMETRY`` >
    off."""
    return _resolve_env(value, TELEMETRY_ENV_VAR, False, source,
                        boolean_flag)


def resolve_telemetry_trace_out(value=None):
    """Default trace export path: value >
    ``REPRO_ENGINE_TELEMETRY_TRACE_OUT`` > ``None`` (no file)."""
    if value is not None:
        return str(value)
    return os.environ.get(TELEMETRY_TRACE_OUT_ENV_VAR) or None


def resolve_telemetry_metrics_port(value=None, source: str = "metrics_port"):
    """Prometheus endpoint port: value >
    ``REPRO_ENGINE_TELEMETRY_METRICS_PORT`` > ``None`` (disabled).

    0 is allowed and binds an ephemeral port.
    """
    if value is None:
        value = os.environ.get(TELEMETRY_METRICS_PORT_ENV_VAR)
        if value is None:
            return None
        source = TELEMETRY_METRICS_PORT_ENV_VAR
    try:
        port = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a TCP port (0-65535), got {value!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(
            f"{source} must be a TCP port (0-65535), got {value!r}"
        )
    return port


@dataclass(frozen=True)
class DistSettings:
    """One fully-resolved snapshot of every distributed-backend knob.

    Attributes:
        host: Address the coordinator binds (workers connect to it).
        port: Coordinator TCP port; 0 binds an ephemeral port.
        chunksize: Work groups per dispatched unit (the requeue
            granularity — 1 gives the finest-grained work stealing).
        unit_timeout: Seconds a unit may execute before its worker is
            presumed wedged and the unit is requeued.
        heartbeat_interval: Seconds between worker heartbeats.
        worker_timeout: Seconds of heartbeat silence before a worker
            holding work is declared dead.
        max_attempts: Dispatch attempts per unit before the run fails.
        start_timeout: Seconds the coordinator tolerates having zero
            connected workers (at startup and after losing all of them).
        trace_stage: When True the coordinator traces every unique
            frame into the shared cache dir before dispatching, so
            workers load artifacts by content key instead of re-tracing.
        token: Shared secret for the HMAC challenge/response handshake
            on the listening socket; unauthenticated peers are dropped.
            ``None`` (the default) disables authentication.
        batch_rows: Row records per worker result frame — a worker
            flushes a partial ``result`` message once this many rows
            have accumulated; 0 (the default) coalesces a whole unit's
            rows into a single frame.
    """

    host: str = "127.0.0.1"
    port: int = 7463
    chunksize: int = 1
    unit_timeout: float = 300.0
    heartbeat_interval: float = 1.0
    worker_timeout: float = 10.0
    max_attempts: int = 3
    start_timeout: float = 60.0
    trace_stage: bool = True
    token: str = None
    batch_rows: int = 0

    @classmethod
    def resolve(cls, host=None, port=None, chunksize=None,
                unit_timeout=None, heartbeat_interval=None,
                worker_timeout=None, max_attempts=None,
                start_timeout=None, trace_stage=None, token=None,
                batch_rows=None) -> "DistSettings":
        """Resolve every dist knob: explicit argument > environment >
        default — the same contract as :meth:`EngineSettings.resolve`."""
        return cls(
            host=resolve_dist_host(host),
            port=resolve_dist_port(port),
            chunksize=resolve_dist_chunksize(chunksize),
            unit_timeout=resolve_dist_unit_timeout(unit_timeout),
            heartbeat_interval=resolve_dist_heartbeat(heartbeat_interval),
            worker_timeout=resolve_dist_worker_timeout(worker_timeout),
            max_attempts=resolve_dist_max_attempts(max_attempts),
            start_timeout=resolve_dist_start_timeout(start_timeout),
            trace_stage=resolve_dist_trace_stage(trace_stage),
            token=resolve_dist_token(token),
            batch_rows=resolve_dist_batch_rows(batch_rows),
        )

    def as_dict(self) -> dict:
        """The resolved dist knobs as a JSON-safe dict (manifest form).

        The auth token is a secret: the manifest form records only
        whether one is set, never its value.
        """
        return {
            "host": self.host,
            "port": self.port,
            "chunksize": self.chunksize,
            "unit_timeout": self.unit_timeout,
            "heartbeat_interval": self.heartbeat_interval,
            "worker_timeout": self.worker_timeout,
            "max_attempts": self.max_attempts,
            "start_timeout": self.start_timeout,
            "trace_stage": self.trace_stage,
            "token": bool(self.token),
            "batch_rows": self.batch_rows,
        }


@dataclass(frozen=True)
class ServiceSettings:
    """One fully-resolved snapshot of every experiment-service knob.

    Attributes:
        host: Address ``repro serve`` binds; clients (``repro submit``
            / ``status`` / ``results`` / ``cancel`` / ``queue``) and
            workers connect to it.
        port: Service TCP port; 0 binds an ephemeral port.
        store_dir: Root of the durable run store — each accepted
            submission gets a ``<store_dir>/<run-id>/`` directory with
            its spec, state file, journal, results and manifest, from
            which a restarted daemon recovers the queue.
        max_inflight: How many submitted runs execute concurrently on
            the shared worker fleet.
        submitter_cap: How many of one submitter's runs may be
            inflight at once; further submissions wait in ``pending``
            (the fair-share cap).
        drain_timeout: Seconds a SIGTERM'd daemon waits for inflight
            units to drain into the run journals before closing.
    """

    host: str = "127.0.0.1"
    port: int = 7464
    store_dir: str = "runs"
    max_inflight: int = 1
    submitter_cap: int = 1
    drain_timeout: float = 30.0

    @classmethod
    def resolve(cls, host=None, port=None, store_dir=None,
                max_inflight=None, submitter_cap=None,
                drain_timeout=None) -> "ServiceSettings":
        """Resolve every service knob: explicit argument > environment
        > default — the same contract as
        :meth:`EngineSettings.resolve`."""
        return cls(
            host=resolve_service_host(host),
            port=resolve_service_port(port),
            store_dir=resolve_service_dir(store_dir),
            max_inflight=resolve_service_max_inflight(max_inflight),
            submitter_cap=resolve_service_submitter_cap(submitter_cap),
            drain_timeout=resolve_service_drain_timeout(drain_timeout),
        )

    def as_dict(self) -> dict:
        """The resolved service knobs as a JSON-safe dict."""
        return {
            "host": self.host,
            "port": self.port,
            "store_dir": self.store_dir,
            "max_inflight": self.max_inflight,
            "submitter_cap": self.submitter_cap,
            "drain_timeout": self.drain_timeout,
        }


@dataclass(frozen=True)
class TelemetrySettings:
    """One fully-resolved snapshot of every telemetry knob.

    Attributes:
        enabled: When True, runs record counted nested spans (the
            :mod:`repro.engine.telemetry` tracer) and snapshot the
            metrics registry into the run manifest's ``telemetry``
            key; off by default so the hot paths stay no-op.
        trace_out: Chrome trace-event JSON export path for traced runs
            (``repro run --trace-out`` overrides it), or ``None`` for
            no export file.
        metrics_port: Port the Prometheus ``/metrics`` endpoint binds
            (``repro serve --metrics-port`` overrides it); 0 binds an
            ephemeral port, ``None`` disables the endpoint.
    """

    enabled: bool = False
    trace_out: str = None
    metrics_port: int = None

    @classmethod
    def resolve(cls, enabled=None, trace_out=None,
                metrics_port=None) -> "TelemetrySettings":
        """Resolve every telemetry knob: explicit argument >
        environment > default — the same contract as
        :meth:`EngineSettings.resolve`."""
        return cls(
            enabled=resolve_telemetry_enabled(enabled),
            trace_out=resolve_telemetry_trace_out(trace_out),
            metrics_port=resolve_telemetry_metrics_port(metrics_port),
        )

    def as_dict(self) -> dict:
        """The resolved telemetry knobs as a JSON-safe dict."""
        return {
            "enabled": self.enabled,
            "trace_out": self.trace_out,
            "metrics_port": self.metrics_port,
        }


@dataclass(frozen=True)
class EngineSettings:
    """One fully-resolved snapshot of every engine knob.

    Attributes:
        backend: Execution backend name (``"serial"`` / ``"thread"`` /
            ``"process"`` or any registered third-party backend).
        workers: Simulate-stage pool width.
        trace_workers: Trace-stage pool width.
        rulegen_shards: Row bands per rule-generation pass.
        cache_dir: Persistent trace-cache directory, or ``None`` for a
            memory-only cache.
        delta_trace: When True, batched scenarios trace as sequential
            delta chains (frame 0 full, later frames patched from the
            previous frame's rules).
        delta_threshold: Fraction of a frame the diff may touch before
            the delta path falls back to a full rebuild.
        faults: Deterministic fault-injection plan text (chaos
            harness; see ``docs/robustness.md``), or ``None`` when
            disarmed.
        degrade: When True, a run whose backend cannot start degrades
            along the ladder (dist to process to serial) instead of
            failing; default off.
    """

    backend: str = "thread"
    workers: int = 1
    trace_workers: int = 1
    rulegen_shards: int = 1
    cache_dir: str = None
    delta_trace: bool = False
    delta_threshold: float = 0.5
    faults: str = None
    degrade: bool = False

    @classmethod
    def resolve(cls, backend=None, workers=None, trace_workers=None,
                rulegen_shards=None, cache_dir=UNSET, delta_trace=None,
                delta_threshold=None, faults=None,
                degrade=None) -> "EngineSettings":
        """Resolve every knob: explicit argument > environment > default.

        This is the constructor the runner and the declarative spec
        layer share; each argument may be ``None`` (inherit the
        environment) or an explicit override, and malformed values from
        either source raise a :class:`ValueError` naming the offender.
        """
        workers = resolve_workers(workers)
        return cls(
            backend=resolve_backend_name(backend),
            workers=workers,
            trace_workers=resolve_trace_workers(trace_workers, workers),
            rulegen_shards=resolve_rulegen_shards(rulegen_shards),
            cache_dir=resolve_cache_dir(cache_dir),
            delta_trace=resolve_delta_trace(delta_trace),
            delta_threshold=resolve_delta_threshold(delta_threshold),
            faults=resolve_faults(faults),
            degrade=resolve_degrade(degrade),
        )

    def as_dict(self) -> dict:
        """The resolved knobs as a JSON-safe dict (manifest form)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "trace_workers": self.trace_workers,
            "rulegen_shards": self.rulegen_shards,
            "cache_dir": self.cache_dir,
            "delta_trace": self.delta_trace,
            "delta_threshold": self.delta_threshold,
            "faults": self.faults,
            "degrade": self.degrade,
        }
