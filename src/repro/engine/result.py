"""The unified simulation result schema.

Every simulator family in the repo — SPADE, DenseAcc, PointAcc,
SpConv2D-Acc, the analytic platform models — historically returned its
own result type.  :class:`SimResult` is the common denominator all of
them adapt to: one flat record per (scenario, model, simulator) run with
the metrics every consumer (benchmarks, reports, sweeps) asks for, plus
a per-layer breakdown and the untouched legacy result for clients that
need simulator-specific detail.

Metrics a simulator cannot produce are ``None`` (e.g. the analytic
platform models have no cycle count; SpConv2D-Acc has no energy model),
never fabricated.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path

#: Canonical column order for tabular output.  ``frame`` distinguishes
#: the per-frame and ``"mean"`` rows of batched scenarios (``None`` for
#: unbatched rows).
RESULT_COLUMNS = (
    "scenario",
    "frame",
    "model",
    "simulator",
    "cycles",
    "latency_ms",
    "fps",
    "energy_mj",
    "dram_bytes",
    "utilization",
)


@dataclass
class SimResult:
    """One simulator's outcome on one traced model frame.

    Attributes:
        simulator: Simulator display name (``"SPADE.HE"``, ``"A6000"`` ...).
        model: Table I model tag the trace came from.
        scenario: Scenario label the frame came from.
        frame: Frame index within a batched scenario, ``"mean"`` for the
            aggregate row, or ``None`` for an unbatched (single-frame)
            scenario.
        cycles: Total core cycles, or ``None`` for analytic models.
        latency_ms: End-to-end frame latency.
        fps: Frames per second (``0.0`` for an empty frame).
        energy_mj: Frame energy, or ``None`` when the simulator has no
            energy model.
        dram_bytes: Off-chip traffic, or ``None`` when not modelled.
        utilization: PE-array utilization in [0, 1], or ``None``.
        per_layer: One dict per executed layer (keys vary by simulator
            family but always include ``"name"``).
        extras: Simulator-specific aggregates (instruction breakdown,
            phase split, energy components, ...).
        raw: The legacy result object the adapter wrapped, for consumers
            that need the full simulator-specific API.
    """

    simulator: str
    model: str
    scenario: str = "default"
    frame: object = None
    cycles: int = None
    latency_ms: float = None
    fps: float = None
    energy_mj: float = None
    dram_bytes: int = None
    utilization: float = None
    per_layer: list = field(default_factory=list)
    extras: dict = field(default_factory=dict)
    raw: object = field(default=None, repr=False, compare=False)

    def as_row(self, columns=RESULT_COLUMNS) -> tuple:
        """The record as a tuple in ``columns`` order (for tables)."""
        return tuple(getattr(self, column) for column in columns)

    def as_dict(self, columns=RESULT_COLUMNS) -> dict:
        """The record as a plain dict (for JSON serialization)."""
        return {column: getattr(self, column) for column in columns}


#: Sentinel for values :func:`_jsonable` cannot represent in JSON.
_DROP = object()


def _jsonable(value):
    """Best-effort JSON projection of one value.

    Numpy scalars collapse to native ints/floats, tuples become lists,
    dict keys are stringified; leaves JSON cannot carry (legacy result
    objects in ``extras``) return the ``_DROP`` sentinel and are elided
    from their container — never stringified, which would silently
    corrupt a later :meth:`ExperimentTable.from_json` round trip.
    """
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        return value
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        # 0-d numpy scalar (int64 cycles, float64 metrics).
        return _jsonable(item())
    if isinstance(value, dict):
        projected = {}
        for key, entry in value.items():
            converted = _jsonable(entry)
            if converted is not _DROP:
                projected[str(key)] = converted
        return projected
    if isinstance(value, (list, tuple)):
        converted = [_jsonable(entry) for entry in value]
        return [entry for entry in converted if entry is not _DROP]
    return _DROP


def _result_to_record(result: SimResult) -> dict:
    """One :class:`SimResult` as a JSON-ready record.

    Scalar columns plus the ``per_layer`` / ``extras`` detail; ``raw``
    legacy objects never serialize (matching the process backend's IPC
    contract).
    """
    record = {
        column: _jsonable(getattr(result, column))
        for column in RESULT_COLUMNS
    }
    record["per_layer"] = _jsonable(result.per_layer)
    record["extras"] = _jsonable(result.extras)
    return record


def _record_to_result(record: dict) -> SimResult:
    known = set(RESULT_COLUMNS) | {"per_layer", "extras"}
    unknown = sorted(set(record) - known)
    if unknown:
        raise ValueError(
            f"result record has unknown key(s) {unknown}; "
            f"expected {sorted(known)}"
        )
    return SimResult(
        per_layer=record.get("per_layer") or [],
        extras=record.get("extras") or {},
        **{column: record.get(column) for column in RESULT_COLUMNS},
    )


@dataclass
class ExperimentTable:
    """Tidy collection of :class:`SimResult` rows from one runner sweep.

    Row order is deterministic — scenarios x models x simulators in the
    order the runner was configured — regardless of which parallel worker
    finished first.
    """

    results: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def filter(self, scenario: str = None, model: str = None,
               simulator: str = None, frame: object = "any",
               ) -> "ExperimentTable":
        """Sub-table matching every given label.

        ``frame`` matches a per-frame row index, ``"mean"`` for the
        aggregate row of a batched scenario, or ``None`` for unbatched
        rows; the default (``"any"``) does not filter on frames.
        """
        kept = [
            result
            for result in self.results
            if (scenario is None or result.scenario == scenario)
            and (model is None or result.model == model)
            and (simulator is None or result.simulator == simulator)
            and (frame == "any" or result.frame == frame)
        ]
        return ExperimentTable(results=kept)

    def get(self, scenario: str = None, model: str = None,
            simulator: str = None, frame: object = "any") -> SimResult:
        """The single row matching the given labels.

        Raises:
            KeyError: when zero or more than one row matches.
        """
        matches = self.filter(scenario, model, simulator, frame).results
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one result for scenario={scenario!r} "
                f"model={model!r} simulator={simulator!r} frame={frame!r}, "
                f"found {len(matches)}"
            )
        return matches[0]

    def column(self, name: str) -> list:
        """All values of one metric, in row order."""
        return [getattr(result, name) for result in self.results]

    def rows(self, columns=RESULT_COLUMNS) -> list:
        """Row tuples for :func:`repro.analysis.report.format_table`."""
        return [result.as_row(columns) for result in self.results]

    def as_dicts(self, columns=RESULT_COLUMNS) -> list:
        return [result.as_dict(columns) for result in self.results]

    # -- serialization (backs the `repro run --out` CLI sinks) -------------

    def to_csv(self, path=None, columns=RESULT_COLUMNS) -> str:
        """The table as CSV text (header + one line per row).

        ``None`` metrics render as empty cells.  When ``path`` is given
        the text is also written there; the text is returned either way.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for result in self.results:
            writer.writerow([
                "" if value is None else value
                for value in result.as_row(columns)
            ])
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_json(self, path=None, indent: int = 2) -> str:
        """The table as a JSON document that :meth:`from_json` reads back.

        Every row serializes its scalar columns plus the JSON-safe parts
        of ``per_layer`` and ``extras``; ``raw`` legacy objects are
        dropped (they never survive IPC either).  When ``path`` is given
        the text is also written there; the text is returned either way.
        """
        payload = {
            "schema": "repro.ExperimentTable",
            "version": 1,
            "columns": list(RESULT_COLUMNS),
            "results": [
                _result_to_record(result) for result in self.results
            ],
        }
        text = json.dumps(payload, indent=indent) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source) -> "ExperimentTable":
        """Rebuild a table from :meth:`to_json` output.

        ``source`` may be the JSON text itself, an already-parsed
        payload dict, or a path to a ``.json`` file.
        """
        if isinstance(source, dict):
            payload = source
        else:
            text = str(source)
            if not text.lstrip().startswith("{"):
                try:
                    text = Path(text).read_text()
                except OSError as error:
                    raise ValueError(
                        f"not an ExperimentTable JSON document or a "
                        f"readable path: {error}"
                    ) from None
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"not an ExperimentTable JSON document: {error}"
                ) from None
        if not isinstance(payload, dict) \
                or payload.get("schema") != "repro.ExperimentTable":
            raise ValueError(
                "not an ExperimentTable JSON document (missing "
                "schema='repro.ExperimentTable')"
            )
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported ExperimentTable version "
                f"{payload.get('version')!r} (this engine reads 1)"
            )
        return cls(results=[
            _record_to_result(record)
            for record in payload.get("results", [])
        ])

    @property
    def scenarios(self) -> list:
        return _unique(result.scenario for result in self.results)

    @property
    def models(self) -> list:
        return _unique(result.model for result in self.results)

    @property
    def simulators(self) -> list:
        return _unique(result.simulator for result in self.results)


def _unique(values) -> list:
    seen = []
    for value in values:
        if value not in seen:
            seen.append(value)
    return seen


#: Metrics averaged by :func:`mean_result` across the frames of a batch.
_MEAN_METRICS = (
    "cycles",
    "latency_ms",
    "fps",
    "energy_mj",
    "dram_bytes",
    "utilization",
)


def mean_result(per_frame: list) -> SimResult:
    """Aggregate the per-frame rows of one batched cell into a mean row.

    Every metric is the arithmetic mean of the per-frame values (so the
    mean ``fps`` is the mean of the per-frame rates, not the rate of the
    mean latency).  A metric the simulator does not produce stays
    ``None``.  The row carries ``frame="mean"`` and
    ``extras={"frames": N}``; per-layer detail is not aggregated.
    """
    if not per_frame:
        raise ValueError("mean_result needs at least one per-frame result")
    first = per_frame[0]
    values = {}
    for metric in _MEAN_METRICS:
        samples = [getattr(result, metric) for result in per_frame]
        if any(sample is None for sample in samples):
            values[metric] = None
        else:
            values[metric] = sum(samples) / len(samples)
    return SimResult(
        simulator=first.simulator,
        model=first.model,
        scenario=first.scenario,
        frame="mean",
        per_layer=[],
        extras={"frames": len(per_frame)},
        **values,
    )
