"""The unified simulation result schema.

Every simulator family in the repo — SPADE, DenseAcc, PointAcc,
SpConv2D-Acc, the analytic platform models — historically returned its
own result type.  :class:`SimResult` is the common denominator all of
them adapt to: one flat record per (scenario, model, simulator) run with
the metrics every consumer (benchmarks, reports, sweeps) asks for, plus
a per-layer breakdown and the untouched legacy result for clients that
need simulator-specific detail.

Metrics a simulator cannot produce are ``None`` (e.g. the analytic
platform models have no cycle count; SpConv2D-Acc has no energy model),
never fabricated.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from . import telemetry

#: Canonical column order for tabular output.  ``frame`` distinguishes
#: the per-frame and ``"mean"`` rows of batched scenarios (``None`` for
#: unbatched rows).
RESULT_COLUMNS = (
    "scenario",
    "frame",
    "model",
    "simulator",
    "cycles",
    "latency_ms",
    "fps",
    "energy_mj",
    "dram_bytes",
    "utilization",
)


@dataclass
class SimResult:
    """One simulator's outcome on one traced model frame.

    Attributes:
        simulator: Simulator display name (``"SPADE.HE"``, ``"A6000"`` ...).
        model: Table I model tag the trace came from.
        scenario: Scenario label the frame came from.
        frame: Frame index within a batched scenario, ``"mean"`` for the
            aggregate row, or ``None`` for an unbatched (single-frame)
            scenario.
        cycles: Total core cycles, or ``None`` for analytic models.
        latency_ms: End-to-end frame latency.
        fps: Frames per second (``0.0`` for an empty frame).
        energy_mj: Frame energy, or ``None`` when the simulator has no
            energy model.
        dram_bytes: Off-chip traffic, or ``None`` when not modelled.
        utilization: PE-array utilization in [0, 1], or ``None``.
        per_layer: One dict per executed layer (keys vary by simulator
            family but always include ``"name"``).
        extras: Simulator-specific aggregates (instruction breakdown,
            phase split, energy components, ...).
        raw: The legacy result object the adapter wrapped, for consumers
            that need the full simulator-specific API.
    """

    simulator: str
    model: str
    scenario: str = "default"
    frame: object = None
    cycles: int = None
    latency_ms: float = None
    fps: float = None
    energy_mj: float = None
    dram_bytes: int = None
    utilization: float = None
    per_layer: list = field(default_factory=list)
    extras: dict = field(default_factory=dict)
    raw: object = field(default=None, repr=False, compare=False)

    def as_row(self, columns=RESULT_COLUMNS) -> tuple:
        """The record as a tuple in ``columns`` order (for tables)."""
        return tuple(getattr(self, column) for column in columns)

    def as_dict(self, columns=RESULT_COLUMNS) -> dict:
        """The record as a plain dict (for JSON serialization)."""
        return {column: getattr(self, column) for column in columns}


#: Sentinel for values :func:`_jsonable` cannot represent in JSON.
_DROP = object()


def _jsonable(value):
    """Best-effort JSON projection of one value.

    Numpy scalars collapse to native ints/floats, tuples become lists,
    dict keys are stringified; leaves JSON cannot carry (legacy result
    objects in ``extras``) return the ``_DROP`` sentinel and are elided
    from their container — never stringified, which would silently
    corrupt a later :meth:`ExperimentTable.from_json` round trip.
    """
    if value is None or isinstance(value, (str, bool, int)):
        return value
    if isinstance(value, float):
        return value
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        # 0-d numpy scalar (int64 cycles, float64 metrics).
        return _jsonable(item())
    if isinstance(value, dict):
        projected = {}
        for key, entry in value.items():
            converted = _jsonable(entry)
            if converted is not _DROP:
                projected[str(key)] = converted
        return projected
    if isinstance(value, (list, tuple)):
        converted = [_jsonable(entry) for entry in value]
        return [entry for entry in converted if entry is not _DROP]
    return _DROP


def _result_to_record(result: SimResult) -> dict:
    """One :class:`SimResult` as a JSON-ready record.

    Scalar columns plus the ``per_layer`` / ``extras`` detail; ``raw``
    legacy objects never serialize (matching the process backend's IPC
    contract).
    """
    record = {
        column: _jsonable(getattr(result, column))
        for column in RESULT_COLUMNS
    }
    record["per_layer"] = _jsonable(result.per_layer)
    record["extras"] = _jsonable(result.extras)
    return record


def _check_record_keys(record: dict) -> None:
    known = set(RESULT_COLUMNS) | {"per_layer", "extras"}
    unknown = sorted(set(record) - known)
    if unknown:
        raise ValueError(
            f"result record has unknown key(s) {unknown}; "
            f"expected {sorted(known)}"
        )


def _record_to_result(record: dict) -> SimResult:
    _check_record_keys(record)
    return SimResult(
        per_layer=record.get("per_layer") or [],
        extras=record.get("extras") or {},
        **{column: record.get(column) for column in RESULT_COLUMNS},
    )


#: Scalar metric columns stored as (float64 value, int8 kind) pairs.
_METRIC_COLUMNS = (
    "cycles",
    "latency_ms",
    "fps",
    "energy_mj",
    "dram_bytes",
    "utilization",
)

#: Label columns stored as int32 vocabulary codes.
_LABEL_COLUMNS = ("scenario", "model", "simulator")

# Cell kind tags: what Python value the float64 cell stands for, so
# materialized views (and CSV/JSON text) reproduce the ingested value
# exactly — 150 and 150.0 are different bytes in both sinks.
_KIND_NONE = 0      # None (the cell is meaningless)
_KIND_INT = 1       # int(cell)
_KIND_FLOAT = 2     # float(cell)
_KIND_EXACT = 3     # the value in the row's exact-store (bool, huge
#                     int, any foreign object a caller smuggled in)

# Frame kinds reuse the scheme: the int64 frame cell is a frame index
# (_KIND_INT), a label-vocabulary code (_KIND_FLOAT slot repurposed as
# "label"), or nothing.
_FRAME_LABEL = 2

#: Ints beyond ±2^53 do not round-trip through float64; such values
#: (and non-numeric oddities) go to the per-row exact store instead.
_EXACT_INT_BOUND = 1 << 53

_ROW_DTYPE = np.dtype(
    [(column, np.int32) for column in _LABEL_COLUMNS]
    + [("frame", np.int64), ("frame_kind", np.int8)]
    + [entry for metric in _METRIC_COLUMNS
       for entry in ((metric, np.float64), (metric + "_kind", np.int8))]
)


def _as_object(values: list) -> np.ndarray:
    """A 1-D object ndarray holding exactly these Python objects
    (``np.array(values)`` would coerce scalars and nest sequences)."""
    out = np.empty(len(values), dtype=object)
    for position, value in enumerate(values):
        out[position] = value
    return out


class ExperimentTable:
    """Tidy collection of :class:`SimResult` rows from one runner sweep.

    Row order is deterministic — scenarios x models x simulators in the
    order the runner was configured — regardless of which parallel worker
    finished first.

    Storage is columnar: scalar columns live in one numpy struct array
    (labels as vocabulary codes, metrics as float64 cells with a kind
    tag preserving None/int/float exactly), so :meth:`filter`,
    :meth:`column` and the CSV/JSON sinks run vectorized instead of
    touching a Python object per row.  :class:`SimResult` views are
    materialized at the edges — :attr:`results`, :meth:`get`,
    iteration — and rows ingested as objects keep their identity, so
    mutating ``row.raw`` (the process backend's strip) behaves as it
    always did.
    """

    def __init__(self, results=None):
        self._length = 0
        self._data = np.empty(0, dtype=_ROW_DTYPE)
        self._vocab = {}      # label value -> code (shared with slices)
        self._labels = []     # code -> label value
        self._exact = []      # per row: None or {column: exact value}
        self._rows = []       # per row: SimResult view or lazy payload
        self._index = None    # lazy {dimension: {value: row-id array}}
        for result in results or []:
            self.append(result)

    # -- ingestion ---------------------------------------------------------

    def append(self, result: SimResult) -> None:
        """Add one row; the instance is kept as the row's view."""
        row = self._new_row()
        record = self._data[row]
        for column in _LABEL_COLUMNS:
            record[column] = self._code(getattr(result, column))
        self._set_frame(row, result.frame)
        for metric in _METRIC_COLUMNS:
            self._set_metric(row, metric, getattr(result, metric))
        self._rows.append(result)

    def append_record(self, record: dict) -> None:
        """Add one row from a JSON record (:meth:`to_records` shape);
        the :class:`SimResult` view is only built if asked for."""
        _check_record_keys(record)
        row = self._new_row()
        cells = self._data[row]
        for column in _LABEL_COLUMNS:
            cells[column] = self._code(record.get(column))
        self._set_frame(row, record.get("frame"))
        for metric in _METRIC_COLUMNS:
            self._set_metric(row, metric, record.get(metric))
        self._rows.append((record.get("per_layer") or [],
                           record.get("extras") or {}))

    def _new_row(self) -> int:
        if self._length == len(self._data):
            grown = np.zeros(max(16, 2 * len(self._data)),
                             dtype=_ROW_DTYPE)
            grown[:self._length] = self._data[:self._length]
            self._data = grown
        self._exact.append(None)
        self._index = None
        row = self._length
        self._length += 1
        return row

    def _code(self, value) -> int:
        code = self._vocab.get(value)
        if code is None:
            code = len(self._labels)
            self._vocab[value] = code
            self._labels.append(value)
        return code

    def _store_exact(self, row: int, column: str, value) -> None:
        if self._exact[row] is None:
            self._exact[row] = {}
        self._exact[row][column] = value

    def _set_frame(self, row: int, value) -> None:
        cells = self._data[row]
        if value is None:
            kind = cell = _KIND_NONE
        elif isinstance(value, (bool, np.bool_)):
            kind, cell = _KIND_EXACT, 0
            self._store_exact(row, "frame", value)
        elif isinstance(value, (int, np.integer)):
            kind, cell = _KIND_INT, int(value)
        elif isinstance(value, str):
            kind, cell = _FRAME_LABEL, self._code(value)
        else:
            kind, cell = _KIND_EXACT, 0
            self._store_exact(row, "frame", value)
        cells["frame"], cells["frame_kind"] = cell, kind

    def _set_metric(self, row: int, metric: str, value) -> None:
        cells = self._data[row]
        if value is None:
            kind, cell = _KIND_NONE, 0.0
        elif isinstance(value, (bool, np.bool_)):
            kind, cell = _KIND_EXACT, 0.0
            self._store_exact(row, metric, value)
        elif isinstance(value, (int, np.integer)):
            cell = int(value)
            if -_EXACT_INT_BOUND <= cell <= _EXACT_INT_BOUND:
                kind, cell = _KIND_INT, float(cell)
            else:
                kind, cell = _KIND_EXACT, 0.0
                self._store_exact(row, metric, value)
        elif isinstance(value, (float, np.floating)):
            kind, cell = _KIND_FLOAT, float(value)
        else:
            kind, cell = _KIND_EXACT, 0.0
            self._store_exact(row, metric, value)
        cells[metric], cells[metric + "_kind"] = cell, kind

    # -- views -------------------------------------------------------------

    @property
    def results(self) -> list:
        """The rows as :class:`SimResult` objects (materialized once
        and cached, so mutations like ``row.raw = None`` stick)."""
        for row in range(self._length):
            if not isinstance(self._rows[row], SimResult):
                self._rows[row] = self._materialize(row)
        return list(self._rows)

    def _materialize(self, row: int) -> SimResult:
        per_layer, extras = self._rows[row]
        return SimResult(
            per_layer=per_layer,
            extras=extras,
            frame=self._frame_of(row),
            **{column: self._label_of(row, column)
               for column in _LABEL_COLUMNS},
            **{metric: self._metric_of(row, metric)
               for metric in _METRIC_COLUMNS},
        )

    def _label_of(self, row: int, column: str):
        return self._labels[int(self._data[column][row])]

    def _frame_of(self, row: int):
        kind = int(self._data["frame_kind"][row])
        if kind == _KIND_NONE:
            return None
        if kind == _KIND_INT:
            return int(self._data["frame"][row])
        if kind == _FRAME_LABEL:
            return self._labels[int(self._data["frame"][row])]
        return self._exact[row]["frame"]

    def _metric_of(self, row: int, metric: str):
        kind = int(self._data[metric + "_kind"][row])
        if kind == _KIND_NONE:
            return None
        if kind == _KIND_INT:
            return int(self._data[metric][row])
        if kind == _KIND_FLOAT:
            return float(self._data[metric][row])
        return self._exact[row][metric]

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        return iter(self.results)

    def __eq__(self, other):
        if not isinstance(other, ExperimentTable):
            return NotImplemented
        return self.results == other.results

    def __repr__(self) -> str:
        return f"ExperimentTable(results={self.results!r})"

    def release_raw(self) -> None:
        """Drop every row's legacy ``raw`` object (frees simulator
        state after a sweep; record-ingested rows have none)."""
        for row in self._rows:
            if isinstance(row, SimResult):
                row.raw = None

    # -- selection (lazy per-dimension index) ------------------------------

    def _ensure_index(self) -> dict:
        if self._index is not None:
            return self._index
        length = self._length
        index = {}
        for column in _LABEL_COLUMNS:
            codes = self._data[column][:length]
            index[column] = {
                self._labels[int(code)]: np.nonzero(codes == code)[0]
                for code in np.unique(codes)
            }
        kinds = self._data["frame_kind"][:length]
        cells = self._data["frame"][:length]
        frames = {}
        none_ids = np.nonzero(kinds == _KIND_NONE)[0]
        if len(none_ids):
            frames[None] = none_ids
        int_ids = np.nonzero(kinds == _KIND_INT)[0]
        for value in np.unique(cells[int_ids]):
            frames[int(value)] = int_ids[cells[int_ids] == value]
        label_ids = np.nonzero(kinds == _FRAME_LABEL)[0]
        for code in np.unique(cells[label_ids]):
            key = self._labels[int(code)]
            frames[key] = label_ids[cells[label_ids] == code]
        for row in np.nonzero(kinds == _KIND_EXACT)[0].tolist():
            value = self._exact[row]["frame"]
            previous = frames.get(value)
            frames[value] = (np.array([row])
                             if previous is None
                             else np.append(previous, row))
        index["frame"] = frames
        self._index = index
        return index

    def _match_ids(self, scenario, model, simulator,
                   frame) -> np.ndarray:
        index = self._ensure_index()
        empty = np.empty(0, dtype=np.int64)
        selected = None
        for dimension, value in (("scenario", scenario),
                                 ("model", model),
                                 ("simulator", simulator)):
            if value is None:
                continue
            ids = index[dimension].get(value)
            if ids is None:
                return empty
            selected = (ids if selected is None
                        else np.intersect1d(selected, ids,
                                            assume_unique=True))
        if not (isinstance(frame, str) and frame == "any"):
            try:
                ids = index["frame"].get(frame)
            except TypeError:     # unhashable frame key: scan instead
                ids = np.array([
                    row for row in range(self._length)
                    if self._frame_of(row) == frame
                ], dtype=np.int64)
            if ids is None:
                return empty
            selected = (ids if selected is None
                        else np.intersect1d(selected, ids,
                                            assume_unique=True))
        if selected is None:
            return np.arange(self._length)
        return np.sort(selected)

    def _take(self, ids: np.ndarray) -> "ExperimentTable":
        table = ExperimentTable()
        table._vocab = self._vocab        # shared: codes only grow
        table._labels = self._labels
        table._length = len(ids)
        table._data = self._data[ids]
        positions = ids.tolist()
        table._exact = [self._exact[row] for row in positions]
        table._rows = [self._rows[row] for row in positions]
        return table

    def filter(self, scenario: str = None, model: str = None,
               simulator: str = None, frame: object = "any",
               ) -> "ExperimentTable":
        """Sub-table matching every given label.

        ``frame`` matches a per-frame row index, ``"mean"`` for the
        aggregate row of a batched scenario, or ``None`` for unbatched
        rows; the default (``"any"``) does not filter on frames.
        Matching goes through a lazy per-dimension index (built on
        first use, invalidated on append), not a row scan.
        """
        return self._take(self._match_ids(scenario, model, simulator,
                                          frame))

    def get(self, scenario: str = None, model: str = None,
            simulator: str = None, frame: object = "any") -> SimResult:
        """The single row matching the given labels.

        Raises:
            KeyError: when zero or more than one row matches.
        """
        ids = self._match_ids(scenario, model, simulator, frame)
        if len(ids) != 1:
            raise KeyError(
                f"expected exactly one result for scenario={scenario!r} "
                f"model={model!r} simulator={simulator!r} frame={frame!r}, "
                f"found {len(ids)}"
            )
        row = int(ids[0])
        if not isinstance(self._rows[row], SimResult):
            self._rows[row] = self._materialize(row)
        return self._rows[row]

    # -- columnar access ---------------------------------------------------

    def _column_values(self, name: str) -> list:
        """One column as a list of exact Python values, vectorized."""
        length = self._length
        if name in _LABEL_COLUMNS:
            codes = self._data[name][:length]
            return _as_object(self._labels)[codes].tolist()
        if name == "frame":
            kinds = self._data["frame_kind"][:length]
            cells = self._data["frame"][:length]
            out = np.empty(length, dtype=object)   # None-filled
            mask = kinds == _KIND_INT
            if mask.any():
                out[mask] = _as_object(cells[mask].tolist())
            mask = kinds == _FRAME_LABEL
            if mask.any():
                out[mask] = _as_object(self._labels)[cells[mask]]
            for row in np.nonzero(kinds == _KIND_EXACT)[0].tolist():
                out[row] = self._exact[row]["frame"]
            return out.tolist()
        if name in _METRIC_COLUMNS:
            kinds = self._data[name + "_kind"][:length]
            cells = self._data[name][:length]
            out = np.empty(length, dtype=object)   # None-filled
            mask = kinds == _KIND_INT
            if mask.any():
                out[mask] = _as_object(
                    cells[mask].astype(np.int64).tolist())
            mask = kinds == _KIND_FLOAT
            if mask.any():
                out[mask] = _as_object(cells[mask].tolist())
            for row in np.nonzero(kinds == _KIND_EXACT)[0].tolist():
                out[row] = self._exact[row][name]
            return out.tolist()
        return [getattr(result, name) for result in self.results]

    def column(self, name: str) -> np.ndarray:
        """All values of one metric, in row order, as a numpy array.

        A metric column with a uniform kind comes back as an int64 or
        float64 array straight from columnar storage; anything mixed
        (or a label column) is an object array of the exact values.
        """
        if name in _METRIC_COLUMNS and self._length:
            kinds = self._data[name + "_kind"][:self._length]
            if (kinds == _KIND_INT).all():
                return (self._data[name][:self._length]
                        .astype(np.int64))
            if (kinds == _KIND_FLOAT).all():
                return self._data[name][:self._length].copy()
        return _as_object(self._column_values(name))

    def rows(self, columns=RESULT_COLUMNS) -> list:
        """Row tuples for :func:`repro.analysis.report.format_table`."""
        return list(zip(*[self._column_values(name)
                          for name in columns])) if self._length else []

    def as_dicts(self, columns=RESULT_COLUMNS) -> list:
        """Every row as a plain dict in ``columns`` order."""
        pulled = [self._column_values(name) for name in columns]
        return [dict(zip(columns, values)) for values in zip(*pulled)]

    # -- serialization (backs the `repro run --out` CLI sinks) -------------

    def to_csv(self, path=None, columns=RESULT_COLUMNS) -> str:
        """The table as CSV text (header + one line per row).

        ``None`` metrics render as empty cells.  When ``path`` is given
        the text is also written there; the text is returned either way.
        """
        with telemetry.span("serialize", "engine", sink="csv"):
            buffer = io.StringIO()
            writer = csv.writer(buffer, lineterminator="\n")
            writer.writerow(columns)
            pulled = [self._column_values(name) for name in columns]
            for values in zip(*pulled):
                writer.writerow([
                    "" if value is None else value for value in values
                ])
            text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_records(self) -> list:
        """Every row as a JSON-ready record (scalar columns plus the
        JSON-safe ``per_layer`` / ``extras`` detail) — the dist
        backend's wire format, read back by :meth:`append_record`."""
        with telemetry.span("serialize", "engine", sink="records"):
            pulled = {name: self._column_values(name)
                      for name in RESULT_COLUMNS}
            records = []
            for row in range(self._length):
                payload = self._rows[row]
                if isinstance(payload, SimResult):
                    per_layer, extras = (payload.per_layer,
                                         payload.extras)
                else:
                    per_layer, extras = payload
                record = {name: _jsonable(pulled[name][row])
                          for name in RESULT_COLUMNS}
                record["per_layer"] = _jsonable(per_layer)
                record["extras"] = _jsonable(extras)
                records.append(record)
            return records

    def to_json(self, path=None, indent: int = 2) -> str:
        """The table as a JSON document that :meth:`from_json` reads back.

        Every row serializes its scalar columns plus the JSON-safe parts
        of ``per_layer`` and ``extras``; ``raw`` legacy objects are
        dropped (they never survive IPC either).  When ``path`` is given
        the text is also written there; the text is returned either way.
        """
        payload = {
            "schema": "repro.ExperimentTable",
            "version": 1,
            "columns": list(RESULT_COLUMNS),
            "results": self.to_records(),
        }
        text = json.dumps(payload, indent=indent) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source) -> "ExperimentTable":
        """Rebuild a table from :meth:`to_json` output.

        ``source`` may be the JSON text itself, an already-parsed
        payload dict, or a path to a ``.json`` file.
        """
        if isinstance(source, dict):
            payload = source
        else:
            text = str(source)
            if not text.lstrip().startswith("{"):
                try:
                    text = Path(text).read_text()
                except OSError as error:
                    raise ValueError(
                        f"not an ExperimentTable JSON document or a "
                        f"readable path: {error}"
                    ) from None
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"not an ExperimentTable JSON document: {error}"
                ) from None
        if not isinstance(payload, dict) \
                or payload.get("schema") != "repro.ExperimentTable":
            raise ValueError(
                "not an ExperimentTable JSON document (missing "
                "schema='repro.ExperimentTable')"
            )
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported ExperimentTable version "
                f"{payload.get('version')!r} (this engine reads 1)"
            )
        table = cls()
        for record in payload.get("results", []):
            table.append_record(record)
        return table

    def _first_seen(self, column: str) -> list:
        codes = self._data[column][:self._length]
        unique, first = np.unique(codes, return_index=True)
        order = np.argsort(first)
        return [self._labels[int(code)] for code in unique[order]]

    @property
    def scenarios(self) -> list:
        """Distinct scenario labels, in first-seen row order."""
        return self._first_seen("scenario")

    @property
    def models(self) -> list:
        """Distinct model labels, in first-seen row order."""
        return self._first_seen("model")

    @property
    def simulators(self) -> list:
        """Distinct simulator labels, in first-seen row order."""
        return self._first_seen("simulator")


#: Metrics averaged by :func:`mean_result` across the frames of a batch.
_MEAN_METRICS = (
    "cycles",
    "latency_ms",
    "fps",
    "energy_mj",
    "dram_bytes",
    "utilization",
)


def mean_result(per_frame: list) -> SimResult:
    """Aggregate the per-frame rows of one batched cell into a mean row.

    Every metric is the arithmetic mean of the per-frame values (so the
    mean ``fps`` is the mean of the per-frame rates, not the rate of the
    mean latency).  A metric the simulator does not produce stays
    ``None``.  The row carries ``frame="mean"`` and
    ``extras={"frames": N}``; per-layer detail is not aggregated.
    """
    if not per_frame:
        raise ValueError("mean_result needs at least one per-frame result")
    first = per_frame[0]
    values = {}
    for metric in _MEAN_METRICS:
        samples = [getattr(result, metric) for result in per_frame]
        if any(sample is None for sample in samples):
            values[metric] = None
        else:
            values[metric] = sum(samples) / len(samples)
    return SimResult(
        simulator=first.simulator,
        model=first.model,
        scenario=first.scenario,
        frame="mean",
        per_layer=[],
        extras={"frames": len(per_frame)},
        **values,
    )
