"""Substrate micro-simulators behind the unified engine interface.

The paper's component studies — Fig. 5(b)'s mapping-hardware comparison
and Fig. 6(c)'s DRAM-dataflow comparison — historically ran as bespoke
loops over random active sets.  These adapters put the same substrate
models (hash table, bitonic merge sorter, RGU, cache-based vs streamed
gather) behind the :class:`~repro.engine.simulators.Simulator` interface
so the sweeps run through the :class:`~repro.engine.ExperimentRunner`
like every other experiment: the swept quantity (active pillar count)
becomes the scenario axis, the substrate becomes the simulator axis, and
rule generation for each frame happens once in the shared trace cache no
matter how many substrates consume it.

Both adapters walk the trace's sparse layers, so they compose with full
model workloads too — e.g. mapping cycles of the hash table over an
entire SPP2 frame.
"""

from __future__ import annotations

from ..analysis.sparsity import ModelTrace
from ..core.config import SPADE_HE, SpadeConfig
from ..core.rgu import RGUModel
from ..hw.bitonic import BitonicMergeRuleGen
from ..hw.cache import DirectMappedCache
from ..hw.dram import DRAMModel, streaming_trace
from ..hw.hashtable import HashTableRuleGen
from .result import SimResult
from .simulators import Simulator, _cycles_to_ms, _fps

#: Mapping substrates of the Fig. 5(b) comparison.
MAPPING_SUBSTRATES = ("hash", "sorter", "rgu")

#: Gather dataflows of the Fig. 6(c) comparison.
GATHER_DATAFLOWS = ("cache", "stream", "ideal")


class MappingSim(Simulator):
    """Mapping-phase (rule building) cycles of one substrate.

    Args:
        substrate: ``"hash"`` (hash-table rule build), ``"sorter"``
            (bitonic merge sort) or ``"rgu"`` (the paper's streaming
            rule generation unit).
        config: SPADE config supplying the RGU parameters and the clock.
        name: Optional row label override.
    """

    def __init__(self, substrate: str, config: SpadeConfig = SPADE_HE,
                 name: str = None):
        if substrate not in MAPPING_SUBSTRATES:
            raise KeyError(
                f"unknown mapping substrate {substrate!r}; "
                f"choices: {MAPPING_SUBSTRATES}"
            )
        self.substrate = substrate
        self.config = config
        self.name = name or {
            "hash": "HashTable",
            "sorter": "MergeSorter",
            "rgu": "RGU",
        }[substrate]

    def _layer_cycles(self, layer) -> int:
        if self.substrate == "hash":
            return HashTableRuleGen().run(layer.in_coords,
                                          layer.in_shape).cycles
        if self.substrate == "sorter":
            return BitonicMergeRuleGen().run(
                layer.in_count, kernel_size=layer.spec.kernel_size
            ).cycles
        return RGUModel(self.config).cycles_for_count(
            layer.in_count, kernel_size=layer.spec.kernel_size
        )

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        per_layer = []
        total = 0
        for layer in trace.layers:
            if layer.rules is None:
                continue
            cycles = self._layer_cycles(layer)
            per_layer.append({
                "name": layer.spec.name,
                "cycles": cycles,
                "inputs": layer.in_count,
            })
            total += cycles
        latency_ms = _cycles_to_ms(total, self.config.clock_ghz)
        return SimResult(
            simulator=self.name,
            model=trace.spec.name,
            cycles=total,
            latency_ms=latency_ms,
            fps=_fps(latency_ms),
            energy_mj=None,
            dram_bytes=None,
            utilization=None,
            per_layer=per_layer,
            extras={"substrate": self.substrate},
            raw=None,
        )


class GatherDramSim(Simulator):
    """Input-gather DRAM cycles of one dataflow (paper Fig. 6(c)).

    * ``"cache"``  — hash mapping plus a direct-mapped cache, fetching
      input pillar vectors in output-stationary rule order (inputs are
      re-requested once per consuming kernel offset);
    * ``"stream"`` — the GSU dataflow: each active input streams from
      DRAM exactly once, sequentially;
    * ``"ideal"``  — the all-reuse lower bound, which for input traffic
      equals one sequential pass and therefore matches the GSU by
      construction.

    Args:
        cache_bytes / line_bytes: Geometry of the cache-based baseline.
        name: Optional row label override.
    """

    def __init__(self, dataflow: str, cache_bytes: int = 32 * 1024,
                 line_bytes: int = 64, clock_ghz: float = 1.0,
                 name: str = None):
        if dataflow not in GATHER_DATAFLOWS:
            raise KeyError(
                f"unknown gather dataflow {dataflow!r}; "
                f"choices: {GATHER_DATAFLOWS}"
            )
        self.dataflow = dataflow
        self.cache_bytes = cache_bytes
        self.line_bytes = line_bytes
        self.clock_ghz = clock_ghz
        self.name = name or {
            "cache": "Hash+Cache",
            "stream": "RGU+GSU",
            "ideal": "Ideal",
        }[dataflow]

    def _cache_cycles(self, layer) -> int:
        cache = DirectMappedCache(self.cache_bytes, self.line_bytes)
        dram = DRAMModel()
        channels = layer.spec.in_channels
        for pair in layer.rules.pairs:
            if not len(pair):
                continue
            # Output-stationary visit order: inputs re-requested per
            # kernel offset.
            addresses = pair.in_idx * channels
            dram.process_trace(cache.miss_addresses(addresses))
        return dram.stats.cycles

    def _streamed_cycles(self, layer) -> int:
        dram = DRAMModel()
        dram.process_trace(
            streaming_trace(layer.in_count * layer.spec.in_channels)
        )
        return dram.stats.cycles

    def run(self, trace: ModelTrace) -> SimResult:
        """Simulate one traced model; one :class:`SimResult` row."""
        per_layer = []
        total = 0
        for layer in trace.layers:
            if layer.rules is None:
                continue
            if self.dataflow == "cache":
                cycles = self._cache_cycles(layer)
            else:
                cycles = self._streamed_cycles(layer)
            per_layer.append({
                "name": layer.spec.name,
                "cycles": cycles,
                "inputs": layer.in_count,
            })
            total += cycles
        latency_ms = _cycles_to_ms(total, self.clock_ghz)
        return SimResult(
            simulator=self.name,
            model=trace.spec.name,
            cycles=total,
            latency_ms=latency_ms,
            fps=_fps(latency_ms),
            energy_mj=None,
            dram_bytes=None,
            utilization=None,
            per_layer=per_layer,
            extras={"dataflow": self.dataflow},
            raw=None,
        )
