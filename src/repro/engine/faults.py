"""Deterministic fault injection for chaos-testing the engine.

A :class:`FaultPlan` is a small textual program — parsed from the
``REPRO_ENGINE_FAULTS`` environment variable or the spec's ``faults``
knob — that arms *one-shot, counted* triggers at named injection sites
inside the engine and the dist layer.  Because every trigger fires on a
deterministic event count (the K-th unit, the N-th protocol message,
the N-th journal record) rather than a timer, a chaos test that passes
once passes always: the same plan against the same spec produces the
same failure at the same instant on every run.

Grammar (see ``docs/robustness.md`` for the prose version)::

    plan  := rule (";" rule)*
    rule  := kind [":" param ("," param)*]
    param := name "=" value

Kinds and their trigger parameters:

``kill_worker:unit=K``
    ``os._exit(137)`` in a worker process just before it executes its
    K-th work unit — a hard SIGKILL-style death mid-run.
``kill_run:record=N``
    ``os._exit(137)`` in the run process immediately *after* journal
    record N is durably written — simulates a coordinator SIGKILL at a
    checkpoint boundary (the canonical ``--resume`` scenario).
``truncate_journal:record=N``
    Write only half the bytes of journal record N, then
    ``os._exit(23)`` — a torn write plus crash, exercising the
    journal's tail-recovery path.
``drop_conn:after=N``
    Raise :class:`InjectedFault` (an ``OSError``) at the N-th protocol
    message sent or received by this process — the peer sees a dead
    socket.
``delay_conn:after=N,seconds=S``
    Sleep ``S`` seconds (default 1.0) before the N-th protocol
    message — a one-shot latency spike.
``stall_heartbeat:after=N``
    The worker's heartbeat loop goes silent after sending N-1
    heartbeats, so the coordinator's reaper declares it dead.
``coordinator_drop:unit=N``
    The coordinator drops the worker connection while assigning its
    N-th work unit — the unit requeues and the worker must reconnect.
``corrupt_cache:entry=N``
    Overwrite the N-th disk-cache artifact with garbage right after it
    is stored — exercises load-time quarantine.

Every rule may also carry ``p=<0..1]`` and ``seed=<int>``: when ``p``
is below 1 the trigger fires with probability ``p`` from a dedicated
``random.Random(seed)`` stream, so even probabilistic chaos replays
identically.  Rules are one-shot: after firing once they disarm.

The harness is process-global (installed via :func:`install` or lazily
from the environment on first :func:`check`), because the sites live in
deep library code with no runner in scope — and because environment
inheritance is exactly how worker *subprocesses* receive their plan.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time

from .settings import resolve_faults

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "check",
    "install",
    "installed_plan",
    "reset",
    "scoped",
]


class InjectedFault(OSError):
    """Raised at an injection site when a connection-fault rule fires.

    Subclasses :class:`OSError` so the dist layer's existing
    ``except (ProtocolError, OSError)`` handlers treat an injected
    connection drop exactly like a real peer failure.
    """


#: kind -> (site, trigger parameter name, extra parameter names)
FAULT_KINDS = {
    "kill_worker": ("worker.unit", "unit", ()),
    "kill_run": ("journal.record", "record", ()),
    "truncate_journal": ("journal.record", "record", ()),
    "drop_conn": ("protocol.message", "after", ()),
    "delay_conn": ("protocol.message", "after", ("seconds",)),
    "stall_heartbeat": ("worker.heartbeat", "after", ()),
    "coordinator_drop": ("coordinator.assign", "unit", ()),
    "corrupt_cache": ("cache.store", "entry", ()),
}

_COMMON_PARAMS = ("p", "seed")


def _parse_rule(text, index):
    """Parse one ``kind:key=value,...`` rule; raise ValueError with context."""
    head, _, tail = text.partition(":")
    kind = head.strip()
    if kind not in FAULT_KINDS:
        known = ", ".join(sorted(FAULT_KINDS))
        raise ValueError(
            f"rule {index + 1} ({text!r}): unknown fault kind {kind!r} "
            f"(known kinds: {known})"
        )
    site, trigger_name, extras = FAULT_KINDS[kind]
    params = {}
    if tail.strip():
        for piece in tail.split(","):
            name, sep, value = piece.partition("=")
            name = name.strip()
            if not sep or not name or not value.strip():
                raise ValueError(
                    f"rule {index + 1} ({text!r}): malformed parameter "
                    f"{piece.strip()!r} (expected name=value)"
                )
            if name in params:
                raise ValueError(
                    f"rule {index + 1} ({text!r}): duplicate parameter {name!r}"
                )
            params[name] = value.strip()
    allowed = {trigger_name, *extras, *_COMMON_PARAMS}
    for name in params:
        if name not in allowed:
            raise ValueError(
                f"rule {index + 1} ({text!r}): unknown parameter {name!r} "
                f"for {kind} (allowed: {', '.join(sorted(allowed))})"
            )

    def _positive_int(name, default):
        raw = params.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value < 1:
            raise ValueError(
                f"rule {index + 1} ({text!r}): {name} must be a positive "
                f"integer, got {raw!r}"
            )
        return value

    trigger = _positive_int(trigger_name, 1)
    seconds = 1.0
    if "seconds" in extras and params.get("seconds") is not None:
        try:
            seconds = float(params["seconds"])
        except ValueError:
            seconds = -1.0
        if seconds <= 0:
            raise ValueError(
                f"rule {index + 1} ({text!r}): seconds must be a positive "
                f"number, got {params['seconds']!r}"
            )
    probability = 1.0
    if params.get("p") is not None:
        try:
            probability = float(params["p"])
        except ValueError:
            probability = -1.0
        if not 0.0 < probability <= 1.0:
            raise ValueError(
                f"rule {index + 1} ({text!r}): p must be in (0, 1], "
                f"got {params['p']!r}"
            )
    seed = _positive_int("seed", 1) if params.get("seed") is not None else 0
    return FaultRule(
        kind=kind,
        site=site,
        trigger=trigger,
        seconds=seconds,
        probability=probability,
        seed=seed,
    )


class FaultRule:
    """One armed trigger: fire ``kind`` at the ``trigger``-th site event."""

    __slots__ = ("kind", "site", "trigger", "seconds", "probability", "seed")

    def __init__(self, kind, site, trigger, seconds=1.0, probability=1.0, seed=0):
        """Store the parsed rule fields (see module grammar)."""
        self.kind = kind
        self.site = site
        self.trigger = trigger
        self.seconds = seconds
        self.probability = probability
        self.seed = seed

    def __repr__(self):
        return (
            f"FaultRule(kind={self.kind!r}, site={self.site!r}, "
            f"trigger={self.trigger})"
        )


class FaultPlan:
    """An immutable, parsed set of :class:`FaultRule` triggers."""

    def __init__(self, rules=(), text=""):
        """Wrap already-parsed ``rules``; prefer :meth:`parse` for text."""
        self.rules = tuple(rules)
        self.text = text

    @classmethod
    def parse(cls, text):
        """Parse the ``kind:key=value,...;kind...`` grammar into a plan.

        ``None`` or blank text parses to an empty plan.  Raises
        :class:`ValueError` naming the offending rule on any grammar
        error.
        """
        if text is None:
            return cls()
        text = str(text).strip()
        if not text:
            return cls()
        rules = []
        for index, piece in enumerate(p for p in text.split(";")):
            piece = piece.strip()
            if not piece:
                continue
            rules.append(_parse_rule(piece, index))
        return cls(rules, text)

    def arm(self):
        """Return a fresh :class:`FaultInjector` with all counters at zero."""
        return FaultInjector(self)

    def __bool__(self):
        return bool(self.rules)

    def __repr__(self):
        return f"FaultPlan({self.text!r})"


class FaultInjector:
    """Mutable firing state for a plan: per-rule event counters + one-shot."""

    def __init__(self, plan):
        """Arm ``plan``'s rules with zeroed counters."""
        self.plan = plan
        self._lock = threading.Lock()
        self._counts = [0] * len(plan.rules)
        self._fired = [False] * len(plan.rules)
        self._rngs = [
            random.Random(rule.seed) if rule.probability < 1.0 else None
            for rule in plan.rules
        ]

    def fire(self, site, **context):
        """Count one event at ``site``; return the rule that fires, if any.

        Each matching armed rule's counter advances by one; a rule whose
        counter reaches its trigger fires (subject to its ``p``
        probability drawn from its seeded stream) and disarms.  At most
        one rule fires per call.
        """
        with self._lock:
            for index, rule in enumerate(self.plan.rules):
                if rule.site != site or self._fired[index]:
                    continue
                self._counts[index] += 1
                if self._counts[index] < rule.trigger:
                    continue
                rng = self._rngs[index]
                if rng is not None and rng.random() > rule.probability:
                    self._counts[index] -= 1  # re-roll at the next event
                    continue
                self._fired[index] = True
                return rule
        return None


_LOCK = threading.Lock()
_INSTALLED = None  # explicitly installed FaultInjector (or None)
_ENV_INJECTOR = None  # injector lazily armed from REPRO_ENGINE_FAULTS
_ENV_LOADED = False


def install(plan):
    """Install ``plan`` (text or :class:`FaultPlan`) process-wide.

    Returns the armed :class:`FaultInjector`.  An explicit install
    shadows any environment plan until :func:`reset`.
    """
    global _INSTALLED
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan.parse(plan)
    injector = plan.arm()
    with _LOCK:
        _INSTALLED = injector if plan else None
    return injector


def reset():
    """Disarm any installed plan and forget the cached environment plan."""
    global _INSTALLED, _ENV_INJECTOR, _ENV_LOADED
    with _LOCK:
        _INSTALLED = None
        _ENV_INJECTOR = None
        _ENV_LOADED = False


def installed_plan():
    """Return the text of the active plan, or ``None`` when disarmed."""
    injector = _active()
    return injector.plan.text or None if injector is not None else None


def _active():
    """Return the effective injector: explicit install, else env (cached)."""
    global _ENV_INJECTOR, _ENV_LOADED
    if _INSTALLED is not None:
        return _INSTALLED
    if not _ENV_LOADED:
        with _LOCK:
            if not _ENV_LOADED:
                try:
                    text = resolve_faults()
                except ValueError:
                    text = None  # a bad env plan must not crash runs
                plan = FaultPlan.parse(text) if text else FaultPlan()
                _ENV_INJECTOR = plan.arm() if plan else None
                _ENV_LOADED = True
    return _ENV_INJECTOR


def check(site, **context):
    """Count one event at ``site`` and act on any rule that fires.

    Connection kinds raise :class:`InjectedFault`; ``delay_conn``
    sleeps in place; ``kill_worker`` exits the process with status 137.
    Kinds whose behaviour lives at the call site (``stall_heartbeat``,
    ``corrupt_cache``, ``kill_run``, ``truncate_journal``) are returned
    as the kind string for the caller to enact.  Returns ``None`` when
    nothing fires — the overwhelmingly common, cheap path.
    """
    injector = _active()
    if injector is None:
        return None
    rule = injector.fire(site, **context)
    if rule is None:
        return None
    if rule.kind in ("drop_conn", "coordinator_drop"):
        raise InjectedFault(f"injected fault: {rule.kind} at {site} {context!r}")
    if rule.kind == "delay_conn":
        time.sleep(rule.seconds)
        return rule.kind
    if rule.kind == "kill_worker":
        os._exit(137)
    return rule.kind


@contextlib.contextmanager
def scoped(plan):
    """Install ``plan`` for the duration of a ``with`` block.

    A falsy plan is a no-op (any environment plan stays in effect).  On
    exit the previous explicit install, if any, is restored.
    """
    global _INSTALLED
    if plan is None or (isinstance(plan, str) and not plan.strip()):
        yield None
        return
    with _LOCK:
        previous = _INSTALLED
    injector = install(plan)
    try:
        yield injector
    finally:
        with _LOCK:
            _INSTALLED = previous
