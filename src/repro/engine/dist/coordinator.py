"""The distributed coordinator and the ``"dist"`` execution backend.

:class:`DistBackend` is a :class:`~repro.engine.backends.Backend` like
any other — ``ExperimentRunner`` hands it the planned work groups and
gets back one row list per group — but execution happens on remote
worker processes started with ``repro worker --connect HOST:PORT``:

1. **Serialization.**  Each work group (one scenario x model with its
   surviving simulators) becomes a self-contained
   :class:`~repro.engine.spec.ExperimentSpec` dict — exactly the JSON a
   spec file carries, restricted to that group — so a worker needs
   nothing but the ``repro`` package to execute it.  Groups are chunked
   into *units* (``chunksize`` groups per dispatch, default 1), the
   granularity of scheduling and of requeue.
2. **Trace shipping.**  Before dispatching, the coordinator's trace
   stage traces every unique (scenario, model, frame) once into the
   shared :class:`~repro.engine.cache.TraceCache` disk tier — the
   ``REPRO_TRACE_CACHE_DIR`` directory when set (shared storage in a
   real deployment), else a run-scoped temporary directory that still
   serves loopback workers.  Workers then load trace artifacts by
   content key instead of re-running rulegen per worker.
3. **Pull scheduling.**  Workers *request* units when idle
   (work-stealing semantics: fast workers simply pull more), execute
   them serially, and stream row records back.
4. **Fault tolerance.**  Workers heartbeat on a fixed interval; a
   worker that goes silent while holding a unit, dies (closed socket),
   reports an execution error, or exceeds the per-unit timeout has its
   unit requeued onto the surviving workers.  Each unit carries an
   attempt cap — exhausting it fails the run with a
   :class:`DistRunError` naming the unit — and results are keyed by
   unit, so the table is deterministic regardless of which worker ran
   what (duplicate results from a presumed-dead worker are ignored).

Because results travel as JSON records, returned rows match the serial
backend's rows *as serialized*: ``raw`` is ``None`` (the process
backend's contract too) and ``extras``/``per_layer`` carry their
JSON-safe projection — CSV/JSON outputs are byte-identical to a serial
run's.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from datetime import datetime, timezone

from .. import faults, telemetry
from ..backends import (
    Backend,
    BackendUnavailable,
    _model_name,
    chunk_payload,
    journal_of,
    observe_phase,
    observe_unit_done,
    observer_of,
    report_group_done,
    run_scoped_cache_dir,
)
from ..cache import TraceCache
from ..registry import register_backend
from ..result import _record_to_result
from ..settings import DIST_TOKEN_ENV_VAR, DistSettings
from .protocol import (
    ProtocolError,
    auth_nonce,
    message,
    recv_message,
    send_message,
    verify_digest,
)


class DistRunError(RuntimeError):
    """A distributed run that could not complete (unit exhausted its
    attempt cap, or the worker fleet disappeared).

    An attempt-cap failure carries ``attempts``: the failed unit's full
    dispatch history as dicts (worker id, assignment/failure timestamps,
    failure reason), so the error names more than the unit.
    """

    #: Per-attempt history dicts of the failing unit (may be empty).
    attempts = ()


class DistStartTimeout(BackendUnavailable, DistRunError):
    """No worker connected within ``start_timeout`` — the dist backend
    never started.  Subclasses :class:`BackendUnavailable` so a run
    with the ``degrade`` knob on falls down the backend ladder
    (process, then serial) instead of failing."""


def _utc_now() -> str:
    """Wall-clock timestamp for attempt histories (ISO-8601, UTC)."""
    return datetime.now(timezone.utc).isoformat(timespec="milliseconds")


# ---------------------------------------------------------------------------
# Work-unit serialization
# ---------------------------------------------------------------------------


def group_spec_dict(runner, group, base: dict = None,
                    index_of: dict = None) -> dict:
    """One work group as a self-contained ExperimentSpec dict.

    The group's simulator *instances* are mapped back to the source
    spec's registry strings by identity, so the worker re-resolves the
    same factories; the cell filter is already baked in (the group only
    carries surviving simulators), hence ``cells`` is empty.
    ``base``/``index_of`` let :func:`build_units` hoist the (identical)
    spec serialization and identity map out of its per-group loop.
    """
    if base is None:
        base = runner.source_spec.to_dict()
    if index_of is None:
        index_of = {
            id(simulator): position
            for position, simulator in enumerate(runner.simulators)
        }
    simulators = [
        base["simulators"][index_of[id(simulator)]]
        for simulator in group.simulators
    ]
    scenario = group.scenario
    return {
        "version": base["version"],
        "name": base["name"],
        "simulators": simulators,
        "models": [_model_name(group.model)],
        "scenarios": [{
            "name": scenario.name,
            "seed": scenario.seed,
            "frames": scenario.frames,
        }],
        "backend": "serial",
        "workers": 1,
        "trace_workers": 1,
        "rulegen_shards": runner.rulegen_shards,
        "delta_trace": runner.delta_trace,
        "delta_threshold": runner.delta_threshold,
        "cache_dir": None,       # the worker's cache is handed over welcome
        "frame_provider": base["frame_provider"],
        "cells": [],
        "out": None,
    }


def build_units(runner, groups: list, chunksize: int) -> list:
    """The dispatchable units of one plan: chunked, labelled, indexed."""
    base = runner.source_spec.to_dict()
    index_of = {
        id(simulator): position
        for position, simulator in enumerate(runner.simulators)
    }
    payload = [
        {"index": index,
         "spec": group_spec_dict(runner, group, base, index_of)}
        for index, group in enumerate(groups)
    ]
    labels = [
        f"{group.scenario.name}/{_model_name(group.model)}"
        for group in groups
    ]
    units = []
    for unit_id, chunk in enumerate(chunk_payload(payload, 1, chunksize)):
        units.append({
            "unit": unit_id,
            "groups": chunk,
            "label": ", ".join(labels[entry["index"]] for entry in chunk),
        })
    return units


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _WorkerConn:
    """Coordinator-side state of one connected worker."""

    def __init__(self, sock, worker_id: str, pid: int):
        self.sock = sock
        self.worker_id = worker_id
        self.pid = pid
        self.last_seen = time.monotonic()
        self.inflight = None          # unit id this worker is executing
        self.dead = False
        self.graceful = False         # announced goodbye (drain mode)
        self.partial = {}             # unit id -> staged partial result

    def close(self) -> None:
        """Tear the worker's socket down, both directions."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class Coordinator:
    """Serve one run's units to pulling workers, fault-tolerantly.

    The coordinator is run-scoped: :meth:`serve` binds the listening
    socket, dispatches every unit, and returns the decoded rows per
    group index (or raises :class:`DistRunError`).  All shared state is
    guarded by one condition variable; per-connection handler threads,
    the accept loop and the timeout monitor coordinate through it.
    """

    def __init__(self, units: list, settings: DistSettings,
                 cache_dir: str = None, on_unit_done=None,
                 hold_units: bool = False, on_group_done=None):
        self.settings = settings
        self.cache_dir = cache_dir
        self.on_unit_done = on_unit_done
        #: Optional per-group stats callback ``(group_index, rows,
        #: seconds, worker_id)``, fired once per group of each first
        #: *accepted* unit result (requeued duplicates never re-fire) —
        #: how :class:`DistBackend` feeds worker-side timings into a
        #: :class:`~repro.engine.manifest.RunObserver`.
        self.on_group_done = on_group_done
        self._units = {unit["unit"]: unit for unit in units}
        self._attempts = {unit["unit"]: 0 for unit in units}
        #: unit id -> list of attempt dicts (worker, timestamps,
        #: failure reason) — attached to the DistRunError when a unit
        #: exhausts its cap, so the failure names every try.
        self._history = {unit["unit"]: [] for unit in units}
        self._last_error = {}
        # hold_units lets the backend bind the listener (so workers can
        # connect and handshake) while its trace stage is still
        # running; workers politely receive ``wait`` until
        # release_units() opens the queue.
        self._held = (deque(unit["unit"] for unit in units)
                      if hold_units else deque())
        self._pending = (deque() if hold_units
                         else deque(unit["unit"] for unit in units))
        self._inflight = {}           # unit id -> (worker, deadline)
        self._done = set()
        self._rows = {}               # group index -> [SimResult, ...]
        self._failure = None
        self._cond = threading.Condition()
        # Keyed by connection object identity, never by the
        # worker-supplied name: two workers may legitimately announce
        # the same id (identical container hostnames and pids), and a
        # collision must not let one connection's death reap the other.
        self._workers = {}            # id(_WorkerConn) -> _WorkerConn
        self._stop = threading.Event()
        self._no_worker_since = None  # set while zero workers are live
        self._listener = None
        self._threads = []
        self.port = None
        self.stats = {
            "units": len(units),
            "workers_seen": 0,
            "requeues": 0,
            "worker_failures": 0,
        }
        #: Every worker that ever completed the handshake, in arrival
        #: order — the manifest's worker roster (worker_snapshot() only
        #: shows currently-live workers).
        self.roster = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the listener and start serving connections (idempotent).

        Separated from :meth:`serve` so the backend can open the door
        *before* its trace stage: workers started first (the documented
        workflow) connect and handshake immediately instead of burning
        their connection-retry window against a port that is not bound
        until minutes of rulegen finish.
        """
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.settings.host, self.settings.port))
        except OSError as error:
            listener.close()
            raise DistRunError(
                f"coordinator cannot bind "
                f"{self.settings.host}:{self.settings.port}: {error}"
            ) from None
        listener.listen()
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._no_worker_since = time.monotonic()
        self._threads = [
            threading.Thread(target=self._accept_loop,
                             name="repro-dist-accept", daemon=True),
            threading.Thread(target=self._monitor_loop,
                             name="repro-dist-monitor", daemon=True),
        ]
        for thread in self._threads:
            thread.start()

    def release_units(self) -> None:
        """Open the queue to held units (no-op without ``hold_units``)."""
        with self._cond:
            self._pending.extend(self._held)
            self._held.clear()
            self._cond.notify_all()

    def shutdown(self, close_workers: bool = True) -> None:
        """Stop threads and close sockets (idempotent, safe anytime)."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if close_workers:
            with self._cond:
                workers = list(self._workers.values())
            for worker in workers:
                worker.close()

    def serve(self) -> dict:
        """Dispatch every unit; block until done; return rows per group.

        Raises:
            DistRunError: a unit exhausted its attempt cap, or no
                workers were available for ``start_timeout`` seconds.
        """
        self.start()
        self.release_units()
        try:
            with self._cond:
                while self._failure is None and not self._completed():
                    self._cond.wait(0.2)
                failure = self._failure
        finally:
            # On failure, busy workers are executing doomed units; cut
            # them loose instead of letting them stream stale results.
            # On success, leave the sockets open so the handlers can
            # answer each worker's next request with ``shutdown``.
            self.shutdown(close_workers=self._failure is not None)
        for thread in self._threads:
            thread.join(timeout=2.0)
        if failure is not None:
            raise failure
        return dict(self._rows)

    def _completed(self) -> bool:
        return len(self._done) == len(self._units)

    def worker_snapshot(self) -> list:
        """Live workers as dicts (id, pid, in-flight unit) — for tests
        and operator tooling."""
        with self._cond:
            return [
                {
                    "worker": worker.worker_id,
                    "pid": worker.pid,
                    "inflight": worker.inflight,
                }
                for worker in self._workers.values()
                if not worker.dead
            ]

    # -- accept / per-worker handler ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve_worker, args=(conn,),
                             name="repro-dist-worker", daemon=True).start()

    def _log(self, text: str) -> None:
        """Operational chatter — stderr, like the worker's log lines."""
        telemetry.log_line(f"[repro coordinator] {text}")

    def _authenticate(self, conn, first: dict) -> bool:
        """Challenge the peer when a token is configured.

        The peer's *first* message is already read; with a token set,
        a ``challenge`` goes out and the next message must be a valid
        ``auth`` before that first message is processed.  Returns False
        (peer logged and dropped) on any handshake failure.
        """
        token = getattr(self.settings, "token", None)
        if not token:
            return True
        nonce = auth_nonce()
        send_message(conn, message("challenge", nonce=nonce))
        try:
            reply = recv_message(conn)
        except (ProtocolError, OSError):
            reply = {}
        if (reply.get("type") != "auth"
                or not verify_digest(token, nonce, reply.get("digest"))):
            peer = first.get("worker") or first.get("type") or "peer"
            self._log(
                f"dropping unauthenticated {peer!r} (failed the "
                f"{DIST_TOKEN_ENV_VAR} challenge)"
            )
            try:
                conn.close()
            except OSError:
                pass
            return False
        return True

    def _handle_peer(self, conn, first: dict) -> None:
        """A connection whose first message is not ``hello``.

        The plain coordinator serves only workers, so unknown peers
        are dropped; the experiment service overrides this hook to
        answer client requests on the same socket.
        """
        conn.close()

    def _serve_worker(self, conn) -> None:
        # Workers heartbeat every heartbeat_interval even while idle,
        # so worker_timeout seconds of pure socket silence means the
        # host vanished without FIN/RST.  A read timeout here is what
        # catches a silently-dead *idle* worker (the monitor only
        # watches workers holding units) — without it a dead idle
        # worker keeps the run registered as "has workers" forever.
        conn.settimeout(max(self.settings.worker_timeout,
                            2 * self.settings.heartbeat_interval))
        worker = None
        try:
            hello = recv_message(conn)
            if not self._authenticate(conn, hello):
                return
            if hello.get("type") != "hello":
                self._handle_peer(conn, hello)
                return
            worker = _WorkerConn(
                conn,
                worker_id=str(hello.get("worker") or f"worker-{id(conn)}"),
                pid=hello.get("pid"),
            )
            with self._cond:
                self.stats["workers_seen"] += 1
                self._workers[id(worker)] = worker
                self.roster.append({"worker": worker.worker_id,
                                    "pid": worker.pid})
                self._no_worker_since = None
            send_message(conn, message(
                "welcome",
                cache_dir=self.cache_dir,
                heartbeat_interval=self.settings.heartbeat_interval,
                batch_rows=getattr(self.settings, "batch_rows", 0),
                telemetry=telemetry.active_tracer() is not None,
            ))
            while True:
                msg = recv_message(conn)
                kind = msg.get("type")
                if kind == "heartbeat":
                    telemetry.metrics().count(
                        "repro_heartbeats_total", worker=worker.worker_id)
                    with self._cond:
                        worker.last_seen = time.monotonic()
                elif kind == "request":
                    if not self._handle_request(worker):
                        return
                elif kind == "result":
                    self._handle_result(worker, msg)
                elif kind == "error":
                    self._handle_error(worker, msg)
                elif kind == "goodbye":
                    # Announced exit (drain mode): not a failure.
                    worker.graceful = True
                    return
                # Unknown types are ignored (forward compatibility).
        except (ProtocolError, OSError):
            pass
        finally:
            if worker is not None:
                self._reap(worker, "connection lost")
            else:
                try:
                    conn.close()
                except OSError:
                    pass

    #: How long a request may idle-wait before the coordinator answers
    #: ``wait`` (the worker immediately re-requests).  Guaranteed
    #: traffic lets workers run a bounded read timeout instead of
    #: blocking forever on a coordinator host that vanished.
    IDLE_REPLY_SECONDS = 2.0

    def _handle_request(self, worker) -> bool:
        """Assign the next unit (blocking until one is available).

        Returns False after replying ``shutdown`` — the handler then
        drops the connection.
        """
        idle_deadline = time.monotonic() + self.IDLE_REPLY_SECONDS
        # The span covers request arrival to reply choice: the time a
        # ready worker sat waiting for the scheduler to hand it a unit.
        with telemetry.span("queue-wait", "scheduler",
                            worker=worker.worker_id), self._cond:
            while True:
                if worker.dead:
                    return False
                if self._failure is not None or self._completed():
                    reply = message("shutdown")
                    break
                worker.last_seen = time.monotonic()
                if self._pending:
                    unit_id = self._pending.popleft()
                    self._attempts[unit_id] += 1
                    self._history[unit_id].append({
                        "attempt": self._attempts[unit_id],
                        "worker": worker.worker_id,
                        "assigned_at": _utc_now(),
                    })
                    deadline = (time.monotonic()
                                + self.settings.unit_timeout)
                    self._inflight[unit_id] = (worker, deadline)
                    worker.inflight = unit_id
                    unit = self._units[unit_id]
                    reply = message("unit", unit=unit_id,
                                    groups=unit["groups"])
                    break
                if time.monotonic() >= idle_deadline:
                    reply = message("wait")
                    break
                # Idle: wait for a requeue or for completion.
                self._cond.wait(0.25)
        # Chaos harness: coordinator_drop:unit=N raises here (an
        # OSError), so the handler reaps this connection and the unit
        # requeues — the worker must survive the dropped socket.
        if reply["type"] == "unit":
            faults.check("coordinator.assign", unit=reply.get("unit"),
                         worker=worker.worker_id)
        send_message(worker.sock, reply)
        return reply["type"] != "shutdown"

    def _handle_result(self, worker, msg: dict) -> None:
        unit_id = msg.get("unit")
        if msg.get("done") is False:
            # A partial flush (result batching): stage the rows on the
            # connection until the unit's final frame arrives — the
            # unit books exactly once, whole, so requeue accounting is
            # untouched by the framing granularity.
            with self._cond:
                worker.last_seen = time.monotonic()
                staged = worker.partial.setdefault(
                    unit_id, {"groups": {}, "timings": {}})
                staged["groups"].update(msg.get("groups") or {})
                staged["timings"].update(msg.get("timings") or {})
            return
        staged = worker.partial.pop(unit_id, None)
        raw_groups = dict((staged or {}).get("groups") or {})
        raw_groups.update(msg.get("groups") or {})
        decoded = {
            int(index): [_record_to_result(record) for record in records]
            for index, records in raw_groups.items()
        }
        timings = dict((staged or {}).get("timings") or {})
        timings.update(msg.get("timings") or {})
        with self._cond:
            worker.last_seen = time.monotonic()
            if worker.inflight == unit_id:
                worker.inflight = None
            if unit_id not in self._units or unit_id in self._done:
                return            # duplicate from a presumed-dead worker
            self._inflight.pop(unit_id, None)
            # A stale worker may complete a unit that was already
            # requeued; first valid result wins (rows are deterministic).
            try:
                self._pending.remove(unit_id)
            except ValueError:
                pass
            self._rows.update(decoded)
            self._done.add(unit_id)
            for entry in reversed(self._history.get(unit_id, [])):
                if (entry["worker"] == worker.worker_id
                        and "failed_at" not in entry):
                    entry["completed_at"] = _utc_now()
                    break
            self._cond.notify_all()
        # Only an *accepted* result reaches this point (duplicates
        # returned above, still holding their spans) — so a resent
        # unit's spans and row counts book exactly once, from
        # whichever worker's result won, like the stats below.
        tracer = telemetry.active_tracer()
        spans = msg.get("spans")
        if spans and tracer is not None:
            tracer.ingest(spans, worker.worker_id)
        telemetry.metrics().count(
            "repro_rows_streamed_total",
            sum(len(rows) for rows in decoded.values()),
            worker=worker.worker_id,
        )
        # Callbacks run outside the lock; stats ride the same accepted
        # result as the rows, so requeued units still report exactly
        # once, from whichever worker's result won.
        if self.on_group_done is not None:
            for index, rows in decoded.items():
                self.on_group_done(
                    index, rows,
                    float(timings.get(str(index)) or 0.0),
                    worker.worker_id,
                )
        if self.on_unit_done is not None:
            self.on_unit_done(len(decoded))

    def _handle_error(self, worker, msg: dict) -> None:
        unit_id = msg.get("unit")
        with self._cond:
            worker.last_seen = time.monotonic()
            worker.partial.pop(unit_id, None)
            if worker.inflight == unit_id:
                worker.inflight = None
            # Only the current owner's error counts: a stale report
            # from a worker whose unit was already requeued (timeout
            # races) must not pop another worker's assignment.
            entry = self._inflight.get(unit_id)
            if entry is not None and entry[0] is worker:
                self._inflight.pop(unit_id)
                self._requeue_or_fail(
                    unit_id,
                    f"failed on worker {worker.worker_id!r}: "
                    f"{msg.get('error')}",
                )
            self._cond.notify_all()

    # -- fault handling ----------------------------------------------------

    def _requeue_or_fail(self, unit_id, reason: str) -> None:
        """Requeue one unit, or fail the run at the attempt cap.

        Caller holds the condition lock.
        """
        self._last_error[unit_id] = reason
        history = self._history.get(unit_id, [])
        for entry in reversed(history):
            if "failed_at" not in entry and "completed_at" not in entry:
                entry["failed_at"] = _utc_now()
                entry["reason"] = reason
                break
        if unit_id in self._done:
            return
        if self._attempts[unit_id] >= self.settings.max_attempts:
            label = self._units[unit_id]["label"]
            trail = "; ".join(
                f"attempt {entry['attempt']} on {entry['worker']!r} "
                f"at {entry['assigned_at']}"
                + (f": {entry['reason']}" if entry.get("reason") else "")
                for entry in history
            )
            error = DistRunError(
                f"work unit {unit_id} ({label}) exhausted "
                f"{self.settings.max_attempts} attempt(s); "
                f"last failure: {reason}"
                + (f" [{trail}]" if trail else "")
            )
            error.attempts = [dict(entry) for entry in history]
            self._register_failure(unit_id, error)
        else:
            self.stats["requeues"] += 1
            telemetry.metrics().count("repro_requeues_total")
            self._pending.appendleft(unit_id)

    def _register_failure(self, unit_id, error) -> None:
        """Book a unit's attempt-cap exhaustion as a fatal failure.

        The run-scoped coordinator fails the whole run; the experiment
        service's fleet overrides this to fail only the unit's run.
        Caller holds the condition lock.
        """
        self._failure = error

    def _reap(self, worker, reason: str) -> None:
        """Mark one worker dead and requeue anything it held."""
        with self._cond:
            already = worker.dead
            worker.dead = True
            self._workers.pop(id(worker), None)
            unit_id = worker.inflight
            worker.inflight = None
            if not already and not worker.graceful \
                    and not self._completed() \
                    and self._failure is None:
                self.stats["worker_failures"] += 1
            if unit_id is not None:
                entry = self._inflight.get(unit_id)
                if entry is not None and entry[0] is worker:
                    self._inflight.pop(unit_id)
                    self._requeue_or_fail(
                        unit_id,
                        f"worker {worker.worker_id!r} {reason}",
                    )
            if not self._workers:
                self._no_worker_since = time.monotonic()
            self._cond.notify_all()
        worker.close()

    def _abandon_unit(self, unit_id, worker, reason: str) -> None:
        """Requeue a timed-out unit WITHOUT destroying its worker.

        The worker is alive and heartbeating — the unit is just slower
        than the budget.  It is requeued onto idle workers (or fails at
        the attempt cap), while the original execution keeps running:
        if it finishes first, its result is still accepted (rows are
        deterministic), and the worker then pulls fresh work normally.
        Reaping here would convert one slow unit into the loss of
        ``max_attempts`` healthy workers.

        Caller holds the condition lock.
        """
        entry = self._inflight.get(unit_id)
        if entry is None or entry[0] is not worker:
            return
        self._inflight.pop(unit_id)
        if worker.inflight == unit_id:
            worker.inflight = None
        self._requeue_or_fail(unit_id, reason)
        self._cond.notify_all()

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            time.sleep(0.1)
            stale = []
            with self._cond:
                now = time.monotonic()
                for unit_id, (worker, deadline) in list(
                        self._inflight.items()):
                    if now > deadline:
                        self._abandon_unit(
                            unit_id, worker,
                            f"unit timed out after "
                            f"{self.settings.unit_timeout:g}s",
                        )
                    elif (now - worker.last_seen
                          > self.settings.worker_timeout):
                        stale.append((
                            worker,
                            f"heartbeat lost for "
                            f"{self.settings.worker_timeout:g}s",
                        ))
                if (self._failure is None and not self._completed()
                        and self._no_worker_since is not None
                        and now - self._no_worker_since
                        > self.settings.start_timeout):
                    self._failure = DistStartTimeout(
                        f"no connected workers for "
                        f"{self.settings.start_timeout:g}s — start some "
                        f"with `repro worker --connect "
                        f"{self.settings.host}:{self.port}`"
                    )
                    self._cond.notify_all()
            for worker, reason in stale:
                self._reap(worker, reason)


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


@register_backend("dist")
class DistBackend(Backend):
    """Coordinator/worker distributed execution over TCP.

    The runner must be built from an :class:`ExperimentSpec`
    (``spec.build_runner()`` or ``repro run``) so work units can be
    serialized; workers are separate ``repro worker --connect
    HOST:PORT`` processes, on this machine or others.  Every knob
    defaults through :class:`~repro.engine.settings.DistSettings`
    (``REPRO_ENGINE_DIST_*`` environment variables).

    Args mirror :class:`DistSettings`; ``None`` inherits the
    environment.
    """

    name = "dist"

    def __init__(self, host=None, port=None, chunksize=None,
                 unit_timeout=None, heartbeat_interval=None,
                 worker_timeout=None, max_attempts=None,
                 start_timeout=None, trace_stage=None, token=None,
                 batch_rows=None):
        self._overrides = {
            "host": host,
            "port": port,
            "chunksize": chunksize,
            "unit_timeout": unit_timeout,
            "heartbeat_interval": heartbeat_interval,
            "worker_timeout": worker_timeout,
            "max_attempts": max_attempts,
            "start_timeout": start_timeout,
            "trace_stage": trace_stage,
            "token": token,
            "batch_rows": batch_rows,
        }
        #: The coordinator of the most recent ``execute`` call — state
        #: introspection for tests and operator tooling.
        self.last_coordinator = None

    @staticmethod
    def incompatibility(runner) -> str:
        """Why this runner cannot serialize into dist units, or None."""
        from ..runner import FrameProvider

        if runner.trace_provider is not None:
            return (
                "DistBackend cannot ship a trace_provider closure to "
                "remote workers; workers trace through the default "
                "frame path — use the serial or thread backend"
            )
        spec = getattr(runner, "source_spec", None)
        if spec is None:
            return (
                "DistBackend needs a runner built from an "
                "ExperimentSpec (spec.build_runner() or `repro run`), "
                "so work units can be serialized to workers"
            )
        try:
            spec.to_dict()
        except ValueError as error:
            return f"DistBackend cannot serialize the experiment: {error}"
        from ..spec import DEFAULT_FRAME_PROVIDER

        # Workers re-create frame providers from the registry NAME, so
        # any caller-supplied provider *instance* (and any non-stock
        # type under the default name) would be silently ignored
        # remotely — reject rather than let tables quietly diverge.
        provider = runner.frame_provider
        if spec.frame_provider == DEFAULT_FRAME_PROVIDER:
            if type(provider) is not FrameProvider:
                return (
                    "DistBackend re-creates frame providers by "
                    "registry name inside each worker; a custom "
                    f"{type(provider).__name__} instance would be "
                    "silently ignored — use the serial or thread "
                    "backend"
                )
        elif getattr(runner, "frame_provider_explicit", False):
            return (
                "DistBackend re-creates frame providers by registry "
                f"name ({spec.frame_provider!r}) inside each worker; "
                f"the {type(provider).__name__} instance passed to "
                "build_runner would be silently ignored — drop the "
                "instance or use the serial or thread backend"
            )
        return None

    def execute(self, runner, groups: list) -> list:
        """Serve the plan to connected workers; reassemble their rows."""
        reason = self.incompatibility(runner)
        if reason is not None:
            raise ValueError(reason)
        if not groups:
            return []
        settings = DistSettings.resolve(**self._overrides)
        units = build_units(runner, groups, settings.chunksize)
        observer = observer_of(runner)
        journal = journal_of(runner)

        def group_stats(index, rows, seconds, worker_id):
            """Book one accepted unit result as an observer record."""
            # Worker-side timings arrive with each accepted result and
            # land in the observer as ordinary unit records, tagged
            # with the executing worker's id.
            group = groups[index]
            observe_unit_done(runner, group.scenario.name,
                              _model_name(group.model), seconds, rows,
                              worker=worker_id)

        with run_scoped_cache_dir() as (cache_dir, _):
            coordinator = Coordinator(
                units,
                settings=settings,
                cache_dir=cache_dir,
                on_unit_done=lambda count: report_group_done(runner,
                                                             count),
                hold_units=settings.trace_stage,
                on_group_done=group_stats
                if (observer is not None or journal is not None)
                else None,
            )
            self.last_coordinator = coordinator
            # Bind before tracing: workers started first (the
            # documented workflow) connect and handshake while the
            # trace stage fills the shared store; the queue opens when
            # the artifacts are ready.
            coordinator.start()
            try:
                if settings.trace_stage:
                    trace_started = time.monotonic()
                    self._trace_stage(runner, groups, cache_dir)
                    observe_phase(runner, "trace",
                                  time.monotonic() - trace_started)
                    coordinator.release_units()
                rows_by_group = coordinator.serve()
            except BaseException:
                coordinator.shutdown()
                raise
        if observer is not None:
            observer.record_dist(coordinator.stats, coordinator.roster,
                                 settings=settings.as_dict())
        return [rows_by_group[index] for index in range(len(groups))]

    @staticmethod
    def _trace_stage(runner, groups: list, cache_dir: str) -> None:
        """Trace every unique (scenario, model, frame) into the shared
        disk tier, so workers load artifacts instead of re-tracing.

        Uses the runner's own cache when it already persists to the
        shared directory (warm sweeps reuse its memory tier), otherwise
        a small dedicated cache that spills to ``cache_dir``.
        """
        from concurrent.futures import ThreadPoolExecutor

        if (runner.cache.disk_dir is not None
                and str(runner.cache.disk_dir) == str(cache_dir)):
            cache = runner.cache
        else:
            cache = TraceCache(maxsize=4, disk_dir=cache_dir)
        delta = getattr(runner, "delta_trace", False)
        threshold = getattr(runner, "delta_threshold", None)
        seen = set()
        jobs = []
        if delta:
            # Delta tracing: the unit of fan-out is a sequential
            # per-(scenario, model) chain — frame 0 full, later frames
            # patched from the previous frame's trace.  Content keys
            # (and therefore the artifacts workers load) are unchanged.
            for group in groups:
                key = (group.scenario.name, _model_name(group.model))
                if key not in seen:
                    seen.add(key)
                    jobs.append((group.scenario, group.model))

            def trace(job):
                """Trace one (scenario, model) delta chain."""
                scenario, model = job
                prev = None
                for frame in range(scenario.frames):
                    built = runner.frame_provider.frame_for(
                        scenario, model, frame)
                    prev = cache.get_trace(
                        runner._spec_for(model),
                        built.coords,
                        built.point_counts.astype(float),
                        rulegen_shards=runner.rulegen_shards,
                        prev_trace=prev,
                        delta_threshold=threshold,
                        label=(scenario.name, _model_name(model)),
                    )
        else:
            for group in groups:
                for frame in range(group.scenario.frames):
                    key = (group.scenario.name, _model_name(group.model),
                           frame)
                    if key not in seen:
                        seen.add(key)
                        jobs.append((group.scenario, group.model, frame))

            def trace(job):
                """Trace one (scenario, model, frame) job."""
                scenario, model, frame = job
                built = runner.frame_provider.frame_for(scenario, model,
                                                        frame)
                cache.get_trace(
                    runner._spec_for(model),
                    built.coords,
                    built.point_counts.astype(float),
                    rulegen_shards=runner.rulegen_shards,
                )

        width = min(runner.trace_workers, len(jobs))
        if width > 1:
            with ThreadPoolExecutor(width) as pool:
                list(pool.map(trace, jobs))
        else:
            for job in jobs:
                trace(job)
