"""The coordinator/worker wire protocol: length-prefixed JSON over TCP.

Every message is one JSON object preceded by a 4-byte big-endian length
header.  JSON keeps the protocol inspectable (``tcpdump`` shows readable
work units) and language-agnostic, and the engine already defines a
lossless-enough JSON projection for everything that crosses the wire:
work units are :class:`~repro.engine.spec.ExperimentSpec` dicts and
results are the same records :meth:`ExperimentTable.to_json` writes.
Traces — the heavyweight artifacts — never travel over this socket;
they ship by content key through the shared
:class:`~repro.engine.cache.TraceCache` disk tier.

Message types (``type`` field):

========== =========== ====================================================
direction  type        payload
========== =========== ====================================================
worker →   hello       ``worker`` (id string), ``pid``
worker →   request     pull one unit (sent when idle)
worker →   heartbeat   liveness beacon (background thread, every
                       ``heartbeat_interval`` seconds)
worker →   result      ``unit`` (id), ``groups`` ({index: [row records]}),
                       ``timings``; ``done: false`` marks a partial
                       flush (result batching — the final frame of the
                       unit omits ``done`` or sends ``true``); traced
                       runs add ``spans`` (the worker's Chrome
                       trace-event batch for the unit) on the final
                       frame
worker →   error       ``unit`` (id), ``error`` (message string)
worker →   goodbye     announced clean exit (drain mode) — not a failure
coord  →   welcome     ``cache_dir``, ``heartbeat_interval``,
                       ``batch_rows``, ``telemetry`` (true when the
                       coordinator's run is traced and span batches
                       should ship back)
coord  →   unit        ``unit`` (id), ``groups`` ([{index, spec}, ...])
coord  →   wait        nothing to do right now; re-request (bounds the
                       worker's read timeout while idle)
coord  →   shutdown    no more work; the worker exits cleanly
========== =========== ====================================================

The experiment service (``repro serve``) speaks the same framing on the
same socket; a peer whose *first* message is not ``hello`` is a client:

========== =========== ====================================================
client →   submit      ``spec`` (ExperimentSpec dict), ``priority``,
                       ``submitter``
client →   status      ``run`` (id, optional — omitted asks for the
                       service summary)
client →   results     ``run`` (id)
client →   cancel      ``run`` (id)
client →   queue       (no payload) — the dispatch-ordered queue
client →   metrics     (no payload) — the service's metrics-registry
                       snapshot (same numbers as the Prometheus
                       endpoint)
service →  submitted / status / results / cancelled / queue / metrics
           — the matching replies; ``error`` (``error`` string) for
           rejects
========== =========== ====================================================

When a shared secret is configured (``REPRO_ENGINE_DIST_TOKEN``), the
server answers any peer's first message with ``challenge`` (``nonce``);
the peer must reply ``auth`` (``digest`` = :func:`auth_digest` of the
nonce) before the first message is processed.  Peers that fail the
handshake are dropped with a log line.

Framing helpers below own all socket byte-handling; peers never touch
``recv`` buffers directly.  A closed connection surfaces as
:class:`ConnectionClosed`, a malformed or oversized frame as
:class:`ProtocolError` — callers treat both as "peer is gone".
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import struct

from .. import faults, telemetry

#: 4-byte big-endian unsigned frame-length header.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame.  Work units are spec dicts (kilobytes) and
#: result payloads are row records (at most a few MB of per-layer
#: detail); anything larger means a corrupted or hostile stream.
MAX_MESSAGE_BYTES = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed frame (bad header, oversized, or invalid JSON)."""


class ConnectionClosed(ProtocolError):
    """The peer closed the socket (mid-frame or between frames)."""


def message(msg_type: str, **fields) -> dict:
    """One protocol message as a dict (``type`` plus payload fields)."""
    payload = {"type": msg_type}
    payload.update(fields)
    return payload


def send_message(sock, payload: dict) -> None:
    """Frame and send one message (blocking until fully written).

    Concurrent senders on one socket (a worker's main loop and its
    heartbeat thread) must serialize calls with their own lock —
    ``sendall`` of header and body is two writes.
    """
    # Chaos harness: drop_conn / delay_conn count both directions of
    # protocol traffic through this one site.
    faults.check("protocol.message", direction="send",
                 msg_type=payload.get("type"))
    with telemetry.span("protocol-send", "protocol",
                        msg_type=payload.get("type")):
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        if len(data) > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"refusing to send a {len(data)}-byte message "
                f"(limit {MAX_MESSAGE_BYTES})"
            )
        sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {count} bytes "
                f"outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock) -> dict:
    """Read one framed message (blocking; honours the socket timeout).

    Raises:
        ConnectionClosed: the peer went away.
        ProtocolError: the frame is oversized or not a JSON object.
        socket.timeout / OSError: propagated from the socket layer.
    """
    faults.check("protocol.message", direction="recv")
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte message "
            f"(limit {MAX_MESSAGE_BYTES})"
        )
    # The span covers body transfer + decode only: the header read
    # above blocks while the peer is idle, which would record the
    # waiting as protocol time.
    with telemetry.span("protocol-recv", "protocol"):
        body = _recv_exact(sock, length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed message frame: {error}") from None
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError(
            f"message must be a JSON object with a 'type' field, "
            f"got {type(payload).__name__}"
        )
    return payload


def auth_nonce() -> str:
    """A fresh random nonce for one HMAC challenge (hex text)."""
    return os.urandom(16).hex()


def auth_digest(token: str, nonce: str) -> str:
    """The expected ``auth`` reply to a ``challenge``: HMAC-SHA256 of
    the nonce under the shared token, as hex text."""
    return hmac.new(str(token).encode("utf-8"),
                    str(nonce).encode("utf-8"),
                    hashlib.sha256).hexdigest()


def verify_digest(token: str, nonce: str, digest) -> bool:
    """Constant-time check of a peer's ``auth`` digest."""
    expected = auth_digest(token, nonce)
    return hmac.compare_digest(expected, str(digest or ""))


def answer_challenge(sock, reply: dict, token: str):
    """Client-side half of the auth handshake.

    ``reply`` is the first message received after this peer's opening
    send.  When it is a ``challenge``, answer it with the token's
    digest and return the *next* message (the server's real reply);
    any other message passes through untouched.  Raises
    :class:`ProtocolError` when the server demands auth but no token
    is configured on this side.
    """
    if reply.get("type") != "challenge":
        return reply
    if not token:
        raise ProtocolError(
            "peer requires authentication but no token is configured "
            "(set REPRO_ENGINE_DIST_TOKEN)"
        )
    send_message(sock, message(
        "auth", digest=auth_digest(token, reply.get("nonce") or "")
    ))
    return recv_message(sock)


def parse_address(text: str) -> tuple:
    """``HOST:PORT`` → ``(host, port)`` with an actionable error."""
    host, sep, port_text = str(text).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"worker address must be HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"worker address must be HOST:PORT with a numeric port, "
            f"got {text!r}"
        ) from None
    if not 0 < port <= 65535:
        raise ValueError(
            f"worker address port must be 1-65535, got {port}"
        )
    return host, port
